package vm

import (
	"fmt"
	"math"

	"comp/internal/interp"
	"comp/internal/minic"
)

// devTouch tracks the min/max element index touched in one device buffer.
// Entries are matched by array pointer on the hot path (the same buffer is
// hit millions of times per kernel) and merged by name on the cold path, so
// a same-named buffer rebound mid-region still widens one range, exactly
// like the tree-walker's name-keyed map.
type devTouch struct {
	arr    *interp.Array
	lo, hi int64
}

// devCell caches one global's device-scalar resolution for the duration of
// an offload region. known distinguishes "not yet resolved" from "resolved
// to absent" (absent scalars read the host cell until a kernel store
// creates them, which updates this cache).
type devCell struct {
	cell  *interp.Cell
	known bool
}

// regionKind distinguishes the two bracketed region types.
type regionKind int

const (
	rPar regionKind = iota
	rOff
)

// region is one open omp/offload region. Records are heap-allocated so the
// machine's work pointer can alias kernelWork while the stack grows.
type region struct {
	kind regionKind

	// rPar
	inline bool // nested inside an enclosing parallel region
	iters  int64

	// rOff
	desc       *OffloadDesc
	resolved   []interp.TransferSpec
	kernelWork interp.Work
	savedWork  *interp.Work
}

// machine executes compiled chunks against a Program's storage, mirroring
// the tree-walker's Env field for field.
type machine struct {
	p       *interp.Program
	backend interp.Backend
	mod     *Module

	hostWork interp.Work
	work     *interp.Work   // current accounting target (host or kernel)
	bucket   *interp.Bucket // cached bucket within work

	parallel, vec bool
	onDevice      bool
	tracking      bool // inside an offload region: record touched ranges
	devTouched    []devTouch
	// Per-global caches, indexed like mod.Globals and valid only while
	// onDevice. Device-buffer bindings cannot change inside a region
	// (OpDevChk forbids rebinds; transfers clear the caches), so one
	// string-map lookup per global per region replaces one per access.
	devArrs  []*interp.Array
	devCells []devCell

	regions []*region
	retVal  float64

	depth    int
	budget   int64
	budgetOn bool

	// frames pools call frames and eval stacks by nesting level. Calls and
	// spec-block evaluations are strictly LIFO, so level i can always reuse
	// the backing arrays of the previous visitor at level i. frameIdx is
	// bumped by both callFunc and evalBlock; depth only by callFunc, so the
	// call-depth fault stays in lockstep with the tree-walker.
	frames   []frame
	frameIdx int

	// pfVals is printf's argument scratch; printf arguments are fully
	// evaluated before the call, so it never nests.
	pfVals []interface{}

	// Columnar tier state: colOn gates OpVecLoop (a no-op when false);
	// colPool holds reusable colBlock-sized columns, colRegs the per-batch
	// register table (cLoad rebinds entries to array windows), colArrs the
	// resolved site arrays. All scratch — reused across vector loops.
	colOn   bool
	colPool [][]float64
	colRegs [][]float64
	colArrs []*interp.Array
}

// frame holds one nesting level's locals and eval stacks.
type frame struct {
	f  []float64
	r  []*interp.Array
	st []float64
	rs []*interp.Array
}

// frame returns the pooled frame for the current nesting level, sized for
// the given slot and stack depths. Locals come back zeroed (MiniC locals
// read as 0 before first assignment); eval stacks are left dirty because
// the verifier guarantees every stack read is preceded by a push.
func (m *machine) frame(nf, nr, nst, nrs int) *frame {
	for m.frameIdx >= len(m.frames) {
		m.frames = append(m.frames, frame{})
	}
	fr := &m.frames[m.frameIdx]
	if cap(fr.f) < nf {
		fr.f = make([]float64, nf)
	} else {
		fr.f = fr.f[:nf]
		clear(fr.f)
	}
	if cap(fr.r) < nr {
		fr.r = make([]*interp.Array, nr)
	} else {
		fr.r = fr.r[:nr]
		clear(fr.r)
	}
	if cap(fr.st) < nst {
		fr.st = make([]float64, nst)
	} else {
		fr.st = fr.st[:nst]
	}
	if cap(fr.rs) < nrs {
		fr.rs = make([]*interp.Array, nrs)
	} else {
		fr.rs = fr.rs[:nrs]
	}
	return fr
}

func (m *machine) throwf(pos minic.Pos, format string, args ...interface{}) {
	panic(&interp.RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// refreshBucket re-routes work accounting after a mode or region change.
func (m *machine) refreshBucket() {
	switch {
	case !m.parallel:
		m.bucket = &m.work.Serial
	case m.vec:
		m.bucket = &m.work.Vec
	default:
		m.bucket = &m.work.Scalar
	}
}

func (m *machine) spendIteration(pos minic.Pos) {
	if !m.budgetOn {
		return
	}
	m.budget--
	if m.budget < 0 {
		m.throwf(pos, "loop budget exhausted")
	}
}

func (m *machine) touchDev(a *interp.Array, idx int64) {
	ts := m.devTouched
	for k := range ts {
		if ts[k].arr == a {
			if idx < ts[k].lo {
				ts[k].lo = idx
			}
			if idx > ts[k].hi {
				ts[k].hi = idx
			}
			return
		}
	}
	for k := range ts {
		if ts[k].arr.Name == a.Name {
			ts[k].arr = a
			if idx < ts[k].lo {
				ts[k].lo = idx
			}
			if idx > ts[k].hi {
				ts[k].hi = idx
			}
			return
		}
	}
	m.devTouched = append(ts, devTouch{arr: a, lo: idx, hi: idx})
}

// resetDevCaches sizes (or clears) the per-global device caches at region
// entry; clearDevCaches invalidates them after a mid-region transfer.
func (m *machine) resetDevCaches() {
	if m.devArrs == nil {
		n := len(m.mod.Globals)
		m.devArrs = make([]*interp.Array, n)
		m.devCells = make([]devCell, n)
		return
	}
	m.clearDevCaches()
}

func (m *machine) clearDevCaches() {
	for i := range m.devArrs {
		m.devArrs[i] = nil
		m.devCells[i] = devCell{}
	}
}

// cmpHolds evaluates one OpCmpJmp comparison kind.
func cmpHolds(kind int32, a, b float64) bool {
	switch kind {
	case cmpEq:
		return a == b
	case cmpNe:
		return a != b
	case cmpLt:
		return a < b
	case cmpLe:
		return a <= b
	case cmpGt:
		return a > b
	default:
		return a >= b
	}
}

// garr resolves a global array reference with the same device-aware
// semantics and fault messages as OpRefG.
func (m *machine) garr(ch *Chunk, gi, posIdx int32) *interp.Array {
	if m.onDevice {
		a := m.devArrs[gi]
		if a == nil {
			g := m.mod.Globals[gi]
			a = m.p.DevBuf(g.Name)
			if a == nil {
				m.throwf(ch.Positions[posIdx], "array %s is not present on the device (missing in/nocopy clause?)", g.Name)
			}
			m.devArrs[gi] = a
		}
		return a
	}
	a := m.mod.Globals[gi].H.Arr()
	if a == nil {
		m.throwf(ch.Positions[posIdx], "array %s has no storage (not allocated)", m.mod.Globals[gi].Name)
	}
	return a
}

// gval reads a scalar global with the same device-aware resolution as
// OpLoadG, for the fused arithmetic forms.
func (m *machine) gval(gi int32) float64 {
	if m.onDevice {
		dc := &m.devCells[gi]
		if !dc.known {
			dc.cell = m.p.DevScalar(m.mod.Globals[gi].Name)
			dc.known = true
		}
		if dc.cell != nil {
			return dc.cell.V
		}
	}
	return m.mod.Globals[gi].H.Cell().V
}

func (m *machine) flush() {
	if !m.work.Zero() {
		m.backend.HostCompute(*m.work)
		*m.work = interp.Work{}
	}
}

// callFunc invokes a chunk with arguments popped off the caller's stacks.
func (m *machine) callFunc(ch *Chunk, args []float64, refs []*interp.Array) float64 {
	if m.depth >= maxCallDepth {
		m.throwf(minic.Pos{}, "call depth exceeded (%d frames)", maxCallDepth)
	}
	m.depth++
	m.frameIdx++
	fr := m.frame(ch.NumSlots, ch.RefSlots, ch.MaxF, ch.MaxR)
	f, r := fr.f, fr.r
	ai, ri := 0, 0
	for _, ps := range ch.Params {
		if ps.IsRef {
			r[ps.Slot] = refs[ri]
			ri++
		} else {
			f[ps.Slot] = args[ai]
			ai++
		}
	}
	savedRet := m.retVal
	m.exec(ch, ch.Code, f, r, fr.st, fr.rs, len(m.regions))
	ret := m.retVal
	m.retVal = savedRet
	m.frameIdx--
	m.depth--
	return ret
}

// evalBlock runs one spec mini-block against an existing frame and returns
// the resulting value. A block of n instructions can never need more than
// n stack slots.
func (m *machine) evalBlock(ch *Chunk, blk []Instr, f []float64, r []*interp.Array) float64 {
	m.frameIdx++
	fr := m.frame(0, 0, len(blk), len(blk))
	v := m.exec(ch, blk, f, r, fr.st, fr.rs, len(m.regions))
	m.frameIdx--
	return v
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// exec is the dispatch loop. It returns the top of stack when execution
// falls off the end of code (mini-blocks), or 0 on OpRet (function bodies).
func (m *machine) exec(ch *Chunk, code []Instr, f []float64, r []*interp.Array, st []float64, rs []*interp.Array, regBase int) float64 {
	sp, rsp := 0, 0
	for ip := 0; ip < len(code); ip++ {
		in := code[ip]
		switch in.Op {
		case OpNop:

		case OpConst:
			st[sp] = ch.Consts[in.A]
			sp++
		case OpLoad:
			st[sp] = f[in.A]
			sp++
		case OpStore:
			sp--
			f[in.A] = st[sp]
		case OpStoreT:
			sp--
			f[in.A] = math.Trunc(st[sp])
		case OpZero:
			f[in.A] = 0
		case OpInc:
			f[in.A] += float64(in.B)

		case OpLoadG:
			if m.onDevice {
				dc := &m.devCells[in.A]
				if !dc.known {
					dc.cell = m.p.DevScalar(m.mod.Globals[in.A].Name)
					dc.known = true
				}
				if dc.cell != nil {
					st[sp] = dc.cell.V
					sp++
					break
				}
			}
			st[sp] = m.mod.Globals[in.A].H.Cell().V
			sp++
		case OpStoreG:
			sp--
			v := st[sp]
			if m.onDevice {
				dc := &m.devCells[in.A]
				if dc.cell == nil {
					dc.cell = m.p.EnsureDevScalar(m.mod.Globals[in.A].Name)
					dc.known = true
				}
				dc.cell.V = v
			} else {
				m.mod.Globals[in.A].H.Cell().V = v
			}

		case OpAdd:
			sp--
			st[sp-1] += st[sp]
		case OpSub:
			sp--
			st[sp-1] -= st[sp]
		case OpMul:
			sp--
			st[sp-1] *= st[sp]
		case OpDivF:
			sp--
			st[sp-1] /= st[sp]
		case OpDivI:
			sp--
			b := st[sp]
			if b == 0 {
				if in.A >= 0 {
					m.throwf(ch.Positions[in.A], "integer division by zero")
				}
				m.throwf(minic.Pos{}, "integer division by zero")
			}
			st[sp-1] = math.Trunc(st[sp-1] / b)
		case OpMod:
			sp--
			d := int64(st[sp])
			if d == 0 {
				if in.A >= 0 {
					m.throwf(ch.Positions[in.A], "integer modulus by zero")
				}
				m.throwf(minic.Pos{}, "integer modulus by zero")
			}
			st[sp-1] = float64(int64(st[sp-1]) % d)
		case OpShl:
			sp--
			st[sp-1] = float64(int64(st[sp-1]) << uint(int64(st[sp])))
		case OpShr:
			sp--
			st[sp-1] = float64(int64(st[sp-1]) >> uint(int64(st[sp])))
		case OpEq:
			sp--
			st[sp-1] = boolToF(st[sp-1] == st[sp])
		case OpNe:
			sp--
			st[sp-1] = boolToF(st[sp-1] != st[sp])
		case OpLt:
			sp--
			st[sp-1] = boolToF(st[sp-1] < st[sp])
		case OpLe:
			sp--
			st[sp-1] = boolToF(st[sp-1] <= st[sp])
		case OpGt:
			sp--
			st[sp-1] = boolToF(st[sp-1] > st[sp])
		case OpGe:
			sp--
			st[sp-1] = boolToF(st[sp-1] >= st[sp])
		case OpAndE:
			sp--
			st[sp-1] = boolToF(st[sp-1] != 0 && st[sp] != 0)
		case OpOrE:
			sp--
			st[sp-1] = boolToF(st[sp-1] != 0 || st[sp] != 0)

		case OpNeg:
			st[sp-1] = -st[sp-1]
		case OpNot:
			st[sp-1] = boolToF(st[sp-1] == 0)
		case OpBool:
			st[sp-1] = boolToF(st[sp-1] != 0)
		case OpTrunc:
			st[sp-1] = math.Trunc(st[sp-1])

		case OpJmp:
			ip = int(in.A) - 1
		case OpJz:
			sp--
			if st[sp] == 0 {
				ip = int(in.A) - 1
			}
		case OpJnz:
			sp--
			if st[sp] != 0 {
				ip = int(in.A) - 1
			}
		case OpPop:
			sp--
		case OpSwap:
			st[sp-1], st[sp-2] = st[sp-2], st[sp-1]
		case OpChkZ:
			if in.B == 1 {
				if int64(st[sp-1]) == 0 {
					m.throwf(ch.Positions[in.A], "integer modulus by zero")
				}
			} else if st[sp-1] == 0 {
				m.throwf(ch.Positions[in.A], "integer division by zero")
			}

		case OpWork:
			w := ch.Works[in.A]
			m.bucket.Flops += w.W
			m.bucket.Bytes += w.B
			m.bucket.IrrBytes += w.Irr

		case OpGuardW:
			if f[in.A] > maxLoopIters {
				m.throwf(ch.Positions[in.B], "while loop exceeded %d iterations", int64(maxLoopIters))
			}
			m.spendIteration(ch.Positions[in.B])
			f[in.A]++
		case OpGuardF:
			if f[in.A] > maxLoopIters {
				m.throwf(ch.Positions[in.B], "for loop exceeded %d iterations", int64(maxLoopIters))
			}
			m.spendIteration(ch.Positions[in.B])
			f[in.A]++
		case OpGuardPar:
			reg := m.regions[len(m.regions)-1]
			if reg.inline {
				if f[in.A] > maxLoopIters {
					m.throwf(ch.Positions[in.B], "for loop exceeded %d iterations", int64(maxLoopIters))
				}
				f[in.A]++
			}
			m.spendIteration(ch.Positions[in.B])
		case OpIterTick:
			reg := m.regions[len(m.regions)-1]
			if !reg.inline {
				reg.iters++
			}
		case OpVecLoop:
			m.runVecLoop(ch, ch.VecLoops[in.A], f, r)

		case OpParEnter:
			reg := &region{kind: rPar, inline: m.parallel}
			m.regions = append(m.regions, reg)
			if !reg.inline {
				m.parallel = true
				m.vec = ch.Pars[in.A].Vec
				m.refreshBucket()
			}
		case OpParExit:
			m.parExit()

		case OpOffEnter:
			m.offEnter(ch, ch.Offloads[in.A], f, r)
		case OpOffExit:
			m.offExit(f, r)

		case OpTransfer:
			m.transfer(ch.Transfers[in.A], f, r)
		case OpWait:
			m.flush()
			m.backend.OffloadWait(ch.Waits[in.A])

		case OpRefL:
			a := r[in.A]
			if a == nil {
				d := ch.RefLs[in.B]
				m.throwf(ch.Positions[d.Pos], "nil pointer %s", d.Name)
			}
			rs[rsp] = a
			rsp++
		case OpRefG:
			rs[rsp] = m.garr(ch, in.A, in.B)
			rsp++
		case OpRefNull:
			rs[rsp] = nil
			rsp++
		case OpRefStoreL:
			rsp--
			r[in.A] = rs[rsp]
		case OpRefStoreG:
			rsp--
			m.mod.Globals[in.A].H.SetArr(rs[rsp])
		case OpDevChk:
			if m.onDevice {
				g := m.mod.Globals[in.A]
				m.throwf(ch.Positions[in.B], "cannot rebind global pointer %s on the device", g.Name)
			}
		case OpMalloc:
			d := ch.Mallocs[in.A]
			sp--
			bytes := int64(st[sp])
			if bytes < 0 {
				m.throwf(ch.Positions[d.Pos], "negative allocation size %d", bytes)
			}
			if d.Shared {
				m.p.NoteSharedAlloc()
			}
			rs[rsp] = interp.NewArrayFor("malloc", d.Elem, bytes/d.Elem.Size())
			rsp++
		case OpNewArr:
			d := ch.NewArrs[in.A]
			sp--
			n := int64(st[sp])
			if n < 0 {
				m.throwf(ch.Positions[d.Pos], "negative length %d for local array %s", n, d.Name)
			}
			r[d.Slot] = interp.NewArrayFor(d.Name, d.Elem, n)

		case OpLoadIdx:
			acc := ch.Accesses[in.A]
			sp--
			i := int64(st[sp])
			rsp--
			a := rs[rsp]
			if i < 0 || i >= int64(a.Len()) {
				m.throwf(ch.Positions[acc.Pos], "index %d out of range for %s (len %d)", i, a.Name, a.Len())
			}
			if acc.IsGlobal && m.tracking {
				m.touchDev(a, i)
			}
			off := 0
			if acc.FieldOff >= 0 {
				off = int(acc.FieldOff)
			}
			st[sp] = a.Data[int(i)*a.Fields+off]
			sp++
		case OpStoreIdx:
			acc := ch.Accesses[in.A]
			sp--
			i := int64(st[sp])
			rsp--
			a := rs[rsp]
			sp--
			v := st[sp]
			if i < 0 || i >= int64(a.Len()) {
				m.throwf(ch.Positions[acc.Pos], "index %d out of range for %s (len %d)", i, a.Name, a.Len())
			}
			if acc.IsGlobal && m.tracking {
				m.touchDev(a, i)
			}
			off := 0
			if acc.FieldOff >= 0 {
				off = int(acc.FieldOff)
			}
			a.Data[int(i)*a.Fields+off] = v

		case OpCall:
			callee := m.mod.Funcs[in.A]
			nNum := int(in.B >> 12)
			nRef := int(in.B & 0xfff)
			sp -= nNum
			rsp -= nRef
			v := m.callFunc(callee, st[sp:sp+nNum], rs[rsp:rsp+nRef])
			st[sp] = v
			sp++
		case OpBuiltin:
			switch in.A {
			case bSqrt:
				st[sp-1] = math.Sqrt(st[sp-1])
			case bExp:
				st[sp-1] = math.Exp(st[sp-1])
			case bLog:
				st[sp-1] = math.Log(st[sp-1])
			case bPow:
				sp--
				st[sp-1] = math.Pow(st[sp-1], st[sp])
			case bFabs:
				st[sp-1] = math.Abs(st[sp-1])
			case bFloor:
				st[sp-1] = math.Floor(st[sp-1])
			case bCeil:
				st[sp-1] = math.Ceil(st[sp-1])
			case bFmin:
				sp--
				st[sp-1] = math.Min(st[sp-1], st[sp])
			case bFmax:
				sp--
				st[sp-1] = math.Max(st[sp-1], st[sp])
			}
		case OpPrintf:
			d := ch.Printfs[in.A]
			n := len(d.Kinds)
			sp -= n
			if cap(m.pfVals) < n {
				m.pfVals = make([]interface{}, n)
			}
			vals := m.pfVals[:n]
			for i := 0; i < n; i++ {
				if d.Kinds[i] == 'i' {
					vals[i] = int64(st[sp+i])
				} else {
					vals[i] = st[sp+i]
				}
			}
			fmt.Fprintf(m.p.OutWriter(), d.Format, vals...)
			st[sp] = 0
			sp++

		case OpCmpJmp:
			sp -= 2
			if cmpHolds(in.B>>1, st[sp], st[sp+1]) == (in.B&1 != 0) {
				ip = int(in.A) - 1
			}
		case OpCmpJmpC:
			sp--
			if cmpHolds((in.B>>1)&7, st[sp], ch.Consts[in.B>>4]) == (in.B&1 != 0) {
				ip = int(in.A) - 1
			}
		case OpCmpJmpG:
			sp--
			if cmpHolds((in.B>>1)&7, st[sp], m.gval(in.B>>4)) == (in.B&1 != 0) {
				ip = int(in.A) - 1
			}
		case OpLoad2:
			st[sp] = f[in.A]
			st[sp+1] = f[in.B]
			sp += 2
		case OpLoadIdxL:
			acc := ch.Accesses[in.A]
			i := int64(f[in.B])
			rsp--
			a := rs[rsp]
			if i < 0 || i >= int64(a.Len()) {
				m.throwf(ch.Positions[acc.Pos], "index %d out of range for %s (len %d)", i, a.Name, a.Len())
			}
			if acc.IsGlobal && m.tracking {
				m.touchDev(a, i)
			}
			off := 0
			if acc.FieldOff >= 0 {
				off = int(acc.FieldOff)
			}
			st[sp] = a.Data[int(i)*a.Fields+off]
			sp++
		case OpAddL:
			st[sp-1] += f[in.A]
		case OpSubL:
			st[sp-1] -= f[in.A]
		case OpMulL:
			st[sp-1] *= f[in.A]
		case OpDivL:
			st[sp-1] /= f[in.A]
		case OpAddC:
			st[sp-1] += ch.Consts[in.A]
		case OpSubC:
			st[sp-1] -= ch.Consts[in.A]
		case OpMulC:
			st[sp-1] *= ch.Consts[in.A]
		case OpDivC:
			st[sp-1] /= ch.Consts[in.A]
		case OpAddG:
			st[sp-1] += m.gval(in.A)
		case OpSubG:
			st[sp-1] -= m.gval(in.A)
		case OpMulG:
			st[sp-1] *= m.gval(in.A)
		case OpDivG:
			st[sp-1] /= m.gval(in.A)
		case OpMove:
			f[in.B] = f[in.A]
		case OpMoveT:
			f[in.B] = math.Trunc(f[in.A])
		case OpAddLC:
			st[sp] = f[in.A] + ch.Consts[in.B]
			sp++
		case OpSubLC:
			st[sp] = f[in.A] - ch.Consts[in.B]
			sp++
		case OpMulLC:
			st[sp] = f[in.A] * ch.Consts[in.B]
			sp++
		case OpDivLC:
			st[sp] = f[in.A] / ch.Consts[in.B]
			sp++
		case OpStoreIdxL:
			acc := ch.Accesses[in.A]
			i := int64(f[in.B])
			rsp--
			a := rs[rsp]
			sp--
			v := st[sp]
			if i < 0 || i >= int64(a.Len()) {
				m.throwf(ch.Positions[acc.Pos], "index %d out of range for %s (len %d)", i, a.Name, a.Len())
			}
			if acc.IsGlobal && m.tracking {
				m.touchDev(a, i)
			}
			off := 0
			if acc.FieldOff >= 0 {
				off = int(acc.FieldOff)
			}
			a.Data[int(i)*a.Fields+off] = v
		case OpLoadIdxG:
			acc := ch.Accesses[in.A]
			a := m.garr(ch, acc.GIdx, acc.RefPos)
			i := int64(f[in.B])
			if i < 0 || i >= int64(a.Len()) {
				m.throwf(ch.Positions[acc.Pos], "index %d out of range for %s (len %d)", i, a.Name, a.Len())
			}
			if m.tracking {
				m.touchDev(a, i)
			}
			off := 0
			if acc.FieldOff >= 0 {
				off = int(acc.FieldOff)
			}
			st[sp] = a.Data[int(i)*a.Fields+off]
			sp++
		case OpStoreIdxG:
			acc := ch.Accesses[in.A]
			a := m.garr(ch, acc.GIdx, acc.RefPos)
			i := int64(f[in.B])
			sp--
			v := st[sp]
			if i < 0 || i >= int64(a.Len()) {
				m.throwf(ch.Positions[acc.Pos], "index %d out of range for %s (len %d)", i, a.Name, a.Len())
			}
			if m.tracking {
				m.touchDev(a, i)
			}
			off := 0
			if acc.FieldOff >= 0 {
				off = int(acc.FieldOff)
			}
			a.Data[int(i)*a.Fields+off] = v

		case OpIncJmp:
			f[in.B>>16] += float64(in.B&0xffff - incBias)
			ip = int(in.A) - 1
		case OpBuiltin2L:
			x, y := f[in.B>>16], f[in.B&0xffff]
			switch in.A {
			case bPow:
				x = math.Pow(x, y)
			case bFmin:
				x = math.Min(x, y)
			default:
				x = math.Max(x, y)
			}
			st[sp] = x
			sp++
		case OpConstSt:
			f[in.B] = ch.Consts[in.A]
		case OpConst2:
			st[sp] = ch.Consts[in.A]
			st[sp+1] = ch.Consts[in.B]
			sp += 2
		case OpLoadC:
			st[sp] = f[in.A]
			st[sp+1] = ch.Consts[in.B]
			sp += 2
		case OpNegL:
			st[sp] = -f[in.A]
			sp++
		case OpBuiltinL:
			v := f[in.B]
			switch in.A {
			case bSqrt:
				v = math.Sqrt(v)
			case bExp:
				v = math.Exp(v)
			case bLog:
				v = math.Log(v)
			case bFabs:
				v = math.Abs(v)
			case bFloor:
				v = math.Floor(v)
			case bCeil:
				v = math.Ceil(v)
			}
			st[sp] = v
			sp++
		case OpAddLL:
			st[sp] = f[in.A] + f[in.B]
			sp++
		case OpSubLL:
			st[sp] = f[in.A] - f[in.B]
			sp++
		case OpMulLL:
			st[sp] = f[in.A] * f[in.B]
			sp++
		case OpDivLL:
			st[sp] = f[in.A] / f[in.B]
			sp++

		case OpSetRet:
			sp--
			m.retVal = st[sp]
		case OpRetV:
			sp--
			m.retVal = st[sp]
			for len(m.regions) > regBase {
				top := m.regions[len(m.regions)-1]
				if top.kind == rPar {
					m.parExit()
				} else {
					m.offExit(f, r)
				}
			}
			return 0
		case OpRetL:
			m.retVal = f[in.A]
			for len(m.regions) > regBase {
				top := m.regions[len(m.regions)-1]
				if top.kind == rPar {
					m.parExit()
				} else {
					m.offExit(f, r)
				}
			}
			return 0
		case OpRet:
			// Unwind any regions this frame opened (return inside an
			// omp/offload body still runs the region exits, like the
			// tree-walker's ctlReturn propagation).
			for len(m.regions) > regBase {
				top := m.regions[len(m.regions)-1]
				if top.kind == rPar {
					m.parExit()
				} else {
					m.offExit(f, r)
				}
			}
			return 0

		default:
			m.throwf(minic.Pos{}, "vm: bad opcode %s", in.Op)
		}
	}
	if sp > 0 {
		return st[sp-1]
	}
	return 0
}

func (m *machine) parExit() {
	reg := m.regions[len(m.regions)-1]
	m.regions = m.regions[:len(m.regions)-1]
	if reg.inline {
		return
	}
	m.parallel = false
	m.vec = false
	m.refreshBucket()
	m.work.ParIters += reg.iters
}
