package vm

import (
	"comp/internal/analysis"
	"comp/internal/minic"
)

// The columnar tier compiles qualifying for loops into one VecLoopDesc: a
// fused element-wise kernel the machine executes in blocked batches over
// slices of the backing arrays, instead of per-element push/pop bytecode.
// Qualification is strict by design — the descriptor must charge the same
// Work, touch the same device ranges, and compute bit-identical values as
// the scalar loop it fast-forwards, so anything that could diverge
// (irregular subscripts, calls, writes to outer scalars, faultable
// divisions) falls back to the scalar bytecode, which stays compiled and
// unchanged right after the OpVecLoop.

// colBlock is the batch width: one dispatch of the column program covers
// up to this many iterations. 256 doubles = 2KB per register column, small
// enough to stay cache-resident across a dozen registers while amortizing
// the per-op dispatch to ~1/256 of the scalar cost.
const colBlock = 256

// VecImm kinds: where an immediate (loop-invariant broadcast) register's
// value comes from at batch entry.
const (
	vimConst  int32 = iota // Consts[A]
	vimLocal               // frame slot A
	vimGlobal              // global A (device-aware read)
)

// VecImm broadcasts one loop-invariant scalar into register Dst before the
// batch runs. The loop body cannot assign non-temporary scalars (the
// qualifier rejects those loops), so one broadcast per batch is exact.
type VecImm struct {
	Kind, A, Dst int32
}

// VecSite is one array whose elements the kernel reads or writes at the
// induction variable. Local sites name a ref slot; global sites a module
// global (resolved device-aware, like OpRefG, at batch entry).
type VecSite struct {
	Local bool
	A     int32
}

// Column-program opcodes. Each processes one block of lanes.
const (
	cLoad  int32 = iota // bind Dst to Sites[Site]'s backing slice window
	cStore              // store X's column into Sites[Site]'s window
	cMov
	cTrunc
	cNeg
	cNot
	cAdd
	cSub
	cMul
	cDivF
	cDivI // divisor must be a nonzero constant immediate (verified)
	cMod  // divisor must be a nonzero (as int64) constant immediate
	cShl
	cShr
	cEq
	cNe
	cLt
	cLe
	cGt
	cGe
	cAndE // eager &&; operands are pure, so eager == short-circuit
	cOrE
	cSel // Dst = X != 0 ? Y : Z (both branches pure, evaluated eagerly)
	cSqrt
	cExp
	cLog
	cPow
	cFabs
	cFloor
	cCeil
	cFmin
	cFmax
	cColCount
)

// colInfo drives the verifier and the disassembler: operand-register count
// (X, Y, Z prefix), whether the op writes Dst, and whether it names a site.
var colInfo = [cColCount]struct {
	name   string
	args   int
	hasDst bool
	site   bool
}{
	cLoad:  {"Load", 0, true, true},
	cStore: {"Store", 1, false, true},
	cMov:   {"Mov", 1, true, false},
	cTrunc: {"Trunc", 1, true, false},
	cNeg:   {"Neg", 1, true, false},
	cNot:   {"Not", 1, true, false},
	cAdd:   {"Add", 2, true, false},
	cSub:   {"Sub", 2, true, false},
	cMul:   {"Mul", 2, true, false},
	cDivF:  {"DivF", 2, true, false},
	cDivI:  {"DivI", 2, true, false},
	cMod:   {"Mod", 2, true, false},
	cShl:   {"Shl", 2, true, false},
	cShr:   {"Shr", 2, true, false},
	cEq:    {"Eq", 2, true, false},
	cNe:    {"Ne", 2, true, false},
	cLt:    {"Lt", 2, true, false},
	cLe:    {"Le", 2, true, false},
	cGt:    {"Gt", 2, true, false},
	cGe:    {"Ge", 2, true, false},
	cAndE:  {"AndE", 2, true, false},
	cOrE:   {"OrE", 2, true, false},
	cSel:   {"Sel", 3, true, false},
	cSqrt:  {"Sqrt", 1, true, false},
	cExp:   {"Exp", 1, true, false},
	cLog:   {"Log", 1, true, false},
	cPow:   {"Pow", 2, true, false},
	cFabs:  {"Fabs", 1, true, false},
	cFloor: {"Floor", 1, true, false},
	cCeil:  {"Ceil", 1, true, false},
	cFmin:  {"Fmin", 2, true, false},
	cFmax:  {"Fmax", 2, true, false},
}

// colBuiltin maps OpBuiltin kinds to their columnar counterparts.
var colBuiltin = map[int]int32{
	bSqrt: cSqrt, bExp: cExp, bLog: cLog, bPow: cPow, bFabs: cFabs,
	bFloor: cFloor, bCeil: cCeil, bFmin: cFmin, bFmax: cFmax,
}

// ColIns is one column-program instruction. Unused operands are -1.
type ColIns struct {
	Kind, Dst, X, Y, Z, Site int32
}

// VecLoopDesc is one fused loop kernel. At runtime the machine reads the
// live induction variable, evaluates the bound block, clamps the batch to
// the shortest site (so faulting iterations replay natively in the scalar
// tail), executes Prog over blocked columns, then charges K*PerIter,
// advances the index, guard, budget, and device-touch state exactly as K
// scalar iterations would have, and falls through to the scalar head.
type VecLoopDesc struct {
	IdxSlot   int32 // induction variable frame slot, -1 when global
	IdxG      int32 // induction variable global index, -1 when local
	GuardSlot int32 // the loop's hidden guard counter slot
	Par       bool  // loop head uses OpGuardPar/OpIterTick semantics
	LE        bool  // condition is i <= bound (else i < bound)
	IotaReg   int32 // register holding the lane indices, -1 if unused
	NRegs     int32 // total register columns

	// PerIter is the summed per-iteration cost: the condition's charge,
	// every body statement's charge, and the post statement's charge —
	// identical, by construction, to what the scalar encoding charges
	// across one trip through the loop.
	PerIter WorkTriple

	Upper []Instr // mini-block computing the loop bound (pure, verified)
	Imms  []VecImm
	Sites []VecSite
	Prog  []ColIns
}

// VecLoopCount reports the number of fused loops across the module (for
// benchmarks and tests asserting the tier actually engaged).
func (m *Module) VecLoopCount() int {
	n := 0
	for _, ch := range m.Funcs {
		n += len(ch.VecLoops)
	}
	return n
}

func stripParens(e minic.Expr) minic.Expr {
	for {
		p, ok := e.(*minic.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// tryVecLoop qualifies one for loop for the columnar tier and lowers its
// body to a column program. A nil return means "scalar only"; it must
// leave no trace in the chunk beyond possibly interned constants.
func (c *comp) tryVecLoop(fs *minic.ForStmt, par bool, guardSlot int) *VecLoopDesc {
	info, err := analysis.Analyze(fs, c.file)
	if err != nil || !info.Vectorizable() || info.Step != 1 || info.IndexVar == "" {
		return nil
	}
	bnd, ok := c.lookup(info.IndexVar)
	if !ok || !isIntType(bnd.typ) {
		return nil
	}
	d := &VecLoopDesc{
		IdxSlot: -1, IdxG: -1, GuardSlot: int32(guardSlot),
		Par: par, IotaReg: -1,
	}
	switch bnd.kind {
	case bindLocal:
		d.IdxSlot = int32(bnd.slot)
	case bindGlobal:
		d.IdxG = int32(bnd.gidx)
	default:
		return nil
	}
	cond, ok := fs.Cond.(*minic.BinaryExpr)
	if !ok {
		return nil
	}
	lhs, ok := stripParens(cond.X).(*minic.Ident)
	if !ok || lhs.Name != info.IndexVar {
		return nil
	}
	switch cond.Op {
	case "<":
	case "<=":
		d.LE = true
	default:
		return nil
	}
	if !c.pureBound(cond.Y, info.IndexVar) {
		return nil
	}
	// Condition cost mirrors the scalar head's charge, computed (like the
	// scalar compile) before the loop variable is pushed.
	condK, err := c.staticCost(fs.Cond)
	if err != nil {
		return nil
	}

	v := &colComp{
		c: c, d: d, ivar: info.IndexVar,
		temps:  map[string]colTemp{},
		imms:   map[[2]int32]int32{},
		consts: map[int32]float64{},
		sites:  map[[2]int32]int32{},
		views:  map[int32]int32{},
	}
	total := condK
	c.loopVars = append(c.loopVars, info.IndexVar)
	lowered := true
	for _, s := range fs.Body.Stmts {
		k, sok := v.stmt(s)
		if !sok {
			lowered = false
			break
		}
		total = cost{total.w + k.w, total.b + k.b, total.irr + k.irr}
	}
	c.loopVars = c.loopVars[:len(c.loopVars)-1]
	if !lowered || len(d.Sites) == 0 {
		return nil
	}
	postK, ok := c.postCost(fs.Post)
	if !ok {
		return nil
	}
	total = cost{total.w + postK.w, total.b + postK.b, total.irr + postK.irr}
	d.PerIter = WorkTriple{W: total.w, B: total.b, Irr: total.irr}
	up, err := c.miniBlock(cond.Y)
	if err != nil || len(up) == 0 {
		return nil
	}
	d.Upper = up
	return d
}

// pureBound accepts loop-bound expressions that are loop-invariant and
// side-effect free: literals, scalar reads, and +/-/* arithmetic. The
// resulting mini-block is evaluated once per batch where the scalar head
// evaluates the condition every iteration, so anything impure disqualifies.
func (c *comp) pureBound(e minic.Expr, ivar string) bool {
	switch x := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.SizeofExpr:
		return true
	case *minic.ParenExpr:
		return c.pureBound(x.X, ivar)
	case *minic.Ident:
		if x.Name == ivar {
			return false
		}
		bnd, ok := c.lookup(x.Name)
		if !ok || isRefType(bnd.typ) {
			return false
		}
		return bnd.kind == bindLocal || bnd.kind == bindGlobal
	case *minic.UnaryExpr:
		return x.Op == "-" && c.pureBound(x.X, ivar)
	case *minic.BinaryExpr:
		switch x.Op {
		case "+", "-", "*":
			return c.pureBound(x.X, ivar) && c.pureBound(x.Y, ivar)
		}
	}
	return false
}

// postCost mirrors the scalar compile's charge for the post statement.
// The analysis already pinned the post to i++ or i += <positive const>
// with step 1; both shapes charge exactly {1, 0, 0} (the index is a plain
// scalar, so the lvalue contributes no bytes).
func (c *comp) postCost(s minic.Stmt) (cost, bool) {
	switch x := s.(type) {
	case *minic.IncDecStmt:
		return cost{1, 0, 0}, true
	case *minic.AssignStmt:
		k, err := c.staticCost(x.RHS)
		if err != nil {
			return cost{}, false
		}
		return cost{k.w + 1, k.b, k.irr}, true
	}
	return cost{}, false
}

// colTemp is a body-declared scalar lowered to a register column.
type colTemp struct {
	reg      int32
	intTyped bool
}

// colComp lowers one loop body to a column program. Every cost it returns
// is computed with the compiler's own staticCost machinery, so the charges
// are the scalar encoding's charges by construction, not a re-derivation.
type colComp struct {
	c    *comp
	d    *VecLoopDesc
	ivar string

	temps   map[string]colTemp
	imms    map[[2]int32]int32 // (kind, A) -> broadcast register
	consts  map[int32]float64  // constant-immediate register -> value
	sites   map[[2]int32]int32 // (isGlobal, A) -> site index
	siteInt []bool
	siteEB  []float64
	views   map[int32]int32 // site index -> bound view register

	// lazy counts enclosing lazily-evaluated contexts (&&/|| right sides,
	// ?: branches). The scalar engine may skip those subexpressions, so a
	// site inside one could touch device ranges the oracle never touches —
	// sites there disqualify the loop. Pure arithmetic is fine: evaluating
	// it eagerly changes no observable value.
	lazy int
}

func (v *colComp) newReg() int32 {
	r := v.d.NRegs
	v.d.NRegs++
	return r
}

func (v *colComp) emit(kind, dst, x, y, z, site int32) {
	v.d.Prog = append(v.d.Prog, ColIns{Kind: kind, Dst: dst, X: x, Y: y, Z: z, Site: site})
}

func (v *colComp) immReg(kind, a int32) int32 {
	key := [2]int32{kind, a}
	if r, ok := v.imms[key]; ok {
		return r
	}
	r := v.newReg()
	v.imms[key] = r
	v.d.Imms = append(v.d.Imms, VecImm{Kind: kind, A: a, Dst: r})
	return r
}

func (v *colComp) constImm(val float64) int32 {
	r := v.immReg(vimConst, v.c.constIdx(val))
	v.consts[r] = val
	return r
}

func (v *colComp) iotaReg() int32 {
	if v.d.IotaReg < 0 {
		v.d.IotaReg = v.newReg()
	}
	return v.d.IotaReg
}

// siteOf qualifies one array access as a streamable site: a non-shadowed
// array name subscripted by exactly the induction variable, with a basic
// (single-field) element type, outside any lazily-evaluated context.
func (v *colComp) siteOf(x *minic.IndexExpr) (int32, bool) {
	if v.lazy > 0 {
		return 0, false
	}
	id, ok := stripParens(x.X).(*minic.Ident)
	if !ok {
		return 0, false
	}
	if _, shadowed := v.temps[id.Name]; shadowed {
		return 0, false
	}
	sub, ok := stripParens(x.Index).(*minic.Ident)
	if !ok || sub.Name != v.ivar {
		return 0, false
	}
	bnd, found := v.c.lookup(id.Name)
	if !found || !isRefType(bnd.typ) {
		return 0, false
	}
	elem, ok := minic.ElemOf(bnd.typ).(*minic.Basic)
	if !ok {
		return 0, false
	}
	var key [2]int32
	var s VecSite
	switch bnd.kind {
	case bindLocalRef:
		key = [2]int32{0, int32(bnd.slot)}
		s = VecSite{Local: true, A: int32(bnd.slot)}
	case bindGlobal:
		key = [2]int32{1, int32(bnd.gidx)}
		s = VecSite{A: int32(bnd.gidx)}
	default:
		return 0, false
	}
	if si, seen := v.sites[key]; seen {
		return si, true
	}
	si := int32(len(v.d.Sites))
	v.sites[key] = si
	v.d.Sites = append(v.d.Sites, s)
	v.siteInt = append(v.siteInt, elem.IsInteger())
	v.siteEB = append(v.siteEB, float64(elem.Size()))
	return si, true
}

// view returns the register bound to a site's column window, emitting the
// bind on first use. The binding is a zero-copy alias into the backing
// array, so reads through it always observe prior cStores — the in-order
// per-lane semantics the scalar loop has.
func (v *colComp) view(si int32) int32 {
	if r, ok := v.views[si]; ok {
		return r
	}
	r := v.newReg()
	v.views[si] = r
	v.emit(cLoad, r, -1, -1, -1, si)
	return r
}

// stmt lowers one body statement, returning the scalar encoding's cost
// charge for it. Any statement shape the tier cannot reproduce exactly
// fails qualification.
func (v *colComp) stmt(s minic.Stmt) (cost, bool) {
	switch x := s.(type) {
	case *minic.DeclStmt:
		return v.declStmt(x)
	case *minic.AssignStmt:
		return v.assign(x)
	case *minic.IncDecStmt:
		return v.incDec(x)
	case *minic.ExprStmt:
		k, err := v.c.staticCost(x.X)
		if err != nil {
			return cost{}, false
		}
		if _, ok := v.expr(x.X); !ok {
			return cost{}, false
		}
		return k, true
	}
	return cost{}, false
}

func (v *colComp) declStmt(d *minic.DeclStmt) (cost, bool) {
	vd := d.Decl
	bt, ok := vd.Type.(*minic.Basic)
	if !ok || vd.Name == v.ivar {
		return cost{}, false
	}
	reg := v.newReg()
	if vd.Init == nil {
		// Scalar: OpZero, no charge.
		v.emit(cMov, reg, v.constImm(0), -1, -1, -1)
		v.temps[vd.Name] = colTemp{reg: reg, intTyped: bt.IsInteger()}
		return cost{}, true
	}
	k, err := v.c.staticCost(vd.Init)
	if err != nil {
		return cost{}, false
	}
	// Initializer compiles before the name binds, so `int t = t + 1`
	// reads the outer t — the scalar scoping.
	r, ok := v.expr(vd.Init)
	if !ok {
		return cost{}, false
	}
	if bt.IsInteger() {
		v.emit(cTrunc, reg, r, -1, -1, -1)
	} else {
		v.emit(cMov, reg, r, -1, -1, -1)
	}
	v.temps[vd.Name] = colTemp{reg: reg, intTyped: bt.IsInteger()}
	return k, true
}

func (v *colComp) assign(x *minic.AssignStmt) (cost, bool) {
	op := ""
	if x.Op != "=" {
		op = x.Op[:len(x.Op)-1]
	}
	switch lhs := stripParens(x.LHS).(type) {
	case *minic.Ident:
		// Only body-declared temporaries are assignable: writing an outer
		// scalar would invalidate the one-shot immediate broadcasts (and
		// reductions have cross-lane dependences the tier cannot honor).
		t, ok := v.temps[lhs.Name]
		if !ok {
			return cost{}, false
		}
		k, err := v.c.staticCost(x.RHS)
		if err != nil {
			return cost{}, false
		}
		r, ok := v.expr(x.RHS)
		if !ok {
			return cost{}, false
		}
		if op == "" {
			if t.intTyped {
				v.emit(cTrunc, t.reg, r, -1, -1, -1)
			} else {
				v.emit(cMov, t.reg, r, -1, -1, -1)
			}
			return cost{k.w + 1, k.b, k.irr}, true
		}
		kind, ok := v.compoundKind(op, t.intTyped, r)
		if !ok {
			return cost{}, false
		}
		v.emit(kind, t.reg, t.reg, r, -1, -1)
		if t.intTyped {
			v.emit(cTrunc, t.reg, t.reg, -1, -1, -1)
		}
		return cost{k.w + 1, k.b, k.irr}, true

	case *minic.IndexExpr:
		k, err := v.c.staticCost(x.RHS)
		if err != nil {
			return cost{}, false
		}
		if op == "" {
			// Plain store: the scalar encoding evaluates the RHS before it
			// touches the destination site, so the site registers (and,
			// at runtime, first-touches) after the RHS's sites.
			r, ok := v.expr(x.RHS)
			if !ok {
				return cost{}, false
			}
			si, ok := v.siteOf(lhs)
			if !ok {
				return cost{}, false
			}
			if v.siteInt[si] {
				s := v.newReg()
				v.emit(cTrunc, s, r, -1, -1, -1)
				r = s
			}
			v.emit(cStore, -1, r, -1, -1, si)
			return cost{k.w + 2, k.b + v.siteEB[si], k.irr}, true
		}
		// Compound store: the scalar encoding reads the element first.
		si, ok := v.siteOf(lhs)
		if !ok {
			return cost{}, false
		}
		cur := v.view(si)
		r, ok := v.expr(x.RHS)
		if !ok {
			return cost{}, false
		}
		kind, ok := v.compoundKind(op, v.siteInt[si], r)
		if !ok {
			return cost{}, false
		}
		s := v.newReg()
		v.emit(kind, s, cur, r, -1, -1)
		if v.siteInt[si] {
			v.emit(cTrunc, s, s, -1, -1, -1)
		}
		v.emit(cStore, -1, s, -1, -1, si)
		return cost{k.w + 2, k.b + 2*v.siteEB[si], k.irr}, true
	}
	return cost{}, false
}

func (v *colComp) incDec(x *minic.IncDecStmt) (cost, bool) {
	delta := 1.0
	if x.Op == "--" {
		delta = -1
	}
	switch lhs := stripParens(x.X).(type) {
	case *minic.Ident:
		t, ok := v.temps[lhs.Name]
		if !ok {
			return cost{}, false
		}
		// Scalar: OpInc, no truncation.
		v.emit(cAdd, t.reg, t.reg, v.constImm(delta), -1, -1)
		return cost{1, 0, 0}, true
	case *minic.IndexExpr:
		si, ok := v.siteOf(lhs)
		if !ok {
			return cost{}, false
		}
		cur := v.view(si)
		s := v.newReg()
		// Scalar: load, add, store — no truncation even for int elements.
		v.emit(cAdd, s, cur, v.constImm(delta), -1, -1)
		v.emit(cStore, -1, s, -1, -1, si)
		return cost{2, 2 * v.siteEB[si], 0}, true
	}
	return cost{}, false
}

// compoundKind maps a compound-assignment operator to its column op,
// using the LHS type for the / dialect like the scalar applyBinOp path.
// Integer division and modulus qualify only with a nonzero constant
// divisor: the scalar path can fault there, and a fault mid-batch would
// leave partial side effects the oracle never produced.
func (v *colComp) compoundKind(op string, intCtx bool, rhs int32) (int32, bool) {
	switch op {
	case "+":
		return cAdd, true
	case "-":
		return cSub, true
	case "*":
		return cMul, true
	case "/":
		if !intCtx {
			return cDivF, true
		}
		if val, ok := v.consts[rhs]; ok && val != 0 {
			return cDivI, true
		}
		return 0, false
	case "%":
		if val, ok := v.consts[rhs]; ok && int64(val) != 0 {
			return cMod, true
		}
		return 0, false
	case "<<":
		return cShl, true
	case ">>":
		return cShr, true
	case "==":
		return cEq, true
	case "!=":
		return cNe, true
	case "<":
		return cLt, true
	case "<=":
		return cLe, true
	case ">":
		return cGt, true
	case ">=":
		return cGe, true
	case "&&":
		return cAndE, true
	case "||":
		return cOrE, true
	}
	return 0, false
}

// expr lowers one expression to a register. Costs are not computed here —
// the statement level charges them through staticCost, which guarantees
// the charge equals the scalar encoding's.
func (v *colComp) expr(e minic.Expr) (int32, bool) {
	switch x := e.(type) {
	case *minic.ParenExpr:
		return v.expr(x.X)
	case *minic.IntLit:
		return v.constImm(float64(x.Value)), true
	case *minic.FloatLit:
		return v.constImm(x.Value), true
	case *minic.SizeofExpr:
		return v.constImm(float64(x.Of.Size())), true
	case *minic.Ident:
		if x.Name == v.ivar {
			return v.iotaReg(), true
		}
		if t, ok := v.temps[x.Name]; ok {
			return t.reg, true
		}
		bnd, ok := v.c.lookup(x.Name)
		if !ok || isRefType(bnd.typ) {
			return 0, false
		}
		switch bnd.kind {
		case bindLocal:
			return v.immReg(vimLocal, int32(bnd.slot)), true
		case bindGlobal:
			return v.immReg(vimGlobal, int32(bnd.gidx)), true
		}
		return 0, false
	case *minic.UnaryExpr:
		var kind int32
		switch x.Op {
		case "-":
			kind = cNeg
		case "!":
			kind = cNot
		default:
			return 0, false
		}
		r, ok := v.expr(x.X)
		if !ok {
			return 0, false
		}
		dst := v.newReg()
		v.emit(kind, dst, r, -1, -1, -1)
		return dst, true
	case *minic.IndexExpr:
		si, ok := v.siteOf(x)
		if !ok {
			return 0, false
		}
		return v.view(si), true
	case *minic.BinaryExpr:
		return v.binary(x)
	case *minic.CondExpr:
		c0, ok := v.expr(x.Cond)
		if !ok {
			return 0, false
		}
		v.lazy++
		t, ok1 := v.expr(x.Then)
		el, ok2 := v.expr(x.Else)
		v.lazy--
		if !ok1 || !ok2 {
			return 0, false
		}
		dst := v.newReg()
		v.emit(cSel, dst, c0, t, el, -1)
		return dst, true
	case *minic.CallExpr:
		return v.call(x)
	}
	return 0, false
}

func (v *colComp) binary(x *minic.BinaryExpr) (int32, bool) {
	if x.Op == "&&" || x.Op == "||" {
		a, ok := v.expr(x.X)
		if !ok {
			return 0, false
		}
		v.lazy++
		b, ok := v.expr(x.Y)
		v.lazy--
		if !ok {
			return 0, false
		}
		kind := cAndE
		if x.Op == "||" {
			kind = cOrE
		}
		dst := v.newReg()
		v.emit(kind, dst, a, b, -1, -1)
		return dst, true
	}
	intCtx := false
	if t, ok := x.Type().(*minic.Basic); ok && t.IsInteger() {
		intCtx = true
	}
	if x.Op == "%" || (x.Op == "/" && intCtx) {
		// Denominator first, mirroring the scalar fault order; the loop
		// only qualifies when the divisor is a nonzero constant, so no
		// fault is reachable inside a batch.
		b, ok := v.expr(x.Y)
		if !ok {
			return 0, false
		}
		bv, isConst := v.consts[b]
		if !isConst {
			return 0, false
		}
		var kind int32
		if x.Op == "%" {
			if int64(bv) == 0 {
				return 0, false
			}
			kind = cMod
		} else {
			if bv == 0 {
				return 0, false
			}
			kind = cDivI
		}
		a, ok := v.expr(x.X)
		if !ok {
			return 0, false
		}
		dst := v.newReg()
		v.emit(kind, dst, a, b, -1, -1)
		return dst, true
	}
	a, ok := v.expr(x.X)
	if !ok {
		return 0, false
	}
	b, ok := v.expr(x.Y)
	if !ok {
		return 0, false
	}
	var kind int32
	switch x.Op {
	case "+":
		kind = cAdd
	case "-":
		kind = cSub
	case "*":
		kind = cMul
	case "/":
		kind = cDivF
	case "<<":
		kind = cShl
	case ">>":
		kind = cShr
	case "==":
		kind = cEq
	case "!=":
		kind = cNe
	case "<":
		kind = cLt
	case "<=":
		kind = cLe
	case ">":
		kind = cGt
	case ">=":
		kind = cGe
	default:
		return 0, false
	}
	dst := v.newReg()
	v.emit(kind, dst, a, b, -1, -1)
	return dst, true
}

func (v *colComp) call(x *minic.CallExpr) (int32, bool) {
	if _, isBuiltin := minic.Builtins[x.Fun.Name]; !isBuiltin {
		return 0, false
	}
	bk, ok := builtinKind[x.Fun.Name]
	if !ok {
		return 0, false
	}
	ck := colBuiltin[bk]
	ar := builtinArity[bk]
	if len(x.Args) < ar {
		return 0, false
	}
	// Like the scalar encoding, only the first `arity` arguments are
	// evaluated (surplus ones are charged at the statement level through
	// staticCost, never executed).
	args := make([]int32, ar)
	for i := 0; i < ar; i++ {
		r, ok := v.expr(x.Args[i])
		if !ok {
			return 0, false
		}
		args[i] = r
	}
	dst := v.newReg()
	if ar == 1 {
		v.emit(ck, dst, args[0], -1, -1, -1)
	} else {
		v.emit(ck, dst, args[0], args[1], -1, -1)
	}
	return dst, true
}
