// Package vm compiles MiniC ASTs to compact bytecode and executes them on
// a stack machine. It is a drop-in execution engine for internal/interp:
// bit-identical outputs (arrays, scalars, printf), the same Work reported
// to the Backend at the same flush points, and the same *RuntimeError on
// every fault. The tree-walker stays the reference semantics; the vmdiff
// harness in this package holds the VM to it on every workload, every
// transform golden, and randomly generated programs.
package vm

import (
	"comp/internal/interp"
	"comp/internal/minic"
)

// Op is a bytecode opcode.
type Op uint8

// The instruction set. Numeric values travel on a float64 operand stack;
// array references travel on a separate ref stack (mirroring the
// tree-walker's split between exprFn and refFn).
const (
	OpNop Op = iota

	// Constants and locals.
	OpConst  // push Consts[A]
	OpLoad   // push f[A]
	OpStore  // f[A] = pop
	OpStoreT // f[A] = trunc(pop)   (int-typed assignment)
	OpZero   // f[A] = 0
	OpInc    // f[A] += B            (++/-- on a numeric local)

	// Globals (device-aware: reads prefer the device cell on-device).
	OpLoadG  // push global Globals[A]
	OpStoreG // global Globals[A] = pop

	// Arithmetic and comparison (pop b, pop a, push a OP b).
	OpAdd
	OpSub
	OpMul
	OpDivF
	OpDivI // integer division; A = pos index or -1 (compound-assign context)
	OpMod  // integer modulus; A = pos index or -1
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAndE // eager &&, compound-assign context
	OpOrE  // eager ||, compound-assign context

	// Unary.
	OpNeg
	OpNot
	OpBool  // v != 0 -> 1/0 (short-circuit rhs coercion)
	OpTrunc // math.Trunc

	// Control flow. Targets are absolute instruction indices.
	OpJmp // ip = A
	OpJz  // pop; if == 0 then ip = A
	OpJnz // pop; if != 0 then ip = A
	OpPop // discard top

	OpSwap // swap the top two stack values
	// OpChkZ throws division/modulus-by-zero at Positions[A] when the top
	// of stack is zero, without popping. B = 1 selects the modulus form
	// (int64 conversion before the check). The tree-walker evaluates an
	// integer division's denominator first and faults before touching the
	// numerator; OpChkZ preserves that order.
	OpChkZ

	// Cost model: charge Works[A] to the current bucket.
	OpWork

	// Loop guards. A = hidden counter slot, B = pos index.
	OpGuardW   // while loop: max-iteration guard + budget
	OpGuardF   // for loop: max-iteration guard + budget
	OpGuardPar // omp loop head: for-guard when nested inline, budget only at top level
	OpIterTick // count one parallel iteration (top-level omp regions only)

	// Regions.
	OpParEnter // A = par desc: enter parallel mode (or inline when nested)
	OpParExit
	OpOffEnter // A = offload desc: flush, eval specs, copy-in, swap to kernel work
	OpOffExit  // report OffloadOp, copy-out, frees
	OpTransfer // A = transfer desc (offload_transfer pragma)
	OpWait     // A = wait tag index (offload_wait pragma)

	// References.
	OpRefL      // push r[A]; nil -> "nil pointer %s" (B = RefL desc)
	OpRefG      // push global array Globals[A] (device-aware); B = pos index
	OpRefNull   // push nil (NULL literal)
	OpRefStoreL // r[A] = popRef
	OpRefStoreG // rebind global pointer Globals[A] = popRef
	OpDevChk    // throw when on-device (global pointer rebind check); A = global, B = pos
	OpMalloc    // pop byte count, push fresh array (Mallocs[A])
	OpNewArr    // pop length, allocate local array into its ref slot (NewArrs[A])

	// Array element access (pop index, popRef array).
	OpLoadIdx  // push element (Accesses[A])
	OpStoreIdx // pop index, popRef array, pop value, store (Accesses[A])

	// Calls.
	OpCall    // A = func index, B = nNum<<12 | nRef
	OpBuiltin // A = builtin kind
	OpPrintf  // A = printf desc; pop len(Kinds) args, write, push 0

	// Returns.
	OpSetRet // retVal = pop
	OpRet    // unwind regions opened in this frame, leave the function

	// Fused superinstructions. The peephole pass rewrites the baseline
	// encoding into these after jump patching; the front end never emits
	// them directly. Each is exactly equivalent to its source pair.
	OpCmpJmp    // pop b, pop a; B = cmp<<1|sense; jump to A when (a CMP b) == sense
	OpLoad2     // push f[A]; push f[B]
	OpLoadIdxL  // OpLoad B; OpLoadIdx A with the index taken from slot B
	OpAddL      // st[top] += f[A]
	OpSubL      // st[top] -= f[A]
	OpMulL      // st[top] *= f[A]
	OpDivL      // st[top] /= f[A]
	OpAddC      // st[top] += Consts[A]
	OpSubC      // st[top] -= Consts[A]
	OpMulC      // st[top] *= Consts[A]
	OpDivC      // st[top] /= Consts[A]
	OpAddG      // st[top] += global A (device-aware read)
	OpSubG      // st[top] -= global A
	OpMulG      // st[top] *= global A
	OpDivG      // st[top] /= global A
	OpMove      // f[B] = f[A]
	OpMoveT     // f[B] = trunc(f[A])
	OpAddLC     // push f[A] + Consts[B]
	OpSubLC     // push f[A] - Consts[B]
	OpMulLC     // push f[A] * Consts[B]
	OpDivLC     // push f[A] / Consts[B]
	OpStoreIdxL // OpLoad B; OpStoreIdx A fused: index from slot B
	// Whole-site global element access: the array is resolved from
	// Accesses[A].GIdx (device-aware, erring at Accesses[A].RefPos — the
	// absorbed OpRefG's exact fault position, recorded at fusion time) and
	// the index comes from slot B.
	OpLoadIdxG
	OpStoreIdxG
	// Compare-and-branch with an inline second operand: B packs
	// idx<<4 | cmp<<1 | sense, where idx names a constant (C) or a global
	// (G). Pops one value.
	OpCmpJmpC
	OpCmpJmpG
	OpConstSt   // f[B] = Consts[A]
	OpConst2    // push Consts[A]; push Consts[B]
	OpLoadC     // push f[A]; push Consts[B]
	OpNegL      // push -f[A]
	OpBuiltinL  // push builtin A (1-arg kinds only) applied to f[B]
	OpAddLL     // push f[A] + f[B]
	OpSubLL     // push f[A] - f[B]
	OpMulLL     // push f[A] * f[B]
	OpDivLL     // push f[A] / f[B]
	OpRetV      // retVal = pop; unwind regions and return
	OpRetL      // retVal = f[A]; unwind regions and return
	OpIncJmp    // loop latch: f[B>>16] += (B&0xffff)-incBias; ip = A
	OpBuiltin2L // push 2-arg builtin A applied to (f[B>>16], f[B&0xffff])

	// Columnar tier. OpVecLoop sits immediately before a qualifying for
	// loop's head and executes VecLoops[A] — a fused element-wise kernel —
	// in blocked columnar batches, then falls through to the unchanged
	// scalar head, which performs the final (failing) condition check and
	// handles ragged tails, faults, and budget exhaustion natively. When
	// the columnar tier is disabled (or the loop cannot engage at runtime)
	// the op is a no-op and the scalar loop runs as before.
	OpVecLoop

	opCount // sentinel
)

// incBias zig-zag-encodes OpIncJmp's step into the low 16 bits of B.
const incBias = 1 << 15

// Comparison kinds carried in OpCmpJmp's B operand (bits 1..3); bit 0 is
// the jump sense (1 = jump when the comparison holds, from OpJnz; 0 = jump
// when it fails, from OpJz).
const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
	cmpCount
)

var opNames = [...]string{
	OpNop: "Nop", OpConst: "Const", OpLoad: "Load", OpStore: "Store",
	OpStoreT: "StoreT", OpZero: "Zero", OpInc: "Inc",
	OpLoadG: "LoadG", OpStoreG: "StoreG",
	OpAdd: "Add", OpSub: "Sub", OpMul: "Mul", OpDivF: "DivF",
	OpDivI: "DivI", OpMod: "Mod", OpShl: "Shl", OpShr: "Shr",
	OpEq: "Eq", OpNe: "Ne", OpLt: "Lt", OpLe: "Le", OpGt: "Gt", OpGe: "Ge",
	OpAndE: "AndE", OpOrE: "OrE",
	OpNeg: "Neg", OpNot: "Not", OpBool: "Bool", OpTrunc: "Trunc",
	OpJmp: "Jmp", OpJz: "Jz", OpJnz: "Jnz", OpPop: "Pop",
	OpSwap: "Swap", OpChkZ: "ChkZ",
	OpWork:   "Work",
	OpGuardW: "GuardW", OpGuardF: "GuardF", OpGuardPar: "GuardPar",
	OpIterTick: "IterTick",
	OpParEnter: "ParEnter", OpParExit: "ParExit",
	OpOffEnter: "OffEnter", OpOffExit: "OffExit",
	OpTransfer: "Transfer", OpWait: "Wait",
	OpRefL: "RefL", OpRefG: "RefG", OpRefNull: "RefNull",
	OpRefStoreL: "RefStoreL", OpRefStoreG: "RefStoreG", OpDevChk: "DevChk",
	OpMalloc: "Malloc", OpNewArr: "NewArr",
	OpLoadIdx: "LoadIdx", OpStoreIdx: "StoreIdx",
	OpCall: "Call", OpBuiltin: "Builtin", OpPrintf: "Printf",
	OpSetRet: "SetRet", OpRet: "Ret",
	OpCmpJmp: "CmpJmp", OpLoad2: "Load2", OpLoadIdxL: "LoadIdxL",
	OpAddL: "AddL", OpSubL: "SubL", OpMulL: "MulL", OpDivL: "DivL",
	OpAddC: "AddC", OpSubC: "SubC", OpMulC: "MulC", OpDivC: "DivC",
	OpAddG: "AddG", OpSubG: "SubG", OpMulG: "MulG", OpDivG: "DivG",
	OpMove: "Move", OpMoveT: "MoveT",
	OpAddLC: "AddLC", OpSubLC: "SubLC", OpMulLC: "MulLC", OpDivLC: "DivLC",
	OpStoreIdxL: "StoreIdxL", OpLoadIdxG: "LoadIdxG", OpStoreIdxG: "StoreIdxG",
	OpCmpJmpC: "CmpJmpC", OpCmpJmpG: "CmpJmpG",
	OpConstSt: "ConstSt", OpConst2: "Const2", OpLoadC: "LoadC",
	OpNegL: "NegL", OpBuiltinL: "BuiltinL",
	OpAddLL: "AddLL", OpSubLL: "SubLL", OpMulLL: "MulLL", OpDivLL: "DivLL",
	OpRetV: "RetV", OpRetL: "RetL", OpIncJmp: "IncJmp",
	OpBuiltin2L: "Builtin2L", OpVecLoop: "VecLoop",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "Op?"
}

// Instr is one fixed-width bytecode instruction.
type Instr struct {
	Op   Op
	A, B int32
}

// WorkTriple is one statically computed cost charge (flops, bytes,
// irregular bytes), matching the tree-walker's per-statement addWork.
type WorkTriple struct {
	W, B, Irr float64
}

// ParamSlot maps one declared parameter to its frame slot.
type ParamSlot struct {
	Slot  int
	IsRef bool
}

// Access describes one array element access site. Sites are unique per
// instruction, so the peephole pass may specialize an entry in place.
type Access struct {
	FieldOff int32 // field slot for member access, -1 for plain subscripts
	IsGlobal bool  // base is a global (device-touch tracked inside kernels)
	GIdx     int32 // global index of the base when IsGlobal, else -1
	Pos      int32 // position index for bounds errors
	// RefPos is the position index the absorbed OpRefG reported
	// missing-storage faults at; initialized to Pos and overwritten when the
	// peephole pass fuses the site into OpLoadIdxG/OpStoreIdxG.
	RefPos int32
}

// MallocDesc describes one malloc/offload_shared_malloc site.
type MallocDesc struct {
	Elem   minic.Type
	Shared bool
	Pos    int32
}

// NewArrDesc describes one local array declaration.
type NewArrDesc struct {
	Name string
	Elem minic.Type
	Slot int32 // destination ref slot
	Pos  int32
}

// RefLDesc names a local pointer read site for nil-pointer errors.
type RefLDesc struct {
	Name string
	Pos  int32
}

// PrintfDesc is a pre-translated printf site: Format already carries the
// rewritten verbs; Kinds records, per consumed argument, 'i' (render as
// int64) or 'f' (render as float64). Arguments past len(Kinds) are never
// evaluated, matching the tree-walker.
type PrintfDesc struct {
	Format string
	Kinds  []byte
}

// ParDesc describes one omp parallel-for region.
type ParDesc struct {
	Vec bool // statically vectorizable (analysis.Vectorizable)
}

// VSpec is a compiled transfer item. The optional expressions are
// mini-blocks of bytecode sharing the enclosing function's frame; the
// offload handlers evaluate them on demand (and, like the tree-walker,
// more than once).
type VSpec struct {
	Item      minic.TransferItem
	Dir       interp.Direction
	Scalar    bool
	ElemBytes int64

	Start, Length, IntoStart, AllocIf, FreeIf []Instr

	HostName, DevName string
	// Resolved global handles (invalid when the name is not a global; the
	// runtime checks mirror the tree-walker's gvars lookups).
	HostG, DevG interp.GlobalHandle

	DefAlloc, DefFree bool
}

// OffloadDesc describes one offload region.
type OffloadDesc struct {
	Pragma *minic.Pragma
	Specs  []*VSpec
	Pos    minic.Pos
	Chunk  *Chunk // owning chunk, for spec evaluation context
}

// TransferDesc describes one offload_transfer pragma.
type TransferDesc struct {
	Pragma *minic.Pragma
	Specs  []*VSpec
	Pos    minic.Pos
	Chunk  *Chunk
}

// Builtin kinds for OpBuiltin.
const (
	bSqrt = iota
	bExp
	bLog
	bPow
	bFabs
	bFloor
	bCeil
	bFmin
	bFmax
)

var builtinArity = [...]int{
	bSqrt: 1, bExp: 1, bLog: 1, bPow: 2, bFabs: 1,
	bFloor: 1, bCeil: 1, bFmin: 2, bFmax: 2,
}

var builtinKind = map[string]int{
	"sqrt": bSqrt, "exp": bExp, "log": bLog, "pow": bPow, "fabs": bFabs,
	"floor": bFloor, "ceil": bCeil, "fmin": bFmin, "fmax": bFmax,
}

// Chunk is one compiled function: code, constant pool, cost table, and the
// descriptor tables its instructions index into.
type Chunk struct {
	Name     string
	NumSlots int // numeric frame slots (includes hidden loop-guard slots)
	RefSlots int
	Params   []ParamSlot
	// MaxF/MaxR bound the operand stack growth of one activation, computed
	// by abstract interpretation over the CFG at compile time.
	MaxF, MaxR int

	Code   []Instr
	Consts []float64
	Works  []WorkTriple

	Positions []minic.Pos
	Accesses  []Access
	Mallocs   []MallocDesc
	NewArrs   []NewArrDesc
	RefLs     []RefLDesc
	Printfs   []*PrintfDesc
	Pars      []ParDesc
	Offloads  []*OffloadDesc
	Transfers []*TransferDesc
	Waits     []string
	VecLoops  []*VecLoopDesc
}

// GlobalRef resolves one global by a stable handle into the Program.
type GlobalRef struct {
	Name string
	H    interp.GlobalHandle
}

// Module is a whole compiled program: one chunk per function plus the
// global table, linked against the source Program (whose storage the VM
// shares with the tree-walker).
type Module struct {
	Prog    *interp.Program
	Funcs   []*Chunk
	ByName  map[string]int
	Globals []GlobalRef
	Main    int
}

// maxLoopIters and maxCallDepth mirror internal/interp's runaway guards.
const (
	maxLoopIters = 1 << 33
	maxCallDepth = 10000
)
