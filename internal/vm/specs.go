package vm

import (
	"comp/internal/interp"
	"comp/internal/minic"
)

// miniBlock compiles one optional clause expression into a standalone
// instruction block. The block shares the enclosing chunk's constant pool
// and descriptor tables (and, at runtime, its frame), so the offload
// handlers can evaluate it on demand — and, like the tree-walker, more
// than once.
func (c *comp) miniBlock(e minic.Expr) ([]Instr, error) {
	if e == nil {
		return nil, nil
	}
	saved := c.code
	c.code = nil
	_, err := c.expr(e)
	blk := c.code
	c.code = saved
	if err != nil {
		return nil, err
	}
	return blk, nil
}

// compileSpecs compiles every item of an offload/offload_transfer pragma,
// mirroring the tree-walker's compileSpecs: in, then inout (split into an
// in-spec owning allocation and an out-spec owning freeing), then out,
// then nocopy.
func (c *comp) compileSpecs(p *minic.Pragma) ([]*VSpec, error) {
	var out []*VSpec
	defAlloc, defFree := true, true
	if p.Kind == minic.PragmaOffloadTransfer {
		defFree = false
	}
	add := func(items []minic.TransferItem, dir interp.Direction) error {
		for _, it := range items {
			sp, err := c.compileSpec(it, dir, defAlloc, defFree)
			if err != nil {
				return err
			}
			out = append(out, sp)
		}
		return nil
	}
	if err := add(p.In, interp.DirIn); err != nil {
		return nil, err
	}
	for _, it := range p.InOut {
		inSpec, err := c.compileSpec(it, interp.DirIn, defAlloc, false)
		if err != nil {
			return nil, err
		}
		inSpec.DefFree = false
		outSpec, err := c.compileSpec(it, interp.DirOut, false, defFree)
		if err != nil {
			return nil, err
		}
		outSpec.DefAlloc = false
		out = append(out, inSpec, outSpec)
	}
	if err := add(p.Out, interp.DirOut); err != nil {
		return nil, err
	}
	if err := add(p.NoCopy, interp.DirNone); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *comp) compileSpec(it minic.TransferItem, dir interp.Direction, defAlloc, defFree bool) (*VSpec, error) {
	bnd, ok := c.lookup(it.Name)
	if !ok {
		return nil, c.errf(minic.Pos{}, "pragma item %s undefined", it.Name)
	}
	sp := &VSpec{Item: it, Dir: dir, DefAlloc: defAlloc, DefFree: defFree}
	if !isRefType(bnd.typ) || it.Length == nil {
		// Scalar copied by value.
		sp.Scalar = true
		sp.ElemBytes = bnd.typ.Size()
		sp.HostName = it.Name
		sp.DevName = it.Dest()
		sp.HostG, _ = c.prog.Global(sp.HostName)
		return sp, nil
	}
	sp.ElemBytes = minic.ElemOf(bnd.typ).Size()
	switch dir {
	case interp.DirOut:
		// Name is the device side; Into (or Name) is the host side.
		sp.DevName = it.Name
		sp.HostName = it.Dest()
	default:
		sp.HostName = it.Name
		sp.DevName = it.Dest()
	}
	sp.HostG, _ = c.prog.Global(sp.HostName)
	sp.DevG, _ = c.prog.Global(sp.DevName)
	var err error
	if sp.Start, err = c.miniBlock(it.Start); err != nil {
		return nil, err
	}
	if sp.Length, err = c.miniBlock(it.Length); err != nil {
		return nil, err
	}
	if sp.IntoStart, err = c.miniBlock(it.IntoStart); err != nil {
		return nil, err
	}
	if sp.AllocIf, err = c.miniBlock(it.AllocIf); err != nil {
		return nil, err
	}
	if sp.FreeIf, err = c.miniBlock(it.FreeIf); err != nil {
		return nil, err
	}
	return sp, nil
}
