package vm_test

import (
	"testing"

	"comp/internal/interp"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// benchEngine runs one workload end to end (Reset + Setup + Run on a null
// backend) per iteration under the selected engine.
func benchEngine(b *testing.B, name string, useVM bool) {
	wl, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := interp.Compile(wl.Source)
	if err != nil {
		b.Fatal(err)
	}
	p.SetEngine(nil)
	if useVM {
		if err := vm.Attach(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Reset(); err != nil {
			b.Fatal(err)
		}
		if err := wl.Setup(p); err != nil {
			b.Fatal(err)
		}
		if err := p.Run(interp.NullBackend{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpCfd(b *testing.B) { benchEngine(b, "cfd", false) }
func BenchmarkVMCfd(b *testing.B)     { benchEngine(b, "cfd", true) }
func BenchmarkInterpNN(b *testing.B)  { benchEngine(b, "nn", false) }
func BenchmarkVMNN(b *testing.B)      { benchEngine(b, "nn", true) }

func BenchmarkInterpDedup(b *testing.B) { benchEngine(b, "dedup", false) }
func BenchmarkVMDedup(b *testing.B)     { benchEngine(b, "dedup", true) }

func BenchmarkInterpBS(b *testing.B) { benchEngine(b, "blackscholes", false) }
func BenchmarkVMBS(b *testing.B)     { benchEngine(b, "blackscholes", true) }
