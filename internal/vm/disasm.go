package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Disassemble renders a chunk's serializable projection — frame layout,
// parameters, constant pool, work table, and code — as text. Floats print
// as hexadecimal literals so Assemble recovers them bit-exactly. The
// descriptor tables (accesses, offload specs, printf sites...) hold AST
// references and are not part of the textual form; Assemble reconstructs
// everything Disassemble emits, and the round-trip property holds the pair
// to Disassemble(Assemble(text)) == text.
func Disassemble(ch *Chunk) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chunk %s slots=%d refs=%d maxf=%d maxr=%d\n",
		ch.Name, ch.NumSlots, ch.RefSlots, ch.MaxF, ch.MaxR)
	for _, p := range ch.Params {
		kind := "num"
		if p.IsRef {
			kind = "ref"
		}
		fmt.Fprintf(&sb, "param %d %s\n", p.Slot, kind)
	}
	for i, c := range ch.Consts {
		fmt.Fprintf(&sb, "const %d %s\n", i, fmtF(c))
	}
	for i, w := range ch.Works {
		fmt.Fprintf(&sb, "work %d %s %s %s\n", i, fmtF(w.W), fmtF(w.B), fmtF(w.Irr))
	}
	for i, d := range ch.VecLoops {
		fmt.Fprintf(&sb, "vecloop %d idx=%d idxg=%d guard=%d par=%d le=%d iota=%d regs=%d per=%s,%s,%s\n",
			i, d.IdxSlot, d.IdxG, d.GuardSlot, b2i(d.Par), b2i(d.LE), d.IotaReg, d.NRegs,
			fmtF(d.PerIter.W), fmtF(d.PerIter.B), fmtF(d.PerIter.Irr))
		for _, in := range d.Upper {
			fmt.Fprintf(&sb, "vecupper %d %s %d %d\n", i, in.Op, in.A, in.B)
		}
		for _, im := range d.Imms {
			fmt.Fprintf(&sb, "vecimm %d %s %d %d\n", i, vimNames[im.Kind], im.A, im.Dst)
		}
		for _, s := range d.Sites {
			kind := "global"
			if s.Local {
				kind = "local"
			}
			fmt.Fprintf(&sb, "vecsite %d %s %d\n", i, kind, s.A)
		}
		for _, in := range d.Prog {
			fmt.Fprintf(&sb, "veccol %d %s %d %d %d %d %d\n",
				i, colInfo[in.Kind].name, in.Dst, in.X, in.Y, in.Z, in.Site)
		}
	}
	for i, in := range ch.Code {
		fmt.Fprintf(&sb, "%4d: %s %d %d\n", i, in.Op, in.A, in.B)
	}
	return sb.String()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

var vimNames = map[int32]string{vimConst: "const", vimLocal: "local", vimGlobal: "global"}

var vimByName = map[string]int32{"const": vimConst, "local": vimLocal, "global": vimGlobal}

var colByName = func() map[string]int32 {
	m := make(map[string]int32, int(cColCount))
	for k := int32(0); k < cColCount; k++ {
		m[colInfo[k].name] = k
	}
	return m
}()

var opByName = func() map[string]Op {
	m := make(map[string]Op, int(opCount))
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// Assemble parses Disassemble's output back into a chunk. Only the
// serializable projection is rebuilt; descriptor tables come back empty.
func Assemble(text string) (*Chunk, error) {
	ch := &Chunk{}
	sawHeader := false
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "chunk":
			if len(fields) != 6 {
				return nil, fmt.Errorf("line %d: malformed chunk header", ln+1)
			}
			ch.Name = fields[1]
			for _, f := range fields[2:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fmt.Errorf("line %d: malformed header field %q", ln+1, f)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				switch k {
				case "slots":
					ch.NumSlots = n
				case "refs":
					ch.RefSlots = n
				case "maxf":
					ch.MaxF = n
				case "maxr":
					ch.MaxR = n
				default:
					return nil, fmt.Errorf("line %d: unknown header field %q", ln+1, k)
				}
			}
			sawHeader = true
		case fields[0] == "param":
			if len(fields) != 3 || (fields[2] != "num" && fields[2] != "ref") {
				return nil, fmt.Errorf("line %d: malformed param", ln+1)
			}
			slot, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			ch.Params = append(ch.Params, ParamSlot{Slot: slot, IsRef: fields[2] == "ref"})
		case fields[0] == "const":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: malformed const", ln+1)
			}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			ch.Consts = append(ch.Consts, v)
		case fields[0] == "work":
			if len(fields) != 5 {
				return nil, fmt.Errorf("line %d: malformed work", ln+1)
			}
			var tri [3]float64
			for i, f := range fields[2:5] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				tri[i] = v
			}
			ch.Works = append(ch.Works, WorkTriple{W: tri[0], B: tri[1], Irr: tri[2]})
		case fields[0] == "vecloop":
			if len(fields) != 10 {
				return nil, fmt.Errorf("line %d: malformed vecloop", ln+1)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx != len(ch.VecLoops) {
				return nil, fmt.Errorf("line %d: vecloop index %q out of sequence (want %d)", ln+1, fields[1], len(ch.VecLoops))
			}
			d := &VecLoopDesc{}
			for _, f := range fields[2:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fmt.Errorf("line %d: malformed vecloop field %q", ln+1, f)
				}
				if k == "per" {
					parts := strings.Split(v, ",")
					if len(parts) != 3 {
						return nil, fmt.Errorf("line %d: malformed vecloop per triple %q", ln+1, v)
					}
					var tri [3]float64
					for i, p := range parts {
						w, err := strconv.ParseFloat(p, 64)
						if err != nil {
							return nil, fmt.Errorf("line %d: %v", ln+1, err)
						}
						tri[i] = w
					}
					d.PerIter = WorkTriple{W: tri[0], B: tri[1], Irr: tri[2]}
					continue
				}
				n, err := strconv.ParseInt(v, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				switch k {
				case "idx":
					d.IdxSlot = int32(n)
				case "idxg":
					d.IdxG = int32(n)
				case "guard":
					d.GuardSlot = int32(n)
				case "par":
					d.Par = n != 0
				case "le":
					d.LE = n != 0
				case "iota":
					d.IotaReg = int32(n)
				case "regs":
					d.NRegs = int32(n)
				default:
					return nil, fmt.Errorf("line %d: unknown vecloop field %q", ln+1, k)
				}
			}
			ch.VecLoops = append(ch.VecLoops, d)
		case fields[0] == "vecupper":
			d, err := vecAt(ch, fields, 5, ln)
			if err != nil {
				return nil, err
			}
			op, ok := opByName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown opcode %q", ln+1, fields[2])
			}
			a, errA := strconv.ParseInt(fields[3], 10, 32)
			b, errB := strconv.ParseInt(fields[4], 10, 32)
			if errA != nil || errB != nil {
				return nil, fmt.Errorf("line %d: malformed vecupper operands", ln+1)
			}
			d.Upper = append(d.Upper, Instr{Op: op, A: int32(a), B: int32(b)})
		case fields[0] == "vecimm":
			d, err := vecAt(ch, fields, 5, ln)
			if err != nil {
				return nil, err
			}
			kind, ok := vimByName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown imm kind %q", ln+1, fields[2])
			}
			a, errA := strconv.ParseInt(fields[3], 10, 32)
			dst, errD := strconv.ParseInt(fields[4], 10, 32)
			if errA != nil || errD != nil {
				return nil, fmt.Errorf("line %d: malformed vecimm operands", ln+1)
			}
			d.Imms = append(d.Imms, VecImm{Kind: kind, A: int32(a), Dst: int32(dst)})
		case fields[0] == "vecsite":
			d, err := vecAt(ch, fields, 4, ln)
			if err != nil {
				return nil, err
			}
			if fields[2] != "local" && fields[2] != "global" {
				return nil, fmt.Errorf("line %d: unknown site kind %q", ln+1, fields[2])
			}
			a, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			d.Sites = append(d.Sites, VecSite{Local: fields[2] == "local", A: int32(a)})
		case fields[0] == "veccol":
			d, err := vecAt(ch, fields, 8, ln)
			if err != nil {
				return nil, err
			}
			kind, ok := colByName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown column op %q", ln+1, fields[2])
			}
			var ops [5]int32
			for i, f := range fields[3:8] {
				n, err := strconv.ParseInt(f, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				ops[i] = int32(n)
			}
			d.Prog = append(d.Prog, ColIns{Kind: kind, Dst: ops[0], X: ops[1], Y: ops[2], Z: ops[3], Site: ops[4]})
		case strings.HasSuffix(fields[0], ":"):
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed instruction", ln+1)
			}
			idx, err := strconv.Atoi(strings.TrimSuffix(fields[0], ":"))
			if err != nil || idx != len(ch.Code) {
				return nil, fmt.Errorf("line %d: instruction index %q out of sequence (want %d)", ln+1, fields[0], len(ch.Code))
			}
			op, ok := opByName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown opcode %q", ln+1, fields[1])
			}
			a, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			b, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			ch.Code = append(ch.Code, Instr{Op: op, A: int32(a), B: int32(b)})
		default:
			return nil, fmt.Errorf("line %d: unrecognized line %q", ln+1, line)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("missing chunk header")
	}
	return ch, nil
}

// vecAt resolves a vecupper/vecimm/vecsite/veccol line's descriptor:
// sub-lines always follow their vecloop header, so the index must name
// the most recently opened descriptor.
func vecAt(ch *Chunk, fields []string, want, ln int) (*VecLoopDesc, error) {
	if len(fields) != want {
		return nil, fmt.Errorf("line %d: malformed %s", ln+1, fields[0])
	}
	idx, err := strconv.Atoi(fields[1])
	if err != nil || idx != len(ch.VecLoops)-1 || idx < 0 {
		return nil, fmt.Errorf("line %d: %s index %q does not match open vecloop %d", ln+1, fields[0], fields[1], len(ch.VecLoops)-1)
	}
	return ch.VecLoops[idx], nil
}
