package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Disassemble renders a chunk's serializable projection — frame layout,
// parameters, constant pool, work table, and code — as text. Floats print
// as hexadecimal literals so Assemble recovers them bit-exactly. The
// descriptor tables (accesses, offload specs, printf sites...) hold AST
// references and are not part of the textual form; Assemble reconstructs
// everything Disassemble emits, and the round-trip property holds the pair
// to Disassemble(Assemble(text)) == text.
func Disassemble(ch *Chunk) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chunk %s slots=%d refs=%d maxf=%d maxr=%d\n",
		ch.Name, ch.NumSlots, ch.RefSlots, ch.MaxF, ch.MaxR)
	for _, p := range ch.Params {
		kind := "num"
		if p.IsRef {
			kind = "ref"
		}
		fmt.Fprintf(&sb, "param %d %s\n", p.Slot, kind)
	}
	for i, c := range ch.Consts {
		fmt.Fprintf(&sb, "const %d %s\n", i, fmtF(c))
	}
	for i, w := range ch.Works {
		fmt.Fprintf(&sb, "work %d %s %s %s\n", i, fmtF(w.W), fmtF(w.B), fmtF(w.Irr))
	}
	for i, in := range ch.Code {
		fmt.Fprintf(&sb, "%4d: %s %d %d\n", i, in.Op, in.A, in.B)
	}
	return sb.String()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

var opByName = func() map[string]Op {
	m := make(map[string]Op, int(opCount))
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// Assemble parses Disassemble's output back into a chunk. Only the
// serializable projection is rebuilt; descriptor tables come back empty.
func Assemble(text string) (*Chunk, error) {
	ch := &Chunk{}
	sawHeader := false
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "chunk":
			if len(fields) != 6 {
				return nil, fmt.Errorf("line %d: malformed chunk header", ln+1)
			}
			ch.Name = fields[1]
			for _, f := range fields[2:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fmt.Errorf("line %d: malformed header field %q", ln+1, f)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				switch k {
				case "slots":
					ch.NumSlots = n
				case "refs":
					ch.RefSlots = n
				case "maxf":
					ch.MaxF = n
				case "maxr":
					ch.MaxR = n
				default:
					return nil, fmt.Errorf("line %d: unknown header field %q", ln+1, k)
				}
			}
			sawHeader = true
		case fields[0] == "param":
			if len(fields) != 3 || (fields[2] != "num" && fields[2] != "ref") {
				return nil, fmt.Errorf("line %d: malformed param", ln+1)
			}
			slot, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			ch.Params = append(ch.Params, ParamSlot{Slot: slot, IsRef: fields[2] == "ref"})
		case fields[0] == "const":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: malformed const", ln+1)
			}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			ch.Consts = append(ch.Consts, v)
		case fields[0] == "work":
			if len(fields) != 5 {
				return nil, fmt.Errorf("line %d: malformed work", ln+1)
			}
			var tri [3]float64
			for i, f := range fields[2:5] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				tri[i] = v
			}
			ch.Works = append(ch.Works, WorkTriple{W: tri[0], B: tri[1], Irr: tri[2]})
		case strings.HasSuffix(fields[0], ":"):
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed instruction", ln+1)
			}
			idx, err := strconv.Atoi(strings.TrimSuffix(fields[0], ":"))
			if err != nil || idx != len(ch.Code) {
				return nil, fmt.Errorf("line %d: instruction index %q out of sequence (want %d)", ln+1, fields[0], len(ch.Code))
			}
			op, ok := opByName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown opcode %q", ln+1, fields[1])
			}
			a, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			b, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			ch.Code = append(ch.Code, Instr{Op: op, A: int32(a), B: int32(b)})
		default:
			return nil, fmt.Errorf("line %d: unrecognized line %q", ln+1, line)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("missing chunk header")
	}
	return ch, nil
}
