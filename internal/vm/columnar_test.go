package vm_test

import (
	"strings"
	"testing"

	"comp/internal/interp"
	"comp/internal/vm"
)

// columnarModule compiles src and returns the bytecode module (the
// columnar tier is a compile-time property; enabling it at run time does
// not change the chunks).
func columnarModule(t *testing.T, src string) *vm.Module {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	e, err := vm.NewEngine(p)
	if err != nil {
		t.Fatalf("vm compile: %v\nsource:\n%s", err, src)
	}
	return e.Module()
}

// wrapLoop builds a complete program around one loop body over float
// arrays x/y/z (length 64), int arrays ia/ib (length 64), and scalars.
func wrapLoop(loop string) string {
	return `
float x[64]; float y[64]; float z[64];
int ia[64]; int ib[64];
float s; int n; int acc;
float h(float p) { return p + 1.0; }
int main(void) {
    int i;
    s = 0.5; n = 64;
    for (i = 0; i < 64; i++) { x[i] = i * 0.25 + 1.0; y[i] = 64 - i; z[i] = 0.0; ia[i] = i; ib[i] = i * 3 + 1; }
` + loop + `
    printf("%g %g %d\n", y[7], z[63], ia[40]);
    return 0;
}
`
}

// TestColumnarQualification pins which loop shapes the pattern-matcher
// accepts (emit a fused vector op) and which fall back to scalar bytecode.
func TestColumnarQualification(t *testing.T) {
	cases := []struct {
		name string
		loop string
		want int // vector loops in main beyond the 1 from the seeding loop
	}{
		{"saxpy", `for (i = 0; i < 64; i++) { y[i] = 2.5 * x[i] + y[i]; }`, 1},
		{"triad_scalar", `for (i = 0; i < n; i++) { z[i] = x[i] + s * y[i]; }`, 1},
		{"select", `for (i = 0; i < 64; i++) { z[i] = (x[i] > 2.0 ? 1.0 : 0.5) * y[i]; }`, 1},
		{"compound", `for (i = 0; i < 64; i++) { y[i] += x[i] * 0.5; }`, 1},
		{"incdec_site", `for (i = 0; i < 64; i++) { ia[i]++; }`, 1},
		{"temp_decl", `for (i = 0; i < 64; i++) { float t = x[i] * x[i]; z[i] = t + 1.0; }`, 1},
		{"builtin", `for (i = 0; i < 64; i++) { z[i] = sqrt(fabs(x[i])); }`, 1},
		{"iota", `for (i = 0; i < 64; i++) { z[i] = i * 0.5; }`, 1},
		{"int_mod_const", `for (i = 0; i < 64; i++) { ia[i] = ib[i] % 7; }`, 1},
		{"le_bound", `for (i = 0; i <= 60; i++) { z[i] = x[i]; }`, 1},
		{"eager_logic", `for (i = 0; i < 64; i++) { ia[i] = ((x[i] > 1.0) && (s < 60.0)); }`, 1},
		{"site_in_and_rhs", `for (i = 0; i < 64; i++) { ia[i] = ((s > 0.0) && (y[i] < 60.0)); }`, 0},

		{"reduction", `for (i = 0; i < 64; i++) { s += x[i]; }`, 0},
		{"user_call", `for (i = 0; i < 64; i++) { z[i] = h(x[i]); }`, 0},
		{"if_stmt", `for (i = 0; i < 64; i++) { if (x[i] > 2.0) { z[i] = 1.0; } }`, 0},
		{"gather", `for (i = 0; i < 64; i++) { z[i] = x[ia[i]]; }`, 0},
		{"shifted_index", `for (i = 0; i < 63; i++) { z[i] = x[i + 1]; }`, 0},
		{"nonunit_step", `for (i = 0; i < 64; i += 2) { z[i] = x[i]; }`, 0},
		{"mod_by_var", `for (i = 0; i < 64; i++) { ia[i] = ib[i] % n; }`, 0},
		{"outer_scalar_write", `for (i = 0; i < 64; i++) { acc = ia[i]; }`, 0},
		{"printf_body", `for (i = 0; i < 64; i++) { printf("%g\n", x[i]); }`, 0},
		{"site_in_ternary_arm", `for (i = 0; i < 64; i++) { z[i] = (s > 0.0 ? x[i] : 0.0); }`, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			src := wrapLoop("    " + tc.loop)
			mod := columnarModule(t, src)
			// The array-seeding loop in the harness itself qualifies.
			if got := mod.VecLoopCount() - 1; got != tc.want {
				t.Errorf("got %d vector loops (beyond the seed loop), want %d\nsource:\n%s", got, tc.want, src)
			}
			// Whatever the matcher decided, execution stays bit-identical.
			diffRun(t, src, nil, 0)
		})
	}
}

// TestColumnarEdgeCases sweeps tricky runtime shapes through the 3-way
// differential: ragged tails, faulting tails, fractional and non-constant
// bounds, budget exhaustion inside a batched loop, negative starts.
func TestColumnarEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		budget int64
	}{
		{"tail_fault", wrapLoop(`    for (i = 0; i < 80; i++) { z[i] = x[i % 64] * 0.0 + i; }
    for (i = 0; i < 80; i++) { y[i] = i; }`), 0},
		{"fractional_bound", `
float a[16]; float b[16]; float lim;
int main(void) {
    int i;
    lim = 5.5;
    for (i = 0; i < 16; i++) { a[i] = i; b[i] = 0.0; }
    for (i = 0; i < lim; i++) { b[i] = a[i] * 2.0; }
    printf("%g %g %d\n", b[5], b[6], i);
    return 0;
}`, 0},
		{"budget_mid_loop", wrapLoop(`    for (i = 0; i < 64; i++) { z[i] = x[i] + y[i]; }`), 90},
		{"budget_exact", wrapLoop(`    for (i = 0; i < 64; i++) { z[i] = x[i] + y[i]; }`), 64 + 64 + 2},
		{"negative_start", `
float a[8];
int main(void) {
    int i;
    for (i = -3; i < 4; i++) { a[i + 4] = 0.0; }
    printf("%d\n", i);
    return 0;
}`, 0},
		{"nan_bound", `
float a[8]; float lim;
int main(void) {
    int i;
    lim = sqrt(-1.0);
    for (i = 0; i < 8; i++) { a[i] = i; }
    for (i = 0; i < lim; i++) { a[i] = 1.0; }
    printf("%g %d\n", a[0], i);
    return 0;
}`, 0},
		{"parallel_vec", wrapLoop(`    #pragma omp parallel for
    for (i = 0; i < 64; i++) { z[i] = x[i] * y[i]; }`), 0},
		{"offload_vec", wrapLoop(`    #pragma offload target(mic:0) in(x, y : length(64)) out(z : length(64))
    #pragma omp parallel for
    for (i = 0; i < 64; i++) { z[i] = x[i] * y[i] + s; }`), 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			diffRun(t, tc.src, nil, tc.budget)
		})
	}
}

// TestColumnarPeepholeInteraction: a non-vectorized outer loop that
// contains a fused vector op still gets its scalar superinstructions —
// the vector op neither blocks fusion around it nor gets absorbed.
func TestColumnarPeepholeInteraction(t *testing.T) {
	src := `
float a[32]; float b[32]; float s;
int main(void) {
    int it; int i;
    for (i = 0; i < 32; i++) { a[i] = i * 0.5; b[i] = 0.0; }
    for (it = 0; it < 4; it++) {
        if (s > 100.0) { s = 0.0; }
        for (i = 0; i < 32; i++) { b[i] = a[i] * 2.0 + b[i]; }
        s = s + b[31];
    }
    printf("%g\n", s);
    return 0;
}`
	mod := columnarModule(t, src)
	main := mod.Funcs[mod.Main]
	text := vm.Disassemble(main)
	if !strings.Contains(text, "VecLoop") {
		t.Fatalf("inner loop did not lower to a vector op:\n%s", text)
	}
	if !strings.Contains(text, "IncJmp") {
		t.Errorf("superinstruction fusion (IncJmp latch) did not fire alongside the vector op:\n%s", text)
	}
	diffRun(t, src, nil, 0)
}

// deepCopyChunk clones a chunk including its vector-loop descriptors so
// corruption tests cannot alias the compiled module.
func deepCopyChunk(ch *vm.Chunk) *vm.Chunk {
	cp := *ch
	cp.Code = append([]vm.Instr(nil), ch.Code...)
	cp.VecLoops = make([]*vm.VecLoopDesc, len(ch.VecLoops))
	for i, d := range ch.VecLoops {
		dd := *d
		dd.Upper = append([]vm.Instr(nil), d.Upper...)
		dd.Imms = append([]vm.VecImm(nil), d.Imms...)
		dd.Sites = append([]vm.VecSite(nil), d.Sites...)
		dd.Prog = append([]vm.ColIns(nil), d.Prog...)
		cp.VecLoops[i] = &dd
	}
	return &cp
}

// TestVerifierRejectsVecLoopCorruption: the descriptor validator is not
// vacuous — every invariant the batch engine relies on trips it.
func TestVerifierRejectsVecLoopCorruption(t *testing.T) {
	mod := columnarModule(t, wrapLoop(`    for (i = 0; i < 64; i++) { z[i] = s * x[i] + y[i]; }`))
	ch := mod.Funcs[mod.Main]
	if len(ch.VecLoops) == 0 {
		t.Fatal("no vector loop to corrupt")
	}
	verify := func(mut func(d *vm.VecLoopDesc)) error {
		cp := deepCopyChunk(ch)
		mut(cp.VecLoops[len(cp.VecLoops)-1])
		return vm.VerifyChunk(cp, len(mod.Globals), len(mod.Funcs))
	}
	d0 := ch.VecLoops[len(ch.VecLoops)-1]
	if len(d0.Imms) == 0 || len(d0.Prog) == 0 || len(d0.Sites) == 0 {
		t.Fatalf("unexpected descriptor shape: %+v", d0)
	}

	if err := verify(func(d *vm.VecLoopDesc) { d.Prog[0].Kind = 99 }); err == nil {
		t.Error("unknown column op not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) {
		for i := range d.Prog {
			if d.Prog[i].Site >= 0 {
				d.Prog[i].Site = 100
				return
			}
		}
	}); err == nil {
		t.Error("out-of-range site index not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) {
		for i := range d.Prog {
			if d.Prog[i].Dst >= 0 {
				d.Prog[i].Dst = d.NRegs + 7
				return
			}
		}
	}); err == nil {
		t.Error("out-of-range destination register not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) { d.IotaReg = d.NRegs }); err == nil {
		t.Error("out-of-range iota register not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) { d.GuardSlot = -1 }); err == nil {
		t.Error("negative guard slot not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) { d.IdxSlot, d.IdxG = -1, -1 }); err == nil {
		t.Error("unbound induction variable not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) { d.Imms = append(d.Imms, d.Imms[0]) }); err == nil {
		t.Error("duplicate immediate destination not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) { d.Imms[0].A = 1 << 20 }); err == nil {
		t.Error("out-of-range immediate source not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) { d.Upper = nil }); err == nil {
		t.Error("missing bound block not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) { d.Upper[0].Op = vm.OpJmp }); err == nil {
		t.Error("jump inside a bound block not rejected")
	}
	if err := verify(func(d *vm.VecLoopDesc) { d.Sites[0].A = 1 << 20 }); err == nil {
		t.Error("out-of-range site binding not rejected")
	}
	// And the code-side reference: an OpVecLoop naming a missing
	// descriptor must be rejected too.
	cp := deepCopyChunk(ch)
	cp.VecLoops = cp.VecLoops[:0]
	if err := vm.VerifyChunk(cp, len(mod.Globals), len(mod.Funcs)); err == nil {
		t.Error("dangling OpVecLoop descriptor index not rejected")
	}
}
