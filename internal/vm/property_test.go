package vm_test

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"comp/internal/interp"
	"comp/internal/vm"
)

// compileModule compiles a generated source all the way to bytecode.
func compileModule(t *testing.T, src string) *vm.Module {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	eng, err := vm.NewEngine(p)
	if err != nil {
		t.Fatalf("vm compile: %v\nsource:\n%s", err, src)
	}
	return eng.Module()
}

// TestPropertyChunksVerify: every chunk the compiler emits passes the
// structural verifier — jump targets within [0, len], constant-pool and
// work-table indices in bounds, local and ref slots in bounds, and operand
// stack depths consistent and non-negative on every path.
func TestPropertyChunksVerify(t *testing.T) {
	prop := func(seed int64) bool {
		mod := compileModule(t, genProgram(seed))
		for _, ch := range mod.Funcs {
			if err := vm.VerifyChunk(ch, len(mod.Globals), len(mod.Funcs)); err != nil {
				t.Logf("seed %d chunk %s: %v", seed, ch.Name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDisasmRoundTrip: disassembling a chunk and reassembling the
// text reproduces the chunk's serializable projection exactly, and a
// second disassembly reproduces the text byte for byte.
func TestPropertyDisasmRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		mod := compileModule(t, genProgram(seed))
		for _, ch := range mod.Funcs {
			text := vm.Disassemble(ch)
			back, err := vm.Assemble(text)
			if err != nil {
				t.Logf("seed %d chunk %s: assemble: %v", seed, ch.Name, err)
				return false
			}
			if got := vm.Disassemble(back); got != text {
				t.Logf("seed %d chunk %s: second disassembly differs", seed, ch.Name)
				return false
			}
			if back.Name != ch.Name || back.NumSlots != ch.NumSlots ||
				back.RefSlots != ch.RefSlots || back.MaxF != ch.MaxF || back.MaxR != ch.MaxR {
				t.Logf("seed %d chunk %s: header fields differ", seed, ch.Name)
				return false
			}
			if !reflect.DeepEqual(back.Params, ch.Params) && !(len(back.Params) == 0 && len(ch.Params) == 0) {
				t.Logf("seed %d chunk %s: params differ", seed, ch.Name)
				return false
			}
			if !reflect.DeepEqual(back.Code, ch.Code) {
				t.Logf("seed %d chunk %s: code differs", seed, ch.Name)
				return false
			}
			if !reflect.DeepEqual(back.VecLoops, ch.VecLoops) && !(len(back.VecLoops) == 0 && len(ch.VecLoops) == 0) {
				t.Logf("seed %d chunk %s: vector-loop descriptors differ", seed, ch.Name)
				return false
			}
			if len(back.Consts) != len(ch.Consts) || len(back.Works) != len(ch.Works) {
				t.Logf("seed %d chunk %s: pool sizes differ", seed, ch.Name)
				return false
			}
			for i := range ch.Consts {
				if math.Float64bits(back.Consts[i]) != math.Float64bits(ch.Consts[i]) {
					t.Logf("seed %d chunk %s: const %d differs", seed, ch.Name, i)
					return false
				}
			}
			for i := range ch.Works {
				a, b := ch.Works[i], back.Works[i]
				if math.Float64bits(a.W) != math.Float64bits(b.W) ||
					math.Float64bits(a.B) != math.Float64bits(b.B) ||
					math.Float64bits(a.Irr) != math.Float64bits(b.Irr) {
					t.Logf("seed %d chunk %s: work %d differs", seed, ch.Name, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestVerifierRejectsCorruption: the verifier is not vacuous — corrupting
// a compiled chunk trips it.
func TestVerifierRejectsCorruption(t *testing.T) {
	mod := compileModule(t, genProgram(1))
	ch := mod.Funcs[mod.Main]

	corrupt := func(mut func(c *vm.Chunk)) error {
		cp := *ch
		cp.Code = append([]vm.Instr(nil), ch.Code...)
		mut(&cp)
		return vm.VerifyChunk(&cp, len(mod.Globals), len(mod.Funcs))
	}

	if err := corrupt(func(c *vm.Chunk) {
		c.Code[0] = vm.Instr{Op: vm.OpJmp, A: int32(len(c.Code) + 5)}
	}); err == nil {
		t.Error("out-of-range jump target not rejected")
	}
	if err := corrupt(func(c *vm.Chunk) {
		c.Code[0] = vm.Instr{Op: vm.OpConst, A: int32(len(c.Consts) + 3)}
	}); err == nil {
		t.Error("out-of-range constant index not rejected")
	}
	if err := corrupt(func(c *vm.Chunk) {
		c.Code[0] = vm.Instr{Op: vm.OpStore, A: 0}
	}); err == nil {
		t.Error("stack underflow not rejected")
	}
	if err := corrupt(func(c *vm.Chunk) {
		c.Code[0] = vm.Instr{Op: vm.OpLoad, A: int32(c.NumSlots)}
	}); err == nil {
		t.Error("out-of-range local slot not rejected")
	}
}
