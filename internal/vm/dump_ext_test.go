package vm_test

import (
	"fmt"
	"os"
	"testing"

	"comp/internal/interp"
	"comp/internal/vm"
	"comp/internal/workloads"
)

func TestDumpDisasm(t *testing.T) {
	name := os.Getenv("VM_DUMP")
	if name == "" {
		t.Skip("set VM_DUMP=<workload> to dump")
	}
	wl, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := interp.Compile(wl.Source)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := vm.CompileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range mod.Funcs {
		fmt.Println(vm.Disassemble(ch))
	}
}
