package vm_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// progGen produces random — but always well-formed — MiniC programs for
// the differential sweep and the property tests. Everything derives from
// the seeded *rand.Rand, so a failing seed reproduces exactly.
type progGen struct {
	r  *rand.Rand
	sb strings.Builder

	floatVars []string
	intVars   []string
	farrs     []genArr
	iarrs     []genArr
	loopVars  []string // currently in-scope loop counters (in-bounds, >= 0)
	helpers   int
}

type genArr struct {
	name string
	n    int
}

func (g *progGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

func (g *progGen) flit() string {
	return fmt.Sprintf("%d.%02d", g.r.Intn(8), g.r.Intn(100))
}

// fexpr emits a float-context expression of bounded depth.
func (g *progGen) fexpr(d int) string {
	if d <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return g.flit()
		case 1:
			return g.pick(g.floatVars)
		case 2:
			a := g.farrs[g.r.Intn(len(g.farrs))]
			return a.name + "[" + g.index(a.n) + "]"
		default:
			return g.pick(g.intVars)
		}
	}
	switch g.r.Intn(8) {
	case 0, 1, 2:
		op := g.pick([]string{"+", "-", "*", "/"})
		return "(" + g.fexpr(d-1) + " " + op + " " + g.fexpr(d-1) + ")"
	case 3:
		return "(-" + g.fexpr(d-1) + ")"
	case 4:
		b := g.pick([]string{"sqrt", "fabs", "exp", "floor", "ceil"})
		return b + "(fabs(" + g.fexpr(d-1) + "))"
	case 5:
		b := g.pick([]string{"fmin", "fmax", "pow"})
		return b + "(fabs(" + g.fexpr(d-1) + "), " + g.flit() + ")"
	case 6:
		return "(" + g.cond(d-1) + " ? " + g.fexpr(d-1) + " : " + g.fexpr(d-1) + ")"
	default:
		if g.helpers > 0 {
			h := g.r.Intn(g.helpers)
			return fmt.Sprintf("h%d(%s, %s)", h, g.fexpr(d-1), g.fexpr(d-1))
		}
		return g.flit()
	}
}

// iexpr emits an int-context expression of bounded depth.
func (g *progGen) iexpr(d int) string {
	if d <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(20))
		case 1:
			return g.pick(g.intVars)
		case 2:
			a := g.iarrs[g.r.Intn(len(g.iarrs))]
			return a.name + "[" + g.index(a.n) + "]"
		default:
			if len(g.loopVars) > 0 {
				return g.pick(g.loopVars)
			}
			return fmt.Sprintf("%d", 1+g.r.Intn(9))
		}
	}
	switch g.r.Intn(7) {
	case 0, 1:
		op := g.pick([]string{"+", "-", "*"})
		return "(" + g.iexpr(d-1) + " " + op + " " + g.iexpr(d-1) + ")"
	case 2:
		// Division and modulus; the denominator is occasionally zero on
		// purpose — fault parity is part of the contract.
		op := g.pick([]string{"/", "%"})
		den := g.iexpr(d - 1)
		if g.r.Intn(8) != 0 {
			den = "(" + den + " % 7 + 8)"
		}
		return "(" + g.iexpr(d-1) + " " + op + " " + den + ")"
	case 3:
		op := g.pick([]string{"<", "<=", ">", ">=", "==", "!="})
		return "(" + g.iexpr(d-1) + " " + op + " " + g.iexpr(d-1) + ")"
	case 4:
		op := g.pick([]string{"&&", "||"})
		return "(" + g.iexpr(d-1) + " " + op + " " + g.iexpr(d-1) + ")"
	case 5:
		return "(" + g.iexpr(d-1) + " " + g.pick([]string{"<<", ">>"}) + " " + fmt.Sprintf("%d", g.r.Intn(4)) + ")"
	default:
		return "(" + g.cond(d-1) + " ? " + g.iexpr(d-1) + " : " + g.iexpr(d-1) + ")"
	}
}

// index emits an array index for an array of length n: usually provably
// in-bounds, occasionally not (both engines must fault identically).
func (g *progGen) index(n int) string {
	if len(g.loopVars) > 0 && g.r.Intn(3) != 0 {
		v := g.pick(g.loopVars)
		if g.r.Intn(10) == 0 {
			return fmt.Sprintf("(%s + %d)", v, g.r.Intn(4))
		}
		return fmt.Sprintf("((%s * %d + %d) %% %d)", v, 1+g.r.Intn(5), g.r.Intn(n), n)
	}
	return fmt.Sprintf("%d", g.r.Intn(n))
}

func (g *progGen) cond(d int) string {
	if d <= 0 {
		return "(" + g.iexpr(0) + " < " + g.iexpr(0) + ")"
	}
	switch g.r.Intn(3) {
	case 0:
		return "(" + g.fexpr(d-1) + " " + g.pick([]string{"<", "<=", ">", ">="}) + " " + g.fexpr(d-1) + ")"
	case 1:
		return "(" + g.iexpr(d-1) + " " + g.pick([]string{"==", "!="}) + " " + g.iexpr(d-1) + ")"
	default:
		return "(" + g.cond(d-1) + " " + g.pick([]string{"&&", "||"}) + " " + g.cond(d-1) + ")"
	}
}

func (g *progGen) line(depth int, format string, args ...interface{}) {
	g.sb.WriteString(strings.Repeat("    ", depth))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteString("\n")
}

// stmt emits one statement at the given indent depth.
func (g *progGen) stmt(depth, d int) {
	switch g.r.Intn(10) {
	case 0:
		g.line(depth, "%s = %s;", g.pick(g.floatVars), g.fexpr(d))
	case 1:
		g.line(depth, "%s = %s;", g.pick(g.intVars), g.iexpr(d))
	case 2:
		a := g.farrs[g.r.Intn(len(g.farrs))]
		g.line(depth, "%s[%s] = %s;", a.name, g.index(a.n), g.fexpr(d))
	case 3:
		op := g.pick([]string{"+=", "-=", "*="})
		if g.r.Intn(2) == 0 {
			a := g.farrs[g.r.Intn(len(g.farrs))]
			g.line(depth, "%s[%s] %s %s;", a.name, g.index(a.n), op, g.fexpr(d-1))
		} else {
			g.line(depth, "%s %s %s;", g.pick(g.floatVars), op, g.fexpr(d-1))
		}
	case 4:
		g.line(depth, "%s%s;", g.pick(g.intVars), g.pick([]string{"++", "--"}))
	case 5:
		g.line(depth, "printf(\"%%d %%g\\n\", %s, %s);", g.iexpr(d-1), g.fexpr(d-1))
	case 6:
		g.line(depth, "if %s {", g.cond(d))
		g.stmt(depth+1, d-1)
		if g.r.Intn(2) == 0 {
			g.line(depth, "} else {")
			g.stmt(depth+1, d-1)
		}
		g.line(depth, "}")
	case 7:
		if g.r.Intn(3) == 0 {
			g.vecLoop(depth, d)
		} else {
			g.forLoop(depth, d, false)
		}
	case 8:
		v := g.pick(g.intVars)
		g.line(depth, "%s = 0;", v)
		g.line(depth, "while (%s < %d) {", v, 2+g.r.Intn(6))
		g.stmt(depth+1, d-1)
		g.line(depth+1, "%s = %s + 1;", v, v)
		g.line(depth, "}")
	default:
		g.offloadLoop(depth, d)
	}
}

// forLoop emits a bounded counting loop over a fresh counter, optionally
// as an omp parallel-for.
func (g *progGen) forLoop(depth, d int, omp bool) {
	if len(g.loopVars) >= 3 {
		g.line(depth, "%s = %s;", g.pick(g.floatVars), g.fexpr(d))
		return
	}
	v := []string{"i", "j", "k"}[len(g.loopVars)]
	n := 4 + g.r.Intn(28)
	if omp {
		g.line(depth, "#pragma omp parallel for")
	}
	g.line(depth, "for (%s = 0; %s < %d; %s++) {", v, v, n, v)
	g.loopVars = append(g.loopVars, v)
	g.stmt(depth+1, d-1)
	if g.r.Intn(3) == 0 {
		g.stmt(depth+1, d-1)
	}
	g.loopVars = g.loopVars[:len(g.loopVars)-1]
	g.line(depth, "}")
}

// vexpr emits an element-wise expression over the loop counter v: array
// reads a[v], the counter itself, scalars, literals, and pure arithmetic
// — the shapes the columnar pattern-matcher accepts, so generated
// programs routinely exercise the batch tier.
func (g *progGen) vexpr(v string, arrs []genArr, d int) string {
	if d <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return g.flit()
		case 1:
			return g.pick(g.floatVars)
		case 2:
			return v
		default:
			return arrs[g.r.Intn(len(arrs))].name + "[" + v + "]"
		}
	}
	switch g.r.Intn(6) {
	case 0, 1:
		op := g.pick([]string{"+", "-", "*"})
		return "(" + g.vexpr(v, arrs, d-1) + " " + op + " " + g.vexpr(v, arrs, d-1) + ")"
	case 2:
		return "(" + g.vexpr(v, arrs, d-1) + " / (" + g.flit() + " + 1.0))"
	case 3:
		b := g.pick([]string{"sqrt", "fabs", "exp"})
		return b + "(fabs(" + g.vexpr(v, arrs, d-1) + "))"
	case 4:
		b := g.pick([]string{"fmin", "fmax"})
		return b + "(" + g.vexpr(v, arrs, d-1) + ", " + g.flit() + ")"
	default:
		// Eager select: sites may appear in the condition but the arms
		// must stay pure for the loop to qualify.
		return "((" + g.vexpr(v, arrs, d-1) + " > " + g.flit() + ") ? " + g.flit() + " : " + g.flit() + ")"
	}
}

// vecLoop emits a loop shaped to pass the columnar qualifier: unit step,
// element-wise body over a[v] sites, occasionally a ragged bound or a
// compound store so tails and read-modify-write batches get coverage.
func (g *progGen) vecLoop(depth, d int) {
	if len(g.loopVars) >= 3 {
		g.forLoop(depth, d, false)
		return
	}
	v := []string{"i", "j", "k"}[len(g.loopVars)]
	na := 1 + g.r.Intn(2)
	arrs := make([]genArr, 0, na+1)
	n := 1 << 30
	for x := 0; x < na; x++ {
		a := g.farrs[g.r.Intn(len(g.farrs))]
		arrs = append(arrs, a)
		if a.n < n {
			n = a.n
		}
	}
	out := g.farrs[g.r.Intn(len(g.farrs))]
	if out.n < n {
		n = out.n
	}
	if g.r.Intn(4) == 0 {
		n -= g.r.Intn(3) // ragged vs the block size is fine; stay in bounds
	}
	g.line(depth, "for (%s = 0; %s < %d; %s++) {", v, v, n, v)
	g.loopVars = append(g.loopVars, v)
	if g.r.Intn(3) == 0 {
		g.line(depth+1, "float tv = %s;", g.vexpr(v, arrs, d-1))
		g.line(depth+1, "%s[%s] = tv + %s;", out.name, v, g.vexpr(v, arrs, d-1))
	} else if g.r.Intn(3) == 0 {
		g.line(depth+1, "%s[%s] %s %s;", out.name, v, g.pick([]string{"+=", "-=", "*="}), g.vexpr(v, arrs, d-1))
	} else {
		g.line(depth+1, "%s[%s] = %s;", out.name, v, g.vexpr(v, arrs, d-1))
	}
	g.loopVars = g.loopVars[:len(g.loopVars)-1]
	g.line(depth, "}")
}

// offloadLoop emits a full offload region: transfer clauses over real
// global arrays plus an omp kernel loop writing the out array.
func (g *progGen) offloadLoop(depth, d int) {
	if len(g.loopVars) > 0 {
		// Offloads don't nest (the tree-walker faults); stay host-side.
		g.forLoop(depth, d, false)
		return
	}
	in := g.farrs[g.r.Intn(len(g.farrs))]
	out := g.farrs[g.r.Intn(len(g.farrs))]
	n := in.n
	if out.n < n {
		n = out.n
	}
	clause := fmt.Sprintf("in(%s : length(%d)) out(%s : length(%d))", in.name, in.n, out.name, out.n)
	if in.name == out.name {
		clause = fmt.Sprintf("inout(%s : length(%d))", in.name, in.n)
	} else if g.r.Intn(4) == 0 {
		clause = fmt.Sprintf("in(%s : length(%d) alloc_if(1) free_if(1)) inout(%s : length(%d))", in.name, in.n, out.name, out.n)
	}
	g.line(depth, "#pragma offload target(mic:0) %s", clause)
	g.line(depth, "#pragma omp parallel for")
	g.line(depth, "for (i = 0; i < %d; i++) {", n)
	g.loopVars = append(g.loopVars, "i")
	g.line(depth+1, "%s[i] = %s;", out.name, g.fexpr(d-1))
	g.loopVars = g.loopVars[:len(g.loopVars)-1]
	g.line(depth, "}")
}

// genProgram builds one complete random MiniC program.
func genProgram(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.floatVars = []string{"fs0", "fs1"}
	g.intVars = []string{"is0", "is1", "i", "j", "k"}
	nf := 2 + g.r.Intn(2)
	for x := 0; x < nf; x++ {
		g.farrs = append(g.farrs, genArr{fmt.Sprintf("FA%d", x), 8 + 4*g.r.Intn(7)})
	}
	g.iarrs = []genArr{{"IA0", 8 + 4*g.r.Intn(5)}}
	g.helpers = 1 + g.r.Intn(2)

	for _, a := range g.farrs {
		g.line(0, "float %s[%d];", a.name, a.n)
	}
	for _, a := range g.iarrs {
		g.line(0, "int %s[%d];", a.name, a.n)
	}
	g.line(0, "float fs0; float fs1;")
	g.line(0, "int is0; int is1; int i; int j; int k;")

	for h := 0; h < g.helpers; h++ {
		g.line(0, "float h%d(float p0, float p1) {", h)
		if g.r.Intn(2) == 0 {
			g.line(1, "if ((p0 > p1)) {")
			g.line(2, "return p0 - %s;", g.flit())
			g.line(1, "}")
		}
		g.line(1, "return (p0 + p1 * %s);", g.flit())
		g.line(0, "}")
	}

	g.line(0, "int main(void) {")
	// Seed the arrays with deterministic contents first.
	for _, a := range g.farrs {
		g.line(1, "for (i = 0; i < %d; i++) { %s[i] = i * %s + %s; }", a.n, a.name, g.flit(), g.flit())
	}
	for _, a := range g.iarrs {
		g.line(1, "for (i = 0; i < %d; i++) { %s[i] = (i * %d) %% %d; }", a.n, a.name, 1+g.r.Intn(6), a.n)
	}
	nStmts := 4 + g.r.Intn(7)
	for s := 0; s < nStmts; s++ {
		g.stmt(1, 2+g.r.Intn(2))
	}
	g.line(1, "printf(\"%%g %%g %%d %%d\\n\", fs0, fs1, is0, is1);")
	for _, a := range g.farrs {
		g.line(1, "printf(\"%%g\\n\", %s[%d]);", a.name, g.r.Intn(a.n))
	}
	g.line(1, "return 0;")
	g.line(0, "}")
	return g.sb.String()
}

// TestVMDiffRandomPrograms sweeps generated programs through both engines.
// The generator only emits well-formed MiniC, so a compile failure is a
// generator bug and fails loudly with the source attached.
func TestVMDiffRandomPrograms(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			src := genProgram(int64(seed))
			defer func() {
				if t.Failed() {
					t.Logf("source:\n%s", src)
				}
			}()
			diffRun(t, src, nil, 2_000_000)
		})
	}
}
