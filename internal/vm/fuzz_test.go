package vm_test

import (
	"regexp"
	"testing"

	"comp/internal/interp"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// bigLiteral rejects fuzz inputs that could allocate gigabyte arrays:
// execution-fuzzing needs a memory bound the parse-only fuzzers don't.
var bigLiteral = regexp.MustCompile(`[0-9]{6,}`)

// FuzzVMDiff: any input the front end accepts must execute identically on
// the tree-walker and the VM — same output, same globals, same backend
// event stream, same error. A VM panic that is not a RuntimeError escapes
// Run and fails the target. The checked-in corpus under testdata/fuzz
// carries over the minic parser corpus; the generator seeds add full
// programs with offload regions.
func FuzzVMDiff(f *testing.F) {
	for _, b := range workloads.All() {
		if b.SharedMem {
			continue
		}
		f.Add(b.Source)
		if src, err := b.CPUSource(); err == nil {
			f.Add(src)
		}
	}
	for seed := int64(0); seed < 8; seed++ {
		f.Add(genProgram(seed))
	}
	f.Add("int a; int main(void) { a = 1 / (a - a); return 0; }")
	f.Add("int main(void) { printf(\"%d %d\\n\", 1); return 0; }")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 32<<10 || bigLiteral.MatchString(src) {
			t.Skip("input too large to execute safely")
		}
		ref, err := interp.Compile(src)
		if err != nil {
			t.Skip("front end rejects input")
		}
		ref.SetEngine(nil)
		got, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("second compile of accepted input failed: %v", err)
		}
		if err := vm.Attach(got); err != nil {
			t.Fatalf("vm rejects a program the tree-walker accepted: %v", err)
		}
		const budget = 50_000
		refRes := execProgram(ref, nil, budget)
		compareRuns(t, refRes, execProgram(got, nil, budget))

		col, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("third compile of accepted input failed: %v", err)
		}
		if err := vm.AttachColumnar(col); err != nil {
			t.Fatalf("columnar vm rejects a program the tree-walker accepted: %v", err)
		}
		compareRunsAs(t, refRes, execProgram(col, nil, budget), "columnar")
	})
}

// FuzzColumnarDiff: the columnar tier against the tree-walker alone, with
// seeds biased toward loops that actually lower to fused vector ops —
// batched stores, ragged tails, eager selects, read-modify-write sites.
func FuzzColumnarDiff(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(genProgram(seed))
	}
	f.Add(`float a[20]; float b[20]; int main(void) { int i; for (i = 0; i < 20; i++) { a[i] = i * 0.5; } for (i = 0; i < 20; i++) { b[i] = a[i] * 2.0 + 1.0; } printf("%g\n", b[19]); return 0; }`)
	f.Add(`float a[9]; float lim; int main(void) { int i; lim = 6.5; for (i = 0; i < 9; i++) { a[i] = i; } for (i = 0; i < lim; i++) { a[i] += 1.5; } printf("%g %d\n", a[8], i); return 0; }`)
	f.Add(`int a[12]; int main(void) { int i; for (i = 0; i < 12; i++) { a[i] = i * 5 % 7; } for (i = 0; i < 14; i++) { a[i] = a[i] + 1; } return 0; }`)

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 32<<10 || bigLiteral.MatchString(src) {
			t.Skip("input too large to execute safely")
		}
		ref, err := interp.Compile(src)
		if err != nil {
			t.Skip("front end rejects input")
		}
		ref.SetEngine(nil)
		got, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("second compile of accepted input failed: %v", err)
		}
		if err := vm.AttachColumnar(got); err != nil {
			t.Fatalf("columnar vm rejects a program the tree-walker accepted: %v", err)
		}
		const budget = 50_000
		compareRunsAs(t, execProgram(ref, nil, budget), execProgram(got, nil, budget), "columnar")
	})
}
