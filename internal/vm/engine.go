package vm

import (
	"fmt"

	"comp/internal/interp"
)

// Engine executes a compiled Module as a drop-in replacement for the
// tree-walker. One Engine is bound to one Program; each Run gets a fresh
// machine, so an Engine is reusable across Reset/Run cycles.
type Engine struct {
	mod *Module
	// columnar enables the batched columnar tier for qualifying loops;
	// the bytecode is identical either way (OpVecLoop is a no-op when off).
	columnar bool
}

// NewEngine compiles a Program to bytecode.
func NewEngine(p *interp.Program) (*Engine, error) {
	mod, err := CompileProgram(p)
	if err != nil {
		return nil, err
	}
	return &Engine{mod: mod}, nil
}

// NewColumnarEngine compiles a Program to bytecode with the columnar
// batch tier enabled.
func NewColumnarEngine(p *interp.Program) (*Engine, error) {
	e, err := NewEngine(p)
	if err != nil {
		return nil, err
	}
	e.columnar = true
	return e, nil
}

// Factory adapts NewEngine to interp.EngineFactory for SetDefaultEngine.
func Factory(p *interp.Program) (interp.Engine, error) {
	e, err := NewEngine(p)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// ColumnarFactory is Factory with the columnar tier enabled.
func ColumnarFactory(p *interp.Program) (interp.Engine, error) {
	e, err := NewColumnarEngine(p)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Install makes the VM the default engine for every subsequently compiled
// program; InstallColumnar additionally turns on the columnar batch tier;
// Uninstall restores the tree-walker.
func Install()         { interp.SetDefaultEngine(Factory) }
func InstallColumnar() { interp.SetDefaultEngine(ColumnarFactory) }
func Uninstall()       { interp.SetDefaultEngine(nil) }

// Attach compiles p for the VM and installs the engine on it, overriding
// whatever engine (or tree-walker default) it carries.
func Attach(p *interp.Program) error {
	e, err := NewEngine(p)
	if err != nil {
		return err
	}
	p.SetEngine(e)
	return nil
}

// AttachColumnar is Attach with the columnar batch tier enabled.
func AttachColumnar(p *interp.Program) error {
	e, err := NewColumnarEngine(p)
	if err != nil {
		return err
	}
	p.SetEngine(e)
	return nil
}

// Module returns the compiled bytecode (for disassembly and tests).
func (e *Engine) Module() *Module { return e.mod }

// Run implements interp.Engine: execute main() against the backend,
// converting VM faults to *interp.RuntimeError exactly like the
// tree-walker's Run.
func (e *Engine) Run(p *interp.Program, b interp.Backend) (err error) {
	if p != e.mod.Prog {
		return fmt.Errorf("vm: engine bound to a different program")
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*interp.RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	m := &machine{p: p, backend: b, mod: e.mod, colOn: e.columnar}
	m.work = &m.hostWork
	m.refreshBucket()
	if n := p.LoopBudget(); n > 0 {
		m.budgetOn = true
		m.budget = n
	}
	m.callFunc(e.mod.Funcs[e.mod.Main], nil, nil)
	// Flush trailing host work.
	if !m.hostWork.Zero() {
		b.HostCompute(m.hostWork)
		m.hostWork = interp.Work{}
	}
	return nil
}

// ExecModes lists the -exec flag values the cmds accept.
const (
	ExecInterp   = "interp"
	ExecVM       = "vm"
	ExecColumnar = "columnar"
)

// SetExecMode configures the process-wide default engine from a -exec
// flag value, returning an error on unknown modes.
func SetExecMode(mode string) error {
	switch mode {
	case ExecInterp:
		Uninstall()
	case ExecVM:
		Install()
	case ExecColumnar:
		InstallColumnar()
	default:
		return fmt.Errorf("unknown exec mode %q (want %s, %s, or %s)", mode, ExecInterp, ExecVM, ExecColumnar)
	}
	return nil
}

// Apply pins one program's engine from an exec-mode string: "vm" compiles
// it to bytecode, "columnar" does the same with the batch tier on,
// "interp" forces the tree-walker, "" leaves whatever the process default
// (SetExecMode / Install) already attached.
func Apply(p *interp.Program, mode string) error {
	switch mode {
	case "":
		return nil
	case ExecInterp:
		p.SetEngine(nil)
		return nil
	case ExecVM:
		return Attach(p)
	case ExecColumnar:
		return AttachColumnar(p)
	default:
		return fmt.Errorf("unknown exec mode %q (want %s, %s, or %s)", mode, ExecInterp, ExecVM, ExecColumnar)
	}
}
