package vm

import "math"

// The peephole pass rewrites a chunk's baseline encoding into fused
// superinstructions after jump patching. Fusion is purely local: a pair
// (i, i+1) collapses into one instruction only when control cannot enter
// between them, i.e. i+1 is not the target of any jump. Jump targets are
// remapped to the rewritten indices afterwards, so the pass preserves the
// chunk's CFG exactly and the verifier re-checks the result. The pass runs
// to a fixpoint because one rewrite can expose another (OpRefG + OpLoadIdxL
// only exists after OpLoad + OpLoadIdx fused).
//
// Only pairs with no independent failure semantics are fused: comparisons
// feeding a conditional jump, pushes feeding a plain float binop, moves,
// and array element accesses. Integer div/mod (zero checks), shifts, and
// the region/call opcodes keep their baseline encoding. The global access
// fusions additionally require the access descriptor to agree with the
// OpRefG operands, so fault positions stay bit-identical to the
// tree-walker's.

// inlineIdxLimit bounds the operand index packable into OpCmpJmpC/G's B
// field next to the comparison kind and sense bits.
const inlineIdxLimit = 1 << 27

// cmpKindOf maps a comparison opcode to its OpCmpJmp kind.
func cmpKindOf(op Op) (int32, bool) {
	switch op {
	case OpEq:
		return cmpEq, true
	case OpNe:
		return cmpNe, true
	case OpLt:
		return cmpLt, true
	case OpLe:
		return cmpLe, true
	case OpGt:
		return cmpGt, true
	case OpGe:
		return cmpGe, true
	}
	return 0, false
}

// arithFused returns the fused opcode for a float binop whose second
// operand comes from a local (base OpLoad), a constant, or a global.
func arithFused(bin, src Op) (Op, bool) {
	var k int
	switch bin {
	case OpAdd:
		k = 0
	case OpSub:
		k = 1
	case OpMul:
		k = 2
	case OpDivF:
		k = 3
	default:
		return OpNop, false
	}
	switch src {
	case OpLoad:
		return OpAddL + Op(k), true
	case OpConst:
		return OpAddC + Op(k), true
	case OpLoadG:
		return OpAddG + Op(k), true
	}
	return OpNop, false
}

// constIdx interns v into the chunk's constant pool, reusing an existing
// entry when one matches bit-for-bit (NaN folds never arise here: the pass
// only folds Neg/Trunc of literals the front end emitted).
func constIdx(ch *Chunk, v float64) int32 {
	for i, c := range ch.Consts {
		if math.Float64bits(c) == math.Float64bits(v) {
			return int32(i)
		}
	}
	ch.Consts = append(ch.Consts, v)
	return int32(len(ch.Consts) - 1)
}

// fusePair returns the fused replacement for the instruction pair (a, b),
// or ok=false when the pair has no fusion.
func fusePair(ch *Chunk, a, b Instr) (Instr, bool) {
	if k, ok := cmpKindOf(a.Op); ok {
		switch b.Op {
		case OpJz:
			return Instr{Op: OpCmpJmp, A: b.A, B: k << 1}, true
		case OpJnz:
			return Instr{Op: OpCmpJmp, A: b.A, B: k<<1 | 1}, true
		}
		return Instr{}, false
	}
	if op, ok := arithFused(b.Op, a.Op); ok {
		return Instr{Op: op, A: a.A}, true
	}
	switch a.Op {
	case OpLoad:
		switch b.Op {
		case OpLoadIdx:
			return Instr{Op: OpLoadIdxL, A: b.A, B: a.A}, true
		case OpStoreIdx:
			return Instr{Op: OpStoreIdxL, A: b.A, B: a.A}, true
		case OpStore:
			return Instr{Op: OpMove, A: a.A, B: b.A}, true
		case OpStoreT:
			return Instr{Op: OpMoveT, A: a.A, B: b.A}, true
		case OpAddC, OpSubC, OpMulC, OpDivC:
			return Instr{Op: OpAddLC + (b.Op - OpAddC), A: a.A, B: b.A}, true
		case OpLoad:
			return Instr{Op: OpLoad2, A: a.A, B: b.A}, true
		case OpConst:
			return Instr{Op: OpLoadC, A: a.A, B: b.A}, true
		case OpNeg:
			return Instr{Op: OpNegL, A: a.A}, true
		case OpBuiltin:
			if int(b.A) < len(builtinArity) && builtinArity[b.A] == 1 {
				return Instr{Op: OpBuiltinL, A: b.A, B: a.A}, true
			}
		case OpRetV:
			return Instr{Op: OpRetL, A: a.A}, true
		}
	case OpLoad2:
		// Both binop inputs come straight from frame slots.
		switch b.Op {
		case OpAdd:
			return Instr{Op: OpAddLL, A: a.A, B: a.B}, true
		case OpSub:
			return Instr{Op: OpSubLL, A: a.A, B: a.B}, true
		case OpMul:
			return Instr{Op: OpMulLL, A: a.A, B: a.B}, true
		case OpDivF:
			return Instr{Op: OpDivLL, A: a.A, B: a.B}, true
		case OpBuiltin:
			if (b.A == bPow || b.A == bFmin || b.A == bFmax) && a.A < 1<<15 && a.B < 1<<15 {
				return Instr{Op: OpBuiltin2L, A: b.A, B: a.A<<16 | a.B}, true
			}
		}
	case OpLoadC:
		// Slot-and-constant push feeding a binop collapses to the LC form.
		switch b.Op {
		case OpAdd:
			return Instr{Op: OpAddLC, A: a.A, B: a.B}, true
		case OpSub:
			return Instr{Op: OpSubLC, A: a.A, B: a.B}, true
		case OpMul:
			return Instr{Op: OpMulLC, A: a.A, B: a.B}, true
		case OpDivF:
			return Instr{Op: OpDivLC, A: a.A, B: a.B}, true
		}
	case OpConst2:
		// Two literals feeding a binop fold at compile time: the runtime
		// would perform the identical float64 operation.
		var v float64
		switch b.Op {
		case OpAdd:
			v = ch.Consts[a.A] + ch.Consts[a.B]
		case OpSub:
			v = ch.Consts[a.A] - ch.Consts[a.B]
		case OpMul:
			v = ch.Consts[a.A] * ch.Consts[a.B]
		case OpDivF:
			v = ch.Consts[a.A] / ch.Consts[a.B]
		default:
			return Instr{}, false
		}
		return Instr{Op: OpConst, A: constIdx(ch, v)}, true
	case OpConst:
		switch b.Op {
		case OpCmpJmp:
			if a.A < inlineIdxLimit {
				return Instr{Op: OpCmpJmpC, A: b.A, B: a.A<<4 | b.B}, true
			}
		case OpNeg:
			// Fold: negating a literal at compile time produces the same
			// float64 bits the runtime negation would.
			return Instr{Op: OpConst, A: constIdx(ch, -ch.Consts[a.A])}, true
		case OpTrunc:
			return Instr{Op: OpConst, A: constIdx(ch, math.Trunc(ch.Consts[a.A]))}, true
		case OpStore:
			return Instr{Op: OpConstSt, A: a.A, B: b.A}, true
		case OpStoreT:
			return Instr{Op: OpConstSt, A: constIdx(ch, math.Trunc(ch.Consts[a.A])), B: b.A}, true
		case OpConst:
			return Instr{Op: OpConst2, A: a.A, B: b.A}, true
		}
	case OpSetRet:
		if b.Op == OpRet {
			return Instr{Op: OpRetV}, true
		}
	case OpInc:
		// Loop latch: step-then-jump with the step zig-zagged next to the
		// slot. Steps outside 16 bits keep the baseline pair.
		if b.Op == OpJmp && a.B > -incBias && a.B < incBias && a.A < 1<<15 {
			return Instr{Op: OpIncJmp, A: b.A, B: a.A<<16 | (a.B + incBias)}, true
		}
	case OpLoadG:
		if b.Op == OpCmpJmp && a.A < inlineIdxLimit {
			return Instr{Op: OpCmpJmpG, A: b.A, B: a.A<<4 | b.B}, true
		}
	case OpRefG:
		// Whole-site global access: only when the access descriptor names
		// the same global as the OpRefG being absorbed. The RefG's own
		// fault position is recorded in the (per-site) descriptor so
		// missing-storage errors stay bit-identical.
		var op Op
		switch b.Op {
		case OpLoadIdxL:
			op = OpLoadIdxG
		case OpStoreIdxL:
			op = OpStoreIdxG
		default:
			return Instr{}, false
		}
		if int(b.A) >= len(ch.Accesses) {
			return Instr{}, false
		}
		if acc := &ch.Accesses[b.A]; acc.GIdx == a.A {
			acc.RefPos = a.B
			return Instr{Op: op, A: b.A, B: b.B}, true
		}
	}
	return Instr{}, false
}

// peepholeOnce performs one fusion sweep; it reports whether any pair fused.
func peepholeOnce(ch *Chunk) bool {
	code := ch.Code
	n := len(code)
	isTarget := make([]bool, n+1)
	for _, in := range code {
		switch in.Op {
		case OpJmp, OpJz, OpJnz, OpCmpJmp, OpCmpJmpC, OpCmpJmpG, OpIncJmp:
			if in.A >= 0 && int(in.A) <= n {
				isTarget[in.A] = true
			}
		}
	}
	out := make([]Instr, 0, n)
	remap := make([]int32, n+1)
	for i := 0; i < n; {
		remap[i] = int32(len(out))
		if i+1 < n && !isTarget[i+1] {
			if f, ok := fusePair(ch, code[i], code[i+1]); ok {
				remap[i+1] = int32(len(out))
				out = append(out, f)
				i += 2
				continue
			}
		}
		out = append(out, code[i])
		i++
	}
	remap[n] = int32(len(out))
	for j := range out {
		switch out[j].Op {
		case OpJmp, OpJz, OpJnz, OpCmpJmp, OpCmpJmpC, OpCmpJmpG, OpIncJmp:
			// Out-of-range targets are left for the verifier to reject.
			if t := out[j].A; t >= 0 && int(t) <= n {
				out[j].A = remap[t]
			}
		}
	}
	shrunk := len(out) < n
	ch.Code = out
	return shrunk
}

// peephole rewrites ch.Code in place, iterating until no pair fuses.
// Work-charge coalescing runs first: it both removes dispatches and joins
// statements, exposing cross-statement pairs to the fusion sweep.
func peephole(ch *Chunk) {
	mergeWork(ch)
	for peepholeOnce(ch) {
	}
}

// workBoundary reports whether in ends a Work-coalescing block. A later
// OpWork may fold into an earlier one only when no instruction between them
// can flush accounting to the Backend (calls, region brackets, transfers)
// or leave the straight-line path (jumps, returns). Faulting instructions
// are not boundaries: a fault aborts the run before any flush, so the
// pending bucket is dropped identically in both engines.
func workBoundary(op Op) bool {
	switch op {
	case OpJmp, OpJz, OpJnz, OpCmpJmp, OpCmpJmpC, OpCmpJmpG, OpIncJmp,
		OpCall, OpParEnter, OpParExit, OpOffEnter, OpOffExit,
		OpTransfer, OpWait, OpRet, OpRetV, OpRetL:
		return true
	}
	return false
}

// mergeWork folds every OpWork in a straight-line block into the block's
// first, summing the charge triples. The bucket only accumulates between
// flush points, so charge order within a block is unobservable.
func mergeWork(ch *Chunk) {
	code := ch.Code
	n := len(code)
	isTarget := make([]bool, n+1)
	for _, in := range code {
		switch in.Op {
		case OpJmp, OpJz, OpJnz, OpCmpJmp, OpCmpJmpC, OpCmpJmpG, OpIncJmp:
			if in.A >= 0 && int(in.A) <= n {
				isTarget[in.A] = true
			}
		}
	}
	out := make([]Instr, 0, n)
	remap := make([]int32, n+1)
	anchor := -1 // index in out of the block's first OpWork
	var sum WorkTriple
	merged := false
	flushAnchor := func() {
		if anchor >= 0 && merged {
			ch.Works = append(ch.Works, sum)
			out[anchor].A = int32(len(ch.Works) - 1)
		}
		anchor = -1
		merged = false
	}
	for i := 0; i < n; i++ {
		if isTarget[i] {
			flushAnchor()
		}
		remap[i] = int32(len(out))
		in := code[i]
		if in.Op == OpWork && int(in.A) < len(ch.Works) {
			if anchor < 0 {
				anchor = len(out)
				sum = ch.Works[in.A]
				out = append(out, in)
			} else {
				w := ch.Works[in.A]
				sum.W += w.W
				sum.B += w.B
				sum.Irr += w.Irr
				merged = true
			}
			continue
		}
		out = append(out, in)
		if workBoundary(in.Op) {
			flushAnchor()
		}
	}
	flushAnchor()
	remap[n] = int32(len(out))
	for j := range out {
		switch out[j].Op {
		case OpJmp, OpJz, OpJnz, OpCmpJmp, OpCmpJmpC, OpCmpJmpG, OpIncJmp:
			if t := out[j].A; t >= 0 && int(t) <= n {
				out[j].A = remap[t]
			}
		}
	}
	ch.Code = out
}
