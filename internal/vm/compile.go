package vm

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/interp"
	"comp/internal/minic"
)

// CompileProgram lowers a checked, interp-compiled Program to bytecode.
// It mirrors internal/interp's tree compiler decision for decision: the
// same scoping, the same statically computed cost triples charged at the
// same program points, and the same runtime error positions. Programs it
// cannot express return an error so the caller falls back to the
// tree-walker.
func CompileProgram(p *interp.Program) (*Module, error) {
	c := &comp{
		prog: p,
		file: p.File(),
		mod: &Module{
			Prog:   p,
			ByName: map[string]int{},
			Main:   -1,
		},
		gidx: map[string]int{},
	}
	// Pre-register every function so calls (including recursion) resolve.
	for _, fd := range c.file.Funcs() {
		if fd.Body == nil {
			continue
		}
		c.mod.ByName[fd.Name] = len(c.mod.Funcs)
		c.mod.Funcs = append(c.mod.Funcs, &Chunk{Name: fd.Name})
	}
	for _, fd := range c.file.Funcs() {
		if fd.Body == nil {
			continue
		}
		if err := c.compileFunc(c.mod.Funcs[c.mod.ByName[fd.Name]], fd); err != nil {
			return nil, err
		}
	}
	// A missing main stays Main = -1: Program.Run faults before it ever
	// dispatches to the engine, so compilation must succeed regardless.
	if mi, ok := c.mod.ByName["main"]; ok {
		c.mod.Main = mi
	}
	for _, ch := range c.mod.Funcs {
		if err := finalizeChunk(ch, len(c.mod.Globals), len(c.mod.Funcs)); err != nil {
			return nil, fmt.Errorf("vm: %s: %w", ch.Name, err)
		}
	}
	return c.mod, nil
}

type bindKind int

const (
	bindLocal bindKind = iota
	bindLocalRef
	bindGlobal
)

type vbind struct {
	kind bindKind
	slot int
	gidx int
	typ  minic.Type
}

type cost struct{ w, b, irr float64 }

func (a cost) zero() bool { return a.w == 0 && a.b == 0 && a.irr == 0 }

type comp struct {
	prog *interp.Program
	file *minic.File
	mod  *Module
	gidx map[string]int

	fn       *Chunk
	code     []Instr
	scopes   []map[string]vbind
	loopVars []string
	loops    []*loopCtx
}

// loopCtx collects break/continue patch sites for the enclosing loop.
type loopCtx struct {
	breaks []int
	conts  []int
}

func (c *comp) errf(pos minic.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("vm: %s: %s", pos, fmt.Sprintf(format, args...))
}

// ---- emission helpers ----

func (c *comp) emit(op Op, a, b int32) int {
	c.code = append(c.code, Instr{Op: op, A: a, B: b})
	return len(c.code) - 1
}

func (c *comp) emitJump(op Op) int { return c.emit(op, -1, 0) }

func (c *comp) patch(at int) { c.code[at].A = int32(len(c.code)) }

func (c *comp) patchTo(at, target int) { c.code[at].A = int32(target) }

func (c *comp) here() int { return len(c.code) }

// markWork reserves a work-charge slot ahead of a statement's evaluation
// code; fillWork patches the final cost in once the expression has been
// compiled (or neutralizes the slot when the cost is zero). This keeps
// the tree-walker's charge-then-evaluate order without index rewriting.
func (c *comp) markWork() int { return c.emit(OpWork, -1, 0) }

func (c *comp) fillWork(mark int, k cost) {
	if k.zero() {
		c.code[mark] = Instr{Op: OpNop}
		return
	}
	c.code[mark].A = c.workIdx(k)
}

func (c *comp) constIdx(v float64) int32 {
	for i, cv := range c.fn.Consts {
		if cv == v {
			return int32(i)
		}
	}
	c.fn.Consts = append(c.fn.Consts, v)
	return int32(len(c.fn.Consts) - 1)
}

func (c *comp) workIdx(k cost) int32 {
	t := WorkTriple{W: k.w, B: k.b, Irr: k.irr}
	for i, w := range c.fn.Works {
		if w == t {
			return int32(i)
		}
	}
	c.fn.Works = append(c.fn.Works, t)
	return int32(len(c.fn.Works) - 1)
}

func (c *comp) emitWork(k cost) {
	if k.zero() {
		return
	}
	c.emit(OpWork, c.workIdx(k), 0)
}

func (c *comp) posIdx(pos minic.Pos) int32 {
	c.fn.Positions = append(c.fn.Positions, pos)
	return int32(len(c.fn.Positions) - 1)
}

func (c *comp) globalIdx(name string) (int32, bool) {
	if i, ok := c.gidx[name]; ok {
		return int32(i), true
	}
	h, ok := c.prog.Global(name)
	if !ok {
		return 0, false
	}
	i := len(c.mod.Globals)
	c.mod.Globals = append(c.mod.Globals, GlobalRef{Name: name, H: h})
	c.gidx[name] = i
	return int32(i), true
}

// ---- scoping ----

func (c *comp) push() { c.scopes = append(c.scopes, map[string]vbind{}) }
func (c *comp) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *comp) bind(name string, b vbind) { c.scopes[len(c.scopes)-1][name] = b }

func (c *comp) lookup(name string) (vbind, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if b, ok := c.scopes[i][name]; ok {
			return b, true
		}
	}
	if h, ok := c.prog.Global(name); ok {
		gi, _ := c.globalIdx(name)
		return vbind{kind: bindGlobal, gidx: int(gi), typ: h.Type()}, true
	}
	return vbind{}, false
}

func (c *comp) newSlot() int {
	s := c.fn.NumSlots
	c.fn.NumSlots++
	return s
}

func (c *comp) newRefSlot() int {
	s := c.fn.RefSlots
	c.fn.RefSlots++
	return s
}

func isRefType(t minic.Type) bool { return minic.ElemOf(t) != nil }

func isIntType(t minic.Type) bool {
	b, ok := t.(*minic.Basic)
	return ok && b.IsInteger()
}

// ---- functions ----

func (c *comp) compileFunc(ch *Chunk, fd *minic.FuncDecl) error {
	c.fn = ch
	c.code = nil
	c.push()
	defer c.pop()
	for _, p := range fd.Params {
		if isRefType(p.Type) {
			slot := c.newRefSlot()
			ch.Params = append(ch.Params, ParamSlot{Slot: slot, IsRef: true})
			c.bind(p.Name, vbind{kind: bindLocalRef, slot: slot, typ: p.Type})
		} else {
			slot := c.newSlot()
			ch.Params = append(ch.Params, ParamSlot{Slot: slot})
			c.bind(p.Name, vbind{kind: bindLocal, slot: slot, typ: p.Type})
		}
	}
	if err := c.block(fd.Body); err != nil {
		return err
	}
	c.emit(OpRet, 0, 0)
	ch.Code = c.code
	c.code = nil
	return nil
}

func (c *comp) block(b *minic.Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

// ---- statements ----

func (c *comp) stmt(s minic.Stmt) error {
	switch x := s.(type) {
	case *minic.Block:
		return c.block(x)
	case *minic.DeclStmt:
		return c.declStmt(x)
	case *minic.ExprStmt:
		mark := c.markWork()
		k, err := c.expr(x.X)
		if err != nil {
			return err
		}
		c.fillWork(mark, k)
		c.emit(OpPop, 0, 0)
		return nil
	case *minic.AssignStmt:
		return c.assign(x)
	case *minic.IncDecStmt:
		return c.incDec(x)
	case *minic.IfStmt:
		return c.ifStmt(x)
	case *minic.WhileStmt:
		return c.whileStmt(x)
	case *minic.ForStmt:
		return c.forStmt(x)
	case *minic.ReturnStmt:
		if x.X == nil {
			c.emit(OpConst, c.constIdx(0), 0)
			c.emit(OpSetRet, 0, 0)
			c.emit(OpRet, 0, 0)
			return nil
		}
		mark := c.markWork()
		k, err := c.expr(x.X)
		if err != nil {
			return err
		}
		c.fillWork(mark, k)
		c.emit(OpSetRet, 0, 0)
		c.emit(OpRet, 0, 0)
		return nil
	case *minic.BreakStmt:
		if len(c.loops) == 0 {
			return c.errf(x.Pos(), "break outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.breaks = append(lc.breaks, c.emitJump(OpJmp))
		return nil
	case *minic.ContinueStmt:
		if len(c.loops) == 0 {
			return c.errf(x.Pos(), "continue outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.conts = append(lc.conts, c.emitJump(OpJmp))
		return nil
	case *minic.PragmaStmt:
		return c.pragmaStmt(x)
	}
	return c.errf(s.Pos(), "unsupported statement %T", s)
}

func (c *comp) declStmt(d *minic.DeclStmt) error {
	vd := d.Decl
	if arr, ok := vd.Type.(*minic.Array); ok {
		if arr.Len == nil {
			return c.errf(vd.Pos(), "local array %s needs a length", vd.Name)
		}
		// Length expression is evaluated but, like the tree-walker, never
		// charged as work.
		if _, err := c.expr(arr.Len); err != nil {
			return err
		}
		slot := c.newRefSlot()
		c.bind(vd.Name, vbind{kind: bindLocalRef, slot: slot, typ: vd.Type})
		c.fn.NewArrs = append(c.fn.NewArrs, NewArrDesc{
			Name: vd.Name, Elem: arr.Elem, Slot: int32(slot), Pos: c.posIdx(vd.Pos()),
		})
		c.emit(OpNewArr, int32(len(c.fn.NewArrs)-1), 0)
		return nil
	}
	if isRefType(vd.Type) {
		slot := c.newRefSlot()
		c.bind(vd.Name, vbind{kind: bindLocalRef, slot: slot, typ: vd.Type})
		if vd.Init == nil {
			c.emit(OpRefNull, 0, 0)
			c.emit(OpRefStoreL, int32(slot), 0)
			return nil
		}
		if err := c.ref(vd.Init, minic.ElemOf(vd.Type)); err != nil {
			return err
		}
		c.emit(OpRefStoreL, int32(slot), 0)
		return nil
	}
	slot := c.newSlot()
	c.bind(vd.Name, vbind{kind: bindLocal, slot: slot, typ: vd.Type})
	if vd.Init == nil {
		c.emit(OpZero, int32(slot), 0)
		return nil
	}
	mark := c.markWork()
	k, err := c.expr(vd.Init)
	if err != nil {
		return err
	}
	c.fillWork(mark, k)
	if isIntType(vd.Type) {
		c.emit(OpStoreT, int32(slot), 0)
	} else {
		c.emit(OpStore, int32(slot), 0)
	}
	return nil
}

func (c *comp) assign(x *minic.AssignStmt) error {
	// Pointer assignment: p = malloc(...), p = q, p = 0.
	if id, ok := x.LHS.(*minic.Ident); ok {
		if bnd, found := c.lookup(id.Name); found && isRefType(bnd.typ) {
			if x.Op != "=" {
				return c.errf(x.Pos(), "compound assignment to pointer %s", id.Name)
			}
			switch bnd.kind {
			case bindLocalRef:
				if err := c.ref(x.RHS, minic.ElemOf(bnd.typ)); err != nil {
					return err
				}
				c.emit(OpRefStoreL, int32(bnd.slot), 0)
				return nil
			case bindGlobal:
				// The tree-walker checks the on-device rebind before
				// evaluating the RHS; preserve that error order.
				c.emit(OpDevChk, int32(bnd.gidx), c.posIdx(x.Pos()))
				if err := c.ref(x.RHS, minic.ElemOf(bnd.typ)); err != nil {
					return err
				}
				c.emit(OpRefStoreG, int32(bnd.gidx), 0)
				return nil
			}
		}
	}

	lv, err := c.lvalue(x.LHS)
	if err != nil {
		return err
	}
	op := ""
	if x.Op != "=" {
		op = x.Op[:len(x.Op)-1]
	}
	mark := c.markWork()
	if op == "" {
		k, err := c.expr(x.RHS)
		if err != nil {
			return err
		}
		c.fillWork(mark, cost{k.w + lv.w + 1, k.b + lv.b, k.irr + lv.irr})
		if lv.intTyped {
			c.emit(OpTrunc, 0, 0)
		}
		return lv.emitStore(c)
	}
	// Compound: read, combine, write — the lvalue address is evaluated
	// twice, and its bytes charged twice, exactly like the tree-walker.
	if err := lv.emitLoad(c); err != nil {
		return err
	}
	k, err := c.expr(x.RHS)
	if err != nil {
		return err
	}
	c.fillWork(mark, cost{k.w + lv.w + 1, k.b + 2*lv.b, k.irr + 2*lv.irr})
	if err := c.emitBinOp(op, lv.intTyped, -1); err != nil {
		return c.errf(x.Pos(), "unknown operator %q", op)
	}
	if lv.intTyped {
		c.emit(OpTrunc, 0, 0)
	}
	return lv.emitStore(c)
}

// emitBinOp emits one binary operator. posIdx < 0 selects the pos-less
// runtime errors and eager logical ops of the tree-walker's compound
// assignment path (applyBinOp).
func (c *comp) emitBinOp(op string, intCtx bool, posIdx int32) error {
	switch op {
	case "+":
		c.emit(OpAdd, 0, 0)
	case "-":
		c.emit(OpSub, 0, 0)
	case "*":
		c.emit(OpMul, 0, 0)
	case "/":
		if intCtx {
			c.emit(OpDivI, posIdx, 0)
		} else {
			c.emit(OpDivF, 0, 0)
		}
	case "%":
		c.emit(OpMod, posIdx, 0)
	case "<<":
		c.emit(OpShl, 0, 0)
	case ">>":
		c.emit(OpShr, 0, 0)
	case "==":
		c.emit(OpEq, 0, 0)
	case "!=":
		c.emit(OpNe, 0, 0)
	case "<":
		c.emit(OpLt, 0, 0)
	case "<=":
		c.emit(OpLe, 0, 0)
	case ">":
		c.emit(OpGt, 0, 0)
	case ">=":
		c.emit(OpGe, 0, 0)
	case "&&":
		c.emit(OpAndE, 0, 0)
	case "||":
		c.emit(OpOrE, 0, 0)
	default:
		return fmt.Errorf("unknown operator %q", op)
	}
	return nil
}

func (c *comp) incDec(x *minic.IncDecStmt) error {
	lv, err := c.lvalue(x.X)
	if err != nil {
		return err
	}
	delta := int32(1)
	if x.Op == "--" {
		delta = -1
	}
	c.emitWork(cost{lv.w + 1, 2 * lv.b, 2 * lv.irr})
	if lv.kind == lvLocal {
		c.emit(OpInc, int32(lv.slot), delta)
		return nil
	}
	if err := lv.emitLoad(c); err != nil {
		return err
	}
	c.emit(OpConst, c.constIdx(float64(delta)), 0)
	c.emit(OpAdd, 0, 0)
	return lv.emitStore(c)
}

func (c *comp) ifStmt(x *minic.IfStmt) error {
	mark := c.markWork()
	k, err := c.expr(x.Cond)
	if err != nil {
		return err
	}
	c.fillWork(mark, k)
	jz := c.emitJump(OpJz)
	if err := c.block(x.Then); err != nil {
		return err
	}
	if x.Else == nil {
		c.patch(jz)
		return nil
	}
	jend := c.emitJump(OpJmp)
	c.patch(jz)
	if err := c.stmt(x.Else); err != nil {
		return err
	}
	c.patch(jend)
	return nil
}

func (c *comp) whileStmt(x *minic.WhileStmt) error {
	g := c.newSlot()
	pos := c.posIdx(x.Pos())
	c.emit(OpZero, int32(g), 0)
	head := c.here()
	c.emit(OpGuardW, int32(g), pos)
	mark := c.markWork()
	k, err := c.expr(x.Cond)
	if err != nil {
		return err
	}
	c.fillWork(mark, k)
	jz := c.emitJump(OpJz)
	lc := &loopCtx{}
	c.loops = append(c.loops, lc)
	err = c.block(x.Body)
	c.loops = c.loops[:len(c.loops)-1]
	if err != nil {
		return err
	}
	c.emit(OpJmp, int32(head), 0)
	c.patch(jz)
	for _, p := range lc.breaks {
		c.patch(p)
	}
	// continue in a while loop re-enters at the guard (next iteration).
	for _, p := range lc.conts {
		c.patchTo(p, head)
	}
	return nil
}

func (c *comp) forStmt(fs *minic.ForStmt) error {
	var offload, omp *minic.Pragma
	for _, p := range fs.Pragmas {
		switch p.Kind {
		case minic.PragmaOffload:
			offload = p
		case minic.PragmaOmpParallelFor:
			omp = p
		}
	}

	c.push()
	defer c.pop()

	// Static vectorizability for parallel loops.
	vec := false
	if omp != nil {
		if info, aerr := analysis.Analyze(fs, c.file); aerr == nil {
			vec = info.Vectorizable()
		}
	}

	pos := fs.Pos()
	var offDesc *OffloadDesc
	if offload != nil {
		offDesc = &OffloadDesc{Pragma: offload, Pos: pos, Chunk: c.fn}
		c.fn.Offloads = append(c.fn.Offloads, offDesc)
		c.emit(OpOffEnter, int32(len(c.fn.Offloads)-1), 0)
	}
	if omp != nil {
		c.fn.Pars = append(c.fn.Pars, ParDesc{Vec: vec})
		c.emit(OpParEnter, int32(len(c.fn.Pars)-1), 0)
	}

	if fs.Init != nil {
		if err := c.stmt(fs.Init); err != nil {
			return err
		}
	}
	g := c.newSlot()
	pi := c.posIdx(pos)
	c.emit(OpZero, int32(g), 0)
	// Columnar tier: loops whose bodies reduce to element-wise arithmetic
	// get a fused vector op ahead of the scalar head. At runtime it
	// fast-forwards whole batches and falls through; the scalar loop below
	// is unchanged and still owns ragged tails and faults.
	if fs.Cond != nil && fs.Post != nil && fs.Body != nil {
		if d := c.tryVecLoop(fs, omp != nil, g); d != nil {
			c.fn.VecLoops = append(c.fn.VecLoops, d)
			c.emit(OpVecLoop, int32(len(c.fn.VecLoops)-1), 0)
		}
	}
	guardOp := OpGuardF
	if omp != nil {
		guardOp = OpGuardPar
	}
	head := c.here()
	c.emit(guardOp, int32(g), pi)
	jz := -1
	if fs.Cond != nil {
		mark := c.markWork()
		k, err := c.expr(fs.Cond)
		if err != nil {
			return err
		}
		c.fillWork(mark, k)
		jz = c.emitJump(OpJz)
	}
	if omp != nil {
		c.emit(OpIterTick, 0, 0)
	}

	ivar := loopIndexName(fs)
	c.loopVars = append(c.loopVars, ivar)
	lc := &loopCtx{}
	c.loops = append(c.loops, lc)
	err := c.block(fs.Body)
	c.loops = c.loops[:len(c.loops)-1]
	c.loopVars = c.loopVars[:len(c.loopVars)-1]
	if err != nil {
		return err
	}

	// continue lands on the post statement.
	post := c.here()
	for _, p := range lc.conts {
		c.patchTo(p, post)
	}
	if fs.Post != nil {
		if err := c.stmt(fs.Post); err != nil {
			return err
		}
	}
	c.emit(OpJmp, int32(head), 0)
	exit := c.here()
	if jz >= 0 {
		c.patchTo(jz, exit)
	}
	for _, p := range lc.breaks {
		c.patchTo(p, exit)
	}
	if omp != nil {
		c.emit(OpParExit, 0, 0)
	}
	if offload != nil {
		// Specs compile in the loop's scope (after the init declaration),
		// matching the tree-walker's compile order.
		specs, err := c.compileSpecs(offload)
		if err != nil {
			return err
		}
		offDesc.Specs = specs
		c.emit(OpOffExit, 0, 0)
	}
	return nil
}

// loopIndexName extracts the induction variable name syntactically.
func loopIndexName(fs *minic.ForStmt) string {
	switch init := fs.Init.(type) {
	case *minic.AssignStmt:
		if id, ok := init.LHS.(*minic.Ident); ok {
			return id.Name
		}
	case *minic.DeclStmt:
		return init.Decl.Name
	}
	return ""
}

func (c *comp) pragmaStmt(x *minic.PragmaStmt) error {
	p := x.P
	switch p.Kind {
	case minic.PragmaOffloadWait:
		c.fn.Waits = append(c.fn.Waits, p.Wait)
		c.emit(OpWait, int32(len(c.fn.Waits)-1), 0)
		return nil
	case minic.PragmaOffloadTransfer:
		specs, err := c.compileSpecs(p)
		if err != nil {
			return err
		}
		c.fn.Transfers = append(c.fn.Transfers, &TransferDesc{
			Pragma: p, Specs: specs, Pos: x.Pos(), Chunk: c.fn,
		})
		c.emit(OpTransfer, int32(len(c.fn.Transfers)-1), 0)
		return nil
	}
	return c.errf(x.Pos(), "pragma %s not valid as a statement", p.Kind)
}

// ---- lvalues ----

type lvKind int

const (
	lvLocal lvKind = iota
	lvGlobal
	lvIndex
)

// lval captures an assignable location: how to emit its load and store
// code, its access cost, and whether stores truncate to integer.
type lval struct {
	kind      lvKind
	slot      int
	gidx      int32
	w, b, irr float64
	intTyped  bool
	// for lvIndex: the access site pieces.
	baseID *minic.Ident
	index  minic.Expr
	acc    int32 // access desc index
	refPos minic.Pos
}

func (lv *lval) emitLoad(c *comp) error {
	switch lv.kind {
	case lvLocal:
		c.emit(OpLoad, int32(lv.slot), 0)
	case lvGlobal:
		c.emit(OpLoadG, lv.gidx, 0)
	case lvIndex:
		if err := c.emitRefIdent(lv.baseID, lv.refPos); err != nil {
			return err
		}
		if _, err := c.expr(lv.index); err != nil {
			return err
		}
		c.emit(OpLoadIdx, lv.acc, 0)
	}
	return nil
}

func (lv *lval) emitStore(c *comp) error {
	switch lv.kind {
	case lvLocal:
		c.emit(OpStore, int32(lv.slot), 0)
	case lvGlobal:
		c.emit(OpStoreG, lv.gidx, 0)
	case lvIndex:
		if err := c.emitRefIdent(lv.baseID, lv.refPos); err != nil {
			return err
		}
		if _, err := c.expr(lv.index); err != nil {
			return err
		}
		c.emit(OpStoreIdx, lv.acc, 0)
	}
	return nil
}

func (c *comp) lvalue(e minic.Expr) (*lval, error) {
	switch x := e.(type) {
	case *minic.ParenExpr:
		return c.lvalue(x.X)
	case *minic.Ident:
		bnd, ok := c.lookup(x.Name)
		if !ok {
			return nil, c.errf(x.Pos(), "undefined %s", x.Name)
		}
		switch bnd.kind {
		case bindLocal:
			return &lval{kind: lvLocal, slot: bnd.slot, intTyped: isIntType(bnd.typ)}, nil
		case bindGlobal:
			if isRefType(bnd.typ) {
				return nil, c.errf(x.Pos(), "cannot assign scalar to array %s", x.Name)
			}
			return &lval{kind: lvGlobal, gidx: int32(bnd.gidx), intTyped: isIntType(bnd.typ)}, nil
		}
		return nil, c.errf(x.Pos(), "cannot assign to pointer %s here", x.Name)
	case *minic.UnaryExpr:
		if x.Op == "*" {
			idx := &minic.IndexExpr{X: x.X, Index: &minic.IntLit{Value: 0}}
			return c.indexLValue(idx, "")
		}
	case *minic.IndexExpr:
		return c.indexLValue(x, "")
	case *minic.MemberExpr:
		if ie, ok := x.X.(*minic.IndexExpr); ok {
			return c.indexLValue(ie, x.Field)
		}
	}
	return nil, c.errf(e.Pos(), "unsupported assignment target")
}

func (c *comp) indexLValue(x *minic.IndexExpr, field string) (*lval, error) {
	site, err := c.accessSite(x, field)
	if err != nil {
		return nil, err
	}
	idxCost, err := c.staticCost(x.Index)
	if err != nil {
		return nil, err
	}
	irr := 0.0
	if site.irregular {
		irr = site.elemBytes
	}
	intTyped := false
	if t := x.Type(); t != nil {
		intTyped = isIntType(t)
	}
	return &lval{
		kind:     lvIndex,
		w:        idxCost.w + 1,
		b:        idxCost.b + site.elemBytes,
		irr:      idxCost.irr + irr,
		intTyped: intTyped,
		baseID:   site.baseID,
		index:    x.Index,
		acc:      site.accIdx,
		refPos:   x.Pos(),
	}, nil
}

// ---- array access sites ----

type siteInfo struct {
	baseID    *minic.Ident
	bnd       vbind
	elem      minic.Type
	elemBytes float64
	fieldOff  int
	irregular bool
	isGlobal  bool
	accIdx    int32
}

func (c *comp) accessSite(x *minic.IndexExpr, field string) (*siteInfo, error) {
	id, ok := x.X.(*minic.Ident)
	if !ok {
		if p, isParen := x.X.(*minic.ParenExpr); isParen {
			if id2, ok2 := p.X.(*minic.Ident); ok2 {
				id = id2
				ok = true
			}
		}
	}
	if !ok {
		return nil, c.errf(x.Pos(), "unsupported array base expression")
	}
	bnd, found := c.lookup(id.Name)
	if !found {
		return nil, c.errf(id.Pos(), "undefined %s", id.Name)
	}
	if !isRefType(bnd.typ) {
		return nil, c.errf(id.Pos(), "%s is not an array", id.Name)
	}
	elem := minic.ElemOf(bnd.typ)
	elemBytes := float64(elem.Size())
	fieldOff := -1
	if field != "" {
		st, ok := elem.(*minic.StructType)
		if !ok {
			return nil, c.errf(x.Pos(), "%s is not a struct array", id.Name)
		}
		f := st.Field(field)
		if f == nil {
			return nil, c.errf(x.Pos(), "struct %s has no field %s", st.Name, field)
		}
		off := 0
		for _, sf := range st.Fields {
			if sf.Name == field {
				break
			}
			off++
		}
		fieldOff = off
		elemBytes = float64(f.Type.Size())
	}
	// Member walks over struct arrays (AoS) are charged as irregular
	// traffic alongside gathered/strided subscripts, like the tree-walker.
	irregular := c.classifySite(x.Index) || field != ""
	isGlobal := bnd.kind == bindGlobal
	gidx := int32(-1)
	if isGlobal {
		gidx = int32(bnd.gidx)
	}
	posIdx := c.posIdx(x.Pos())
	c.fn.Accesses = append(c.fn.Accesses, Access{
		FieldOff: int32(fieldOff),
		IsGlobal: isGlobal,
		GIdx:     gidx,
		Pos:      posIdx,
		RefPos:   posIdx,
	})
	return &siteInfo{
		baseID:    id,
		bnd:       bnd,
		elem:      elem,
		elemBytes: elemBytes,
		fieldOff:  fieldOff,
		irregular: irregular,
		isGlobal:  isGlobal,
		accIdx:    int32(len(c.fn.Accesses) - 1),
	}, nil
}

// emitRefIdent pushes the array bound to an identifier, reporting
// nil-pointer/missing-storage faults at pos (the tree-walker uses the
// enclosing index expression's position for element accesses and the
// identifier's own position in pointer contexts).
func (c *comp) emitRefIdent(id *minic.Ident, pos minic.Pos) error {
	bnd, ok := c.lookup(id.Name)
	if !ok {
		return c.errf(id.Pos(), "undefined %s", id.Name)
	}
	switch bnd.kind {
	case bindLocalRef:
		c.fn.RefLs = append(c.fn.RefLs, RefLDesc{Name: id.Name, Pos: c.posIdx(pos)})
		c.emit(OpRefL, int32(bnd.slot), int32(len(c.fn.RefLs)-1))
		return nil
	case bindGlobal:
		c.emit(OpRefG, int32(bnd.gidx), c.posIdx(pos))
		return nil
	}
	return c.errf(id.Pos(), "%s is not a pointer or array", id.Name)
}

// classifySite decides whether an access site counts as irregular traffic.
func (c *comp) classifySite(idx minic.Expr) bool {
	ivar := c.innermostLoopVar()
	if ivar == "" {
		return false
	}
	kind, stride := analysis.ClassifySite(idx, ivar)
	switch kind {
	case analysis.AccessIndirect, analysis.AccessOpaque:
		return true
	}
	return stride != 1 && stride != 0
}

func (c *comp) innermostLoopVar() string {
	if len(c.loopVars) == 0 {
		return ""
	}
	return c.loopVars[len(c.loopVars)-1]
}
