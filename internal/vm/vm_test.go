package vm_test

import (
	"strings"
	"testing"
)

// deepNestSource builds an expression of the given nesting depth to force
// operand-stack growth well past any fixed-size fast path.
func deepNestSource(depth int) string {
	var sb strings.Builder
	sb.WriteString("float x;\nint main(void) {\n    x = ")
	for i := 0; i < depth; i++ {
		sb.WriteString("1.0 + (")
	}
	sb.WriteString("0.5")
	for i := 0; i < depth; i++ {
		sb.WriteString(")")
	}
	sb.WriteString(";\n    printf(\"%f\\n\", x);\n    return 0;\n}\n")
	return sb.String()
}

// maxLocalsSource declares and uses a large frame (200 numeric locals).
func maxLocalsSource() string {
	var sb strings.Builder
	sb.WriteString("float total;\nint main(void) {\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("    float v")
		sb.WriteString(strings.Repeat("x", i%3))
		sb.WriteRune(rune('a' + i%26))
		sb.WriteString("_")
		sb.WriteString(string(rune('0' + i/26%10)))
		sb.WriteString(string(rune('0' + i/260)))
		sb.WriteString(";\n")
	}
	// Re-generate deterministically for the use sites.
	names := make([]string, 200)
	for i := range names {
		names[i] = "v" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + "_" +
			string(rune('0'+i/26%10)) + string(rune('0'+i/260))
	}
	for i, n := range names {
		sb.WriteString("    ")
		sb.WriteString(n)
		if i == 0 {
			sb.WriteString(" = 1.0;\n")
		} else {
			sb.WriteString(" = ")
			sb.WriteString(names[i-1])
			sb.WriteString(" * 1.0000001 + 0.125;\n")
		}
	}
	sb.WriteString("    total = ")
	sb.WriteString(names[199])
	sb.WriteString(";\n    printf(\"%g\\n\", total);\n    return 0;\n}\n")
	return sb.String()
}

// TestVMEdgeCases holds the VM to the tree-walker on the hand-picked traps:
// stack growth, fault parity, evaluation order, degenerate loops, and big
// frames. Every case is a differential run — the tree-walker IS the spec.
func TestVMEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		budget int64
	}{
		{name: "deep_nesting_300", src: deepNestSource(300)},
		{name: "max_locals_200", src: maxLocalsSource()},
		{name: "int_div_by_zero", src: `
int a; int b;
int main(void) {
    b = 0;
    a = 7 / b;
    printf("unreached %d\n", a);
    return 0;
}`},
		{name: "int_mod_by_zero", src: `
int a; int b;
int main(void) {
    b = 0;
    a = 7 % b;
    return 0;
}`},
		// The tree-walker evaluates an integer division's denominator first
		// and faults before touching the numerator: only g's printf runs.
		{name: "div_by_zero_eval_order", src: `
int a;
int f(void) { printf("f\n"); return 3; }
int g(void) { printf("g\n"); return 0; }
int main(void) {
    a = f() / g();
    return 0;
}`},
		{name: "mod_eval_order_ok", src: `
int a;
int f(void) { printf("f\n"); return 7; }
int g(void) { printf("g\n"); return 3; }
int main(void) {
    a = f() % g();
    printf("%d\n", a);
    return 0;
}`},
		{name: "compound_div_by_zero", src: `
int a; int b;
int main(void) {
    a = 5;
    b = 0;
    a /= b;
    return 0;
}`},
		{name: "compound_mod_by_zero", src: `
int a; int b;
int main(void) {
    a = 5;
    b = 0;
    a %= b;
    return 0;
}`},
		{name: "float_div_by_zero_is_inf", src: `
float x; float z;
int main(void) {
    z = 0.0;
    x = 1.0 / z;
    printf("%f %f\n", x, -1.0 / z);
    return 0;
}`},
		// Short-circuit: the right operand must not run when the left
		// decides, and must run exactly once otherwise.
		{name: "short_circuit_and", src: `
int t;
int side(int v) { printf("side %d\n", v); return v; }
int main(void) {
    t = side(0) && side(1);
    printf("=%d\n", t);
    t = side(2) && side(0);
    printf("=%d\n", t);
    t = side(3) && side(4);
    printf("=%d\n", t);
    return 0;
}`},
		{name: "short_circuit_or", src: `
int t;
int side(int v) { printf("side %d\n", v); return v; }
int main(void) {
    t = side(5) || side(6);
    printf("=%d\n", t);
    t = side(0) || side(7);
    printf("=%d\n", t);
    t = side(0) || side(0);
    printf("=%d\n", t);
    return 0;
}`},
		{name: "ternary_lazy_branches", src: `
int a; int zero;
int main(void) {
    zero = 0;
    a = 1 ? 42 : 7 / zero;
    printf("%d\n", a);
    a = 0 ? 7 / zero : 43;
    printf("%d\n", a);
    return 0;
}`},
		{name: "empty_for_body", src: `
int i; int n;
int main(void) {
    n = 100;
    for (i = 0; i < n; i++) { }
    printf("%d\n", i);
    return 0;
}`},
		{name: "empty_while_body", src: `
int i;
int main(void) {
    i = 0;
    while (0) { }
    printf("%d\n", i);
    return 0;
}`},
		{name: "empty_omp_loop", src: `
int i; int n;
int main(void) {
    n = 64;
    #pragma omp parallel for
    for (i = 0; i < n; i++) { }
    printf("%d\n", i);
    return 0;
}`},
		{name: "loop_budget_exhausted", src: `
int i;
int main(void) {
    i = 0;
    while (i < 100000) {
        i = i + 1;
    }
    printf("%d\n", i);
    return 0;
}`, budget: 1000},
		{name: "call_depth_exceeded", src: `
int down(int n) { return down(n + 1); }
int main(void) {
    printf("%d\n", down(0));
    return 0;
}`},
		{name: "index_out_of_range", src: `
float a[8];
int i;
int main(void) {
    i = 9;
    a[i] = 1.0;
    return 0;
}`},
		{name: "negative_local_array_len", src: `
int n;
int main(void) {
    n = -4;
    float tmp[n];
    return 0;
}`},
		{name: "nil_pointer_deref", src: `
float *p;
int main(void) {
    p = 0;
    p[0] = 1.0;
    return 0;
}`},
		{name: "printf_missing_args", src: `
int main(void) {
    printf("%d %d %f\n", 11);
    return 0;
}`},
		// Arguments past the format's verbs are never evaluated — a
		// division by zero hiding there must not fire.
		{name: "printf_extra_args_unevaluated", src: `
int zero;
int main(void) {
    zero = 0;
    printf("%d\n", 5, 7 / zero);
    return 0;
}`},
		{name: "printf_percent_escape", src: `
int main(void) {
    printf("100%% of %d, %g, %e, %q\n", 3, 2.5, 1.25, 9);
    return 0;
}`},
		{name: "incdec_on_elements", src: `
float a[4]; int i;
int main(void) {
    for (i = 0; i < 4; i++) { a[i] = i; }
    a[2]++;
    a[0]--;
    i++;
    i--;
    printf("%f %f %d\n", a[2], a[0], i);
    return 0;
}`},
		{name: "compound_on_elements", src: `
float a[4]; int i;
int main(void) {
    for (i = 0; i < 4; i++) { a[i] = i + 1; }
    a[1] += a[2];
    a[3] *= 2.0;
    a[2] -= 0.5;
    printf("%f %f %f\n", a[1], a[3], a[2]);
    return 0;
}`},
		{name: "return_inside_loops", src: `
int i; int j;
int f(void) {
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            if (i * 10 + j == 37) {
                return i * 100 + j;
            }
        }
    }
    return -1;
}
int main(void) {
    printf("%d\n", f());
    return 0;
}`},
		{name: "return_inside_offload", src: `
float a[16]; int n; int i;
int f(void) {
    #pragma offload target(mic:0) inout(a : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        a[i] = a[i] + 1.0;
    }
    return 7;
}
int main(void) {
    n = 16;
    printf("%d\n", f());
    printf("%f\n", a[3]);
    return 0;
}`},
		{name: "malloc_and_rebind", src: `
float *p; int n; int i;
int main(void) {
    n = 8;
    p = malloc(n * 8);
    for (i = 0; i < n; i++) { p[i] = i * 0.5; }
    printf("%f %f\n", p[0], p[7]);
    free(p);
    return 0;
}`},
		{name: "device_rebind_fault", src: `
float *p; float a[8]; int n; int i;
int main(void) {
    n = 8;
    p = malloc(n * 8);
    #pragma offload target(mic:0) inout(a : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        p = malloc(8);
        a[i] = 1.0;
    }
    return 0;
}`},
		{name: "break_continue", src: `
int i; int s;
int main(void) {
    s = 0;
    for (i = 0; i < 20; i++) {
        if (i % 3 == 0) {
            continue;
        }
        if (i > 14) {
            break;
        }
        s += i;
    }
    printf("%d %d\n", s, i);
    return 0;
}`},
		{name: "fall_off_end_retval", src: `
int a;
int noret(int x) {
    if (x > 100) {
        return x;
    }
}
int main(void) {
    a = noret(200);
    printf("%d\n", a);
    a = noret(1);
    printf("%d\n", a);
    return 0;
}`},
		{name: "builtin_two_arg", src: `
float x;
int main(void) {
    x = pow(2.0, 10.0) + fmin(3.0, 1.5) + fmax(-1.0, 0.25);
    printf("%f %f\n", x, fabs(-2.5) + floor(1.9) + ceil(0.1));
    return 0;
}`},
		{name: "shift_ops", src: `
int a; int b;
int main(void) {
    a = 3;
    b = a << 4;
    printf("%d %d\n", b, b >> 2);
    return 0;
}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			diffRun(t, tc.src, nil, tc.budget)
		})
	}
}
