package vm

import "fmt"

// finalizeChunk validates a freshly compiled chunk and computes its
// operand-stack bounds by abstract interpretation over the CFG. Every
// instruction's entry stack depths must be consistent across all paths
// reaching it — a structural invariant the property tests also hold
// mutated chunks to via VerifyChunk.
func finalizeChunk(ch *Chunk, nGlobals, nFuncs int) error {
	peephole(ch)
	maxF, maxR, err := analyzeChunk(ch, nGlobals, nFuncs)
	if err != nil {
		return err
	}
	ch.MaxF = maxF
	ch.MaxR = maxR
	return nil
}

// VerifyChunk checks a chunk's structural invariants: jump targets in
// bounds, descriptor/constant/slot indices in bounds, and operand stack
// depths consistent and non-negative on every path. nGlobals and nFuncs
// bound the module-level tables the chunk may reference.
func VerifyChunk(ch *Chunk, nGlobals, nFuncs int) error {
	_, _, err := analyzeChunk(ch, nGlobals, nFuncs)
	return err
}

type stackState struct {
	f, r    int
	visited bool
}

func analyzeChunk(ch *Chunk, nGlobals, nFuncs int) (int, int, error) {
	code := ch.Code
	n := len(code)
	states := make([]stackState, n+1) // n = fall-off-the-end exit
	maxF, maxR := 0, 0

	inBounds := func(idx int32, size int, what string, ip int) error {
		if idx < 0 || int(idx) >= size {
			return fmt.Errorf("instr %d (%s): %s index %d out of range [0,%d)", ip, code[ip].Op, what, idx, size)
		}
		return nil
	}

	// effect returns the float/ref stack deltas and the minimum entry
	// depths an instruction needs, after validating its operand indices.
	effect := func(ip int) (df, dr, needF, needR int, err error) {
		in := code[ip]
		switch in.Op {
		case OpNop, OpWork, OpZero, OpInc, OpJmp, OpParEnter, OpParExit,
			OpOffEnter, OpOffExit, OpTransfer, OpWait, OpDevChk,
			OpGuardW, OpGuardF, OpGuardPar, OpIterTick, OpVecLoop:
			switch in.Op {
			case OpWork:
				err = inBounds(in.A, len(ch.Works), "work", ip)
			case OpZero, OpInc:
				err = inBounds(in.A, ch.NumSlots, "slot", ip)
			case OpGuardW, OpGuardF, OpGuardPar:
				if err = inBounds(in.A, ch.NumSlots, "slot", ip); err == nil {
					err = inBounds(in.B, len(ch.Positions), "pos", ip)
				}
			case OpOffEnter:
				err = inBounds(in.A, len(ch.Offloads), "offload", ip)
			case OpTransfer:
				err = inBounds(in.A, len(ch.Transfers), "transfer", ip)
			case OpWait:
				err = inBounds(in.A, len(ch.Waits), "wait", ip)
			case OpParEnter:
				err = inBounds(in.A, len(ch.Pars), "par", ip)
			case OpDevChk:
				if err = inBounds(in.A, nGlobals, "global", ip); err == nil {
					err = inBounds(in.B, len(ch.Positions), "pos", ip)
				}
			case OpVecLoop:
				err = inBounds(in.A, len(ch.VecLoops), "vecloop", ip)
			}
		case OpConst:
			df = 1
			err = inBounds(in.A, len(ch.Consts), "const", ip)
		case OpLoad:
			df = 1
			err = inBounds(in.A, ch.NumSlots, "slot", ip)
		case OpLoadG:
			df = 1
			err = inBounds(in.A, nGlobals, "global", ip)
		case OpStore, OpStoreT:
			df, needF = -1, 1
			err = inBounds(in.A, ch.NumSlots, "slot", ip)
		case OpStoreG:
			df, needF = -1, 1
			err = inBounds(in.A, nGlobals, "global", ip)
		case OpAdd, OpSub, OpMul, OpDivF, OpShl, OpShr,
			OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAndE, OpOrE:
			df, needF = -1, 2
		case OpDivI, OpMod:
			df, needF = -1, 2
			if in.A >= 0 {
				err = inBounds(in.A, len(ch.Positions), "pos", ip)
			}
		case OpNeg, OpNot, OpBool, OpTrunc:
			needF = 1
		case OpChkZ:
			needF = 1
			err = inBounds(in.A, len(ch.Positions), "pos", ip)
		case OpSwap:
			needF = 2
		case OpJz, OpJnz, OpPop, OpSetRet:
			df, needF = -1, 1
		case OpRefL:
			dr = 1
			if err = inBounds(in.A, ch.RefSlots, "ref slot", ip); err == nil {
				err = inBounds(in.B, len(ch.RefLs), "refl", ip)
			}
		case OpRefG:
			dr = 1
			if err = inBounds(in.A, nGlobals, "global", ip); err == nil {
				err = inBounds(in.B, len(ch.Positions), "pos", ip)
			}
		case OpRefNull:
			dr = 1
		case OpRefStoreL:
			dr, needR = -1, 1
			err = inBounds(in.A, ch.RefSlots, "ref slot", ip)
		case OpRefStoreG:
			dr, needR = -1, 1
			err = inBounds(in.A, nGlobals, "global", ip)
		case OpMalloc:
			df, needF, dr = -1, 1, 1
			err = inBounds(in.A, len(ch.Mallocs), "malloc", ip)
		case OpNewArr:
			df, needF = -1, 1
			if err = inBounds(in.A, len(ch.NewArrs), "newarr", ip); err == nil {
				err = inBounds(ch.NewArrs[in.A].Slot, ch.RefSlots, "ref slot", ip)
			}
		case OpLoadIdx:
			needF, dr, needR = 1, -1, 1
			err = inBounds(in.A, len(ch.Accesses), "access", ip)
		case OpStoreIdx:
			df, needF, dr, needR = -2, 2, -1, 1
			err = inBounds(in.A, len(ch.Accesses), "access", ip)
		case OpCall:
			if err = inBounds(in.A, nFuncs, "func", ip); err != nil {
				break
			}
			nNum := int(in.B >> 12)
			nRef := int(in.B & 0xfff)
			df, needF = 1-nNum, nNum
			dr, needR = -nRef, nRef
		case OpBuiltin:
			if in.A < 0 || int(in.A) >= len(builtinArity) {
				err = fmt.Errorf("instr %d: builtin kind %d out of range", ip, in.A)
				break
			}
			ar := builtinArity[in.A]
			df, needF = 1-ar, ar
		case OpPrintf:
			if err = inBounds(in.A, len(ch.Printfs), "printf", ip); err != nil {
				break
			}
			k := len(ch.Printfs[in.A].Kinds)
			df, needF = 1-k, k
		case OpRet:
			// terminal; no successors
		case OpCmpJmp:
			df, needF = -2, 2
			if in.B < 0 || in.B >= cmpCount<<1 {
				err = fmt.Errorf("instr %d: cmp kind %d out of range", ip, in.B)
			}
		case OpLoad2:
			df = 2
			if err = inBounds(in.A, ch.NumSlots, "slot", ip); err == nil {
				err = inBounds(in.B, ch.NumSlots, "slot", ip)
			}
		case OpLoadIdxL:
			df, dr, needR = 1, -1, 1
			if err = inBounds(in.A, len(ch.Accesses), "access", ip); err == nil {
				err = inBounds(in.B, ch.NumSlots, "slot", ip)
			}
		case OpAddL, OpSubL, OpMulL, OpDivL:
			needF = 1
			err = inBounds(in.A, ch.NumSlots, "slot", ip)
		case OpAddC, OpSubC, OpMulC, OpDivC:
			needF = 1
			err = inBounds(in.A, len(ch.Consts), "const", ip)
		case OpAddG, OpSubG, OpMulG, OpDivG:
			needF = 1
			err = inBounds(in.A, nGlobals, "global", ip)
		case OpMove, OpMoveT:
			if err = inBounds(in.A, ch.NumSlots, "slot", ip); err == nil {
				err = inBounds(in.B, ch.NumSlots, "slot", ip)
			}
		case OpAddLC, OpSubLC, OpMulLC, OpDivLC:
			df = 1
			if err = inBounds(in.A, ch.NumSlots, "slot", ip); err == nil {
				err = inBounds(in.B, len(ch.Consts), "const", ip)
			}
		case OpStoreIdxL:
			df, needF, dr, needR = -1, 1, -1, 1
			if err = inBounds(in.A, len(ch.Accesses), "access", ip); err == nil {
				err = inBounds(in.B, ch.NumSlots, "slot", ip)
			}
		case OpLoadIdxG, OpStoreIdxG:
			if in.Op == OpLoadIdxG {
				df = 1
			} else {
				df, needF = -1, 1
			}
			if err = inBounds(in.A, len(ch.Accesses), "access", ip); err == nil {
				if err = inBounds(in.B, ch.NumSlots, "slot", ip); err == nil {
					err = inBounds(ch.Accesses[in.A].GIdx, nGlobals, "global", ip)
				}
			}
		case OpCmpJmpC:
			df, needF = -1, 1
			if err = inBounds(in.B>>4, len(ch.Consts), "const", ip); err == nil && (in.B>>1)&7 >= cmpCount {
				err = fmt.Errorf("instr %d: cmp kind %d out of range", ip, (in.B>>1)&7)
			}
		case OpCmpJmpG:
			df, needF = -1, 1
			if err = inBounds(in.B>>4, nGlobals, "global", ip); err == nil && (in.B>>1)&7 >= cmpCount {
				err = fmt.Errorf("instr %d: cmp kind %d out of range", ip, (in.B>>1)&7)
			}
		case OpConstSt:
			if err = inBounds(in.A, len(ch.Consts), "const", ip); err == nil {
				err = inBounds(in.B, ch.NumSlots, "slot", ip)
			}
		case OpConst2:
			df = 2
			if err = inBounds(in.A, len(ch.Consts), "const", ip); err == nil {
				err = inBounds(in.B, len(ch.Consts), "const", ip)
			}
		case OpLoadC:
			df = 2
			if err = inBounds(in.A, ch.NumSlots, "slot", ip); err == nil {
				err = inBounds(in.B, len(ch.Consts), "const", ip)
			}
		case OpNegL:
			df = 1
			err = inBounds(in.A, ch.NumSlots, "slot", ip)
		case OpBuiltinL:
			df = 1
			if int(in.A) >= len(builtinArity) || builtinArity[in.A] != 1 {
				err = fmt.Errorf("instr %d: BuiltinL kind %d is not a unary builtin", ip, in.A)
			} else {
				err = inBounds(in.B, ch.NumSlots, "slot", ip)
			}
		case OpAddLL, OpSubLL, OpMulLL, OpDivLL:
			df = 1
			if err = inBounds(in.A, ch.NumSlots, "slot", ip); err == nil {
				err = inBounds(in.B, ch.NumSlots, "slot", ip)
			}
		case OpIncJmp:
			err = inBounds(in.B>>16, ch.NumSlots, "slot", ip)
		case OpBuiltin2L:
			df = 1
			if in.A != bPow && in.A != bFmin && in.A != bFmax {
				err = fmt.Errorf("instr %d: Builtin2L kind %d is not a binary builtin", ip, in.A)
			} else if err = inBounds(in.B>>16, ch.NumSlots, "slot", ip); err == nil {
				err = inBounds(in.B&0xffff, ch.NumSlots, "slot", ip)
			}
		case OpRetV:
			// terminal; pops the return value
			df, needF = -1, 1
		case OpRetL:
			// terminal
			err = inBounds(in.A, ch.NumSlots, "slot", ip)
		default:
			err = fmt.Errorf("instr %d: unknown opcode %d", ip, in.Op)
		}
		return df, dr, needF, needR, err
	}

	// Validate access descriptor positions once (not per reference).
	for i, a := range ch.Accesses {
		if a.Pos < 0 || int(a.Pos) >= len(ch.Positions) {
			return 0, 0, fmt.Errorf("access %d: pos index %d out of range", i, a.Pos)
		}
		if a.RefPos < 0 || int(a.RefPos) >= len(ch.Positions) {
			return 0, 0, fmt.Errorf("access %d: ref pos index %d out of range", i, a.RefPos)
		}
	}
	for i, d := range ch.RefLs {
		if d.Pos < 0 || int(d.Pos) >= len(ch.Positions) {
			return 0, 0, fmt.Errorf("refl %d: pos index %d out of range", i, d.Pos)
		}
	}
	for i, d := range ch.Mallocs {
		if d.Pos < 0 || int(d.Pos) >= len(ch.Positions) {
			return 0, 0, fmt.Errorf("malloc %d: pos index %d out of range", i, d.Pos)
		}
	}
	for i, d := range ch.NewArrs {
		if d.Pos < 0 || int(d.Pos) >= len(ch.Positions) {
			return 0, 0, fmt.Errorf("newarr %d: pos index %d out of range", i, d.Pos)
		}
	}
	if err := validateVecLoops(ch, nGlobals, nFuncs); err != nil {
		return 0, 0, err
	}

	if n == 0 {
		return 0, 0, nil
	}
	work := []int{0}
	states[0] = stackState{visited: true}
	enqueue := func(target, fd, rd int, ip int) error {
		if target < 0 || target > n {
			return fmt.Errorf("instr %d (%s): jump target %d out of range [0,%d]", ip, code[ip].Op, target, n)
		}
		s := &states[target]
		if s.visited {
			if s.f != fd || s.r != rd {
				return fmt.Errorf("instr %d: inconsistent stack depth at target %d (%d/%d vs %d/%d)", ip, target, s.f, s.r, fd, rd)
			}
			return nil
		}
		*s = stackState{f: fd, r: rd, visited: true}
		if target < n {
			work = append(work, target)
		}
		return nil
	}
	for len(work) > 0 {
		ip := work[len(work)-1]
		work = work[:len(work)-1]
		st := states[ip]
		df, dr, needF, needR, err := effect(ip)
		if err != nil {
			return 0, 0, err
		}
		if st.f < needF || st.r < needR {
			return 0, 0, fmt.Errorf("instr %d (%s): stack underflow (have %d/%d, need %d/%d)", ip, code[ip].Op, st.f, st.r, needF, needR)
		}
		fd, rd := st.f+df, st.r+dr
		if fd > maxF {
			maxF = fd
		}
		if rd > maxR {
			maxR = rd
		}
		in := code[ip]
		switch in.Op {
		case OpRet, OpRetV, OpRetL:
			// no successors
		case OpJmp, OpIncJmp:
			if err := enqueue(int(in.A), fd, rd, ip); err != nil {
				return 0, 0, err
			}
		case OpJz, OpJnz, OpCmpJmp, OpCmpJmpC, OpCmpJmpG:
			if err := enqueue(int(in.A), fd, rd, ip); err != nil {
				return 0, 0, err
			}
			if err := enqueue(ip+1, fd, rd, ip); err != nil {
				return 0, 0, err
			}
		default:
			if err := enqueue(ip+1, fd, rd, ip); err != nil {
				return 0, 0, err
			}
		}
	}
	return maxF, maxR, nil
}
