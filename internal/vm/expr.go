package vm

import (
	"comp/internal/minic"
)

// expr emits code that pushes a numeric value and returns the
// expression's static cost triple — the same triple the tree-walker
// computes, charged later at the enclosing statement's OpWork.
func (c *comp) expr(e minic.Expr) (cost, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		c.emit(OpConst, c.constIdx(float64(x.Value)), 0)
		return cost{}, nil
	case *minic.FloatLit:
		c.emit(OpConst, c.constIdx(x.Value), 0)
		return cost{}, nil
	case *minic.SizeofExpr:
		c.emit(OpConst, c.constIdx(float64(x.Of.Size())), 0)
		return cost{}, nil
	case *minic.StringLit:
		c.emit(OpConst, c.constIdx(0), 0)
		return cost{}, nil
	case *minic.ParenExpr:
		return c.expr(x.X)
	case *minic.Ident:
		return c.identExpr(x)
	case *minic.UnaryExpr:
		return c.unaryExpr(x)
	case *minic.BinaryExpr:
		return c.binaryExpr(x)
	case *minic.IndexExpr:
		return c.indexRead(x, "")
	case *minic.MemberExpr:
		ie, ok := x.X.(*minic.IndexExpr)
		if !ok {
			return cost{}, c.errf(x.Pos(), "member access requires an indexed struct array")
		}
		return c.indexRead(ie, x.Field)
	case *minic.CallExpr:
		return c.callExpr(x)
	case *minic.CondExpr:
		return c.condExpr(x)
	}
	return cost{}, c.errf(e.Pos(), "unsupported expression %T", e)
}

func (c *comp) identExpr(x *minic.Ident) (cost, error) {
	bnd, ok := c.lookup(x.Name)
	if !ok {
		return cost{}, c.errf(x.Pos(), "undefined %s", x.Name)
	}
	switch bnd.kind {
	case bindLocal:
		c.emit(OpLoad, int32(bnd.slot), 0)
		return cost{}, nil
	case bindGlobal:
		if isRefType(bnd.typ) {
			return cost{}, c.errf(x.Pos(), "array %s used as a scalar", x.Name)
		}
		c.emit(OpLoadG, int32(bnd.gidx), 0)
		return cost{}, nil
	}
	return cost{}, c.errf(x.Pos(), "pointer %s used as a scalar", x.Name)
}

func (c *comp) unaryExpr(x *minic.UnaryExpr) (cost, error) {
	if x.Op == "*" {
		// *p == p[0]
		idx := &minic.IndexExpr{X: x.X, Index: &minic.IntLit{Value: 0}}
		return c.indexRead(idx, "")
	}
	if x.Op == "&" {
		return cost{}, c.errf(x.Pos(), "address-of is only supported inside pragma clauses")
	}
	sub, err := c.expr(x.X)
	if err != nil {
		return cost{}, err
	}
	switch x.Op {
	case "-":
		c.emit(OpNeg, 0, 0)
	case "!":
		c.emit(OpNot, 0, 0)
	default:
		return cost{}, c.errf(x.Pos(), "unsupported unary %q", x.Op)
	}
	return cost{sub.w + 1, sub.b, sub.irr}, nil
}

func (c *comp) binaryExpr(x *minic.BinaryExpr) (cost, error) {
	// Short-circuit logical operators: costs are static (both sides
	// charged), evaluation is lazy, and the result is normalized 0/1.
	if x.Op == "&&" || x.Op == "||" {
		a, err := c.expr(x.X)
		if err != nil {
			return cost{}, err
		}
		var skip int
		if x.Op == "&&" {
			skip = c.emitJump(OpJz)
		} else {
			skip = c.emitJump(OpJnz)
		}
		b, err := c.expr(x.Y)
		if err != nil {
			return cost{}, err
		}
		c.emit(OpBool, 0, 0)
		end := c.emitJump(OpJmp)
		c.patch(skip)
		if x.Op == "&&" {
			c.emit(OpConst, c.constIdx(0), 0)
		} else {
			c.emit(OpConst, c.constIdx(1), 0)
		}
		c.patch(end)
		return cost{a.w + b.w + 1, a.b + b.b, a.irr + b.irr}, nil
	}

	intCtx := false
	if t, ok := x.Type().(*minic.Basic); ok && t.IsInteger() {
		intCtx = true
	}
	if x.Op == "%" || (x.Op == "/" && intCtx) {
		// The tree-walker evaluates the denominator first and faults on
		// zero before touching the numerator.
		b, err := c.expr(x.Y)
		if err != nil {
			return cost{}, err
		}
		pi := c.posIdx(x.Pos())
		isMod := int32(0)
		if x.Op == "%" {
			isMod = 1
		}
		c.emit(OpChkZ, pi, isMod)
		a, err := c.expr(x.X)
		if err != nil {
			return cost{}, err
		}
		c.emit(OpSwap, 0, 0)
		if x.Op == "%" {
			c.emit(OpMod, pi, 0)
		} else {
			c.emit(OpDivI, pi, 0)
		}
		return cost{a.w + b.w + 1, a.b + b.b, a.irr + b.irr}, nil
	}

	a, err := c.expr(x.X)
	if err != nil {
		return cost{}, err
	}
	b, err := c.expr(x.Y)
	if err != nil {
		return cost{}, err
	}
	if err := c.emitBinOp(x.Op, intCtx, -1); err != nil {
		return cost{}, c.errf(x.Pos(), "unsupported operator %q", x.Op)
	}
	return cost{a.w + b.w + 1, a.b + b.b, a.irr + b.irr}, nil
}

func (c *comp) condExpr(x *minic.CondExpr) (cost, error) {
	cond, err := c.expr(x.Cond)
	if err != nil {
		return cost{}, err
	}
	jz := c.emitJump(OpJz)
	then, err := c.expr(x.Then)
	if err != nil {
		return cost{}, err
	}
	jend := c.emitJump(OpJmp)
	c.patch(jz)
	els, err := c.expr(x.Else)
	if err != nil {
		return cost{}, err
	}
	c.patch(jend)
	// Vectorized hardware evaluates both sides under a mask; charge both
	// for cost, evaluate lazily for values.
	return cost{
		cond.w + then.w + els.w + 1,
		cond.b + then.b + els.b,
		cond.irr + then.irr + els.irr,
	}, nil
}

func (c *comp) indexRead(x *minic.IndexExpr, field string) (cost, error) {
	site, err := c.accessSite(x, field)
	if err != nil {
		return cost{}, err
	}
	if err := c.emitRefIdent(site.baseID, x.Pos()); err != nil {
		return cost{}, err
	}
	idx, err := c.expr(x.Index)
	if err != nil {
		return cost{}, err
	}
	c.emit(OpLoadIdx, site.accIdx, 0)
	out := cost{idx.w + 1, idx.b + site.elemBytes, idx.irr}
	if site.irregular {
		out.irr += site.elemBytes
	}
	return out, nil
}

// ---- calls ----

func (c *comp) callExpr(x *minic.CallExpr) (cost, error) {
	name := x.Fun.Name
	// free / offload_shared_free are value-level no-ops; their arguments
	// are never evaluated (matching the tree-walker).
	if name == "free" || name == "offload_shared_free" {
		c.emit(OpConst, c.constIdx(0), 0)
		return cost{}, nil
	}
	if name == "printf" {
		return c.printfExpr(x)
	}
	if b, ok := minic.Builtins[name]; ok {
		return c.builtinExpr(x, b)
	}
	fi, ok := c.mod.ByName[name]
	if !ok {
		return cost{}, c.errf(x.Pos(), "call to undefined function %s", name)
	}
	fd := c.decl(name)
	if fd == nil {
		return cost{}, c.errf(x.Pos(), "call to undefined function %s", name)
	}
	if len(x.Args) != len(fd.Params) {
		return cost{}, c.errf(x.Pos(), "%s expects %d args, got %d", name, len(fd.Params), len(x.Args))
	}
	// Numeric arguments evaluate first (in their relative order), then
	// reference arguments — the tree-walker's env.call order. Only numeric
	// argument costs are charged.
	out := cost{w: 5}
	nNum, nRef := 0, 0
	for i, a := range x.Args {
		if isRefType(fd.Params[i].Type) {
			continue
		}
		k, err := c.expr(a)
		if err != nil {
			return cost{}, err
		}
		out.w += k.w
		out.b += k.b
		out.irr += k.irr
		nNum++
	}
	for i, a := range x.Args {
		if !isRefType(fd.Params[i].Type) {
			continue
		}
		if err := c.ref(a, minic.ElemOf(fd.Params[i].Type)); err != nil {
			return cost{}, err
		}
		nRef++
	}
	c.emit(OpCall, int32(fi), int32(nNum<<12|nRef))
	return out, nil
}

func (c *comp) decl(name string) *minic.FuncDecl {
	for _, fd := range c.file.Funcs() {
		if fd.Name == name && fd.Body != nil {
			return fd
		}
	}
	return nil
}

func (c *comp) builtinExpr(x *minic.CallExpr, b minic.Builtin) (cost, error) {
	kind, ok := builtinKind[b.Name]
	if !ok {
		return cost{}, c.errf(x.Pos(), "builtin %s not supported here", b.Name)
	}
	arity := builtinArity[kind]
	if len(x.Args) < arity {
		return cost{}, c.errf(x.Pos(), "%s expects %d args", b.Name, arity)
	}
	// The tree-walker charges every argument's cost but evaluates only the
	// first `arity` of them.
	out := cost{w: b.FlopCost}
	for i, a := range x.Args {
		if i < arity {
			k, err := c.expr(a)
			if err != nil {
				return cost{}, err
			}
			out.w += k.w
			out.b += k.b
			out.irr += k.irr
			continue
		}
		k, err := c.staticCost(a)
		if err != nil {
			return cost{}, err
		}
		out.w += k.w
		out.b += k.b
		out.irr += k.irr
	}
	c.emit(OpBuiltin, int32(kind), 0)
	return out, nil
}

func (c *comp) printfExpr(x *minic.CallExpr) (cost, error) {
	if len(x.Args) == 0 {
		return cost{}, c.errf(x.Pos(), "printf needs a format string")
	}
	lit, ok := x.Args[0].(*minic.StringLit)
	if !ok {
		return cost{}, c.errf(x.Pos(), "printf format must be a string literal")
	}
	format := lit.Value
	nArgs := len(x.Args) - 1
	// Pre-translate the format: %d/%i render as int64 via %d, %f/%g/%e
	// pass through, other verbs become %v. Verbs beyond the argument count
	// stay literal (fmt then prints its MISSING artifact, byte-for-byte
	// like the tree-walker's runtime translation).
	out := make([]byte, 0, len(format)+16)
	var kinds []byte
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' || i+1 >= len(format) {
			out = append(out, ch)
			continue
		}
		i++
		verb := format[i]
		if verb == '%' {
			out = append(out, '%')
			continue
		}
		if len(kinds) >= nArgs {
			out = append(out, '%', verb)
			continue
		}
		switch verb {
		case 'd', 'i':
			out = append(out, '%', 'd')
			kinds = append(kinds, 'i')
		case 'f', 'g', 'e':
			out = append(out, '%', verb)
			kinds = append(kinds, 'f')
		default:
			out = append(out, '%', 'v')
			kinds = append(kinds, 'f')
		}
	}
	// Only the consumed arguments are ever evaluated.
	for i := 0; i < len(kinds); i++ {
		if _, err := c.expr(x.Args[1+i]); err != nil {
			return cost{}, err
		}
	}
	c.fn.Printfs = append(c.fn.Printfs, &PrintfDesc{Format: string(out), Kinds: kinds})
	c.emit(OpPrintf, int32(len(c.fn.Printfs)-1), 0)
	return cost{}, nil
}

// ---- references ----

// ref emits code that pushes an array reference. elemHint supplies the
// element type for malloc-family calls.
func (c *comp) ref(e minic.Expr, elemHint minic.Type) error {
	switch x := e.(type) {
	case *minic.ParenExpr:
		return c.ref(x.X, elemHint)
	case *minic.Ident:
		bnd, ok := c.lookup(x.Name)
		if !ok {
			return c.errf(x.Pos(), "undefined %s", x.Name)
		}
		if !isRefType(bnd.typ) {
			return c.errf(x.Pos(), "%s is not a pointer or array", x.Name)
		}
		return c.emitRefIdent(x, x.Pos())
	case *minic.IntLit:
		if x.Value == 0 {
			c.emit(OpRefNull, 0, 0)
			return nil
		}
	case *minic.CallExpr:
		switch x.Fun.Name {
		case "malloc", "offload_shared_malloc":
			if elemHint == nil {
				elemHint = minic.DoubleType
			}
			if len(x.Args) != 1 {
				return c.errf(x.Pos(), "%s takes one argument", x.Fun.Name)
			}
			// The allocation size expression is evaluated but never
			// charged (pointer assignments carry no work in the
			// tree-walker either).
			if _, err := c.expr(x.Args[0]); err != nil {
				return err
			}
			c.fn.Mallocs = append(c.fn.Mallocs, MallocDesc{
				Elem:   elemHint,
				Shared: x.Fun.Name == "offload_shared_malloc",
				Pos:    c.posIdx(x.Pos()),
			})
			c.emit(OpMalloc, int32(len(c.fn.Mallocs)-1), 0)
			return nil
		}
	}
	return c.errf(e.Pos(), "unsupported pointer expression %T", e)
}

// ---- static cost (no emission) ----

// staticCost computes the tree-walker's cost triple for an expression
// without emitting code. Used where an expression's cost is charged but
// its code is emitted separately (index lvalues) or not at all (builtin
// surplus arguments).
func (c *comp) staticCost(e minic.Expr) (cost, error) {
	switch x := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.SizeofExpr, *minic.StringLit:
		return cost{}, nil
	case *minic.ParenExpr:
		return c.staticCost(x.X)
	case *minic.Ident:
		return cost{}, nil
	case *minic.UnaryExpr:
		if x.Op == "*" {
			idx := &minic.IndexExpr{X: x.X, Index: &minic.IntLit{Value: 0}}
			return c.staticAccessCost(idx, "")
		}
		sub, err := c.staticCost(x.X)
		if err != nil {
			return cost{}, err
		}
		return cost{sub.w + 1, sub.b, sub.irr}, nil
	case *minic.BinaryExpr:
		a, err := c.staticCost(x.X)
		if err != nil {
			return cost{}, err
		}
		b, err := c.staticCost(x.Y)
		if err != nil {
			return cost{}, err
		}
		return cost{a.w + b.w + 1, a.b + b.b, a.irr + b.irr}, nil
	case *minic.IndexExpr:
		return c.staticAccessCost(x, "")
	case *minic.MemberExpr:
		ie, ok := x.X.(*minic.IndexExpr)
		if !ok {
			return cost{}, c.errf(x.Pos(), "member access requires an indexed struct array")
		}
		return c.staticAccessCost(ie, x.Field)
	case *minic.CondExpr:
		cond, err := c.staticCost(x.Cond)
		if err != nil {
			return cost{}, err
		}
		then, err := c.staticCost(x.Then)
		if err != nil {
			return cost{}, err
		}
		els, err := c.staticCost(x.Else)
		if err != nil {
			return cost{}, err
		}
		return cost{cond.w + then.w + els.w + 1, cond.b + then.b + els.b, cond.irr + then.irr + els.irr}, nil
	case *minic.CallExpr:
		return c.staticCallCost(x)
	}
	return cost{}, c.errf(e.Pos(), "unsupported expression %T", e)
}

func (c *comp) staticAccessCost(x *minic.IndexExpr, field string) (cost, error) {
	id, ok := x.X.(*minic.Ident)
	if !ok {
		if p, isParen := x.X.(*minic.ParenExpr); isParen {
			if id2, ok2 := p.X.(*minic.Ident); ok2 {
				id = id2
				ok = true
			}
		}
	}
	if !ok {
		return cost{}, c.errf(x.Pos(), "unsupported array base expression")
	}
	bnd, found := c.lookup(id.Name)
	if !found {
		return cost{}, c.errf(id.Pos(), "undefined %s", id.Name)
	}
	if !isRefType(bnd.typ) {
		return cost{}, c.errf(id.Pos(), "%s is not an array", id.Name)
	}
	elem := minic.ElemOf(bnd.typ)
	elemBytes := float64(elem.Size())
	if field != "" {
		st, ok := elem.(*minic.StructType)
		if !ok {
			return cost{}, c.errf(x.Pos(), "%s is not a struct array", id.Name)
		}
		f := st.Field(field)
		if f == nil {
			return cost{}, c.errf(x.Pos(), "struct %s has no field %s", st.Name, field)
		}
		elemBytes = float64(f.Type.Size())
	}
	irregular := c.classifySite(x.Index) || field != ""
	idx, err := c.staticCost(x.Index)
	if err != nil {
		return cost{}, err
	}
	out := cost{idx.w + 1, idx.b + elemBytes, idx.irr}
	if irregular {
		out.irr += elemBytes
	}
	return out, nil
}

func (c *comp) staticCallCost(x *minic.CallExpr) (cost, error) {
	name := x.Fun.Name
	if name == "free" || name == "offload_shared_free" || name == "printf" {
		return cost{}, nil
	}
	if b, ok := minic.Builtins[name]; ok {
		out := cost{w: b.FlopCost}
		for _, a := range x.Args {
			k, err := c.staticCost(a)
			if err != nil {
				return cost{}, err
			}
			out.w += k.w
			out.b += k.b
			out.irr += k.irr
		}
		return out, nil
	}
	fd := c.decl(name)
	if fd == nil {
		return cost{}, c.errf(x.Pos(), "call to undefined function %s", name)
	}
	out := cost{w: 5}
	for i, a := range x.Args {
		if i < len(fd.Params) && isRefType(fd.Params[i].Type) {
			continue
		}
		k, err := c.staticCost(a)
		if err != nil {
			return cost{}, err
		}
		out.w += k.w
		out.b += k.b
		out.irr += k.irr
	}
	return out, nil
}
