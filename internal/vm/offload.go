package vm

import (
	"sort"

	"comp/internal/interp"
	"comp/internal/minic"
)

// offEnter performs the offload region preamble: flush pending host work,
// resolve the transfer specs, allocate device buffers and copy inputs in,
// then swap work accounting to a fresh kernel profile.
func (m *machine) offEnter(ch *Chunk, d *OffloadDesc, f []float64, r []*interp.Array) {
	if m.onDevice {
		m.throwf(d.Pos, "nested offload")
	}
	m.flush()
	resolved := m.evalSpecs(d.Chunk, d.Specs, d.Pos, f, r)
	m.applyIn(d.Chunk, d.Specs, resolved, d.Pos, f, r)
	reg := &region{kind: rOff, desc: d, resolved: resolved, savedWork: m.work}
	m.regions = append(m.regions, reg)
	m.work = &reg.kernelWork
	m.onDevice = true
	m.tracking = true
	m.devTouched = m.devTouched[:0]
	m.resetDevCaches()
	m.refreshBucket()
}

// offExit reports the region to the backend, copies outputs back, and
// frees device buffers per the resolved lifetime decisions.
func (m *machine) offExit(f []float64, r []*interp.Array) {
	reg := m.regions[len(m.regions)-1]
	m.regions = m.regions[:len(m.regions)-1]
	d := reg.desc

	var touched []interp.BufferRange
	for _, t := range m.devTouched {
		name := t.arr.Name
		elemBytes := int64(8)
		if a := m.p.DevBuf(name); a != nil {
			elemBytes = a.ElemBytes
		}
		touched = append(touched, interp.BufferRange{
			Name:      name,
			StartByte: t.lo * elemBytes,
			EndByte:   (t.hi + 1) * elemBytes,
		})
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i].Name < touched[j].Name })
	m.devTouched = m.devTouched[:0]
	m.tracking = false
	m.onDevice = false
	m.work = reg.savedWork
	m.refreshBucket()

	op := &interp.OffloadOp{
		Pragma:     d.Pragma,
		Specs:      reg.resolved,
		Wait:       d.Pragma.Wait,
		Signal:     d.Pragma.Signal,
		Persist:    d.Pragma.Persist,
		Work:       reg.kernelWork,
		DevTouched: touched,
	}
	if err := m.backend.Offload(op); err != nil {
		m.throwf(d.Pos, "offload failed: %v", err)
	}
	m.applyOut(d.Chunk, d.Specs, reg.resolved, d.Pos, f, r)
	m.applyFrees(reg.resolved)
}

// transfer executes one offload_transfer pragma.
func (m *machine) transfer(d *TransferDesc, f []float64, r []*interp.Array) {
	m.flush()
	resolved := m.evalSpecs(d.Chunk, d.Specs, d.Pos, f, r)
	m.applyIn(d.Chunk, d.Specs, resolved, d.Pos, f, r)
	op := &interp.TransferOp{Pragma: d.Pragma, Specs: resolved, Wait: d.Pragma.Wait, Signal: d.Pragma.Signal}
	if err := m.backend.Transfer(op); err != nil {
		m.throwf(d.Pos, "offload_transfer failed: %v", err)
	}
	m.applyOut(d.Chunk, d.Specs, resolved, d.Pos, f, r)
	m.applyFrees(resolved)
	if m.onDevice {
		// The transfer may have (re)allocated or freed device buffers and
		// scalars; drop the region's cached resolutions.
		m.clearDevCaches()
	}
}

// evalSpecs resolves compiled specs against the current host state,
// mirroring the tree-walker's evalSpecs (including which clause
// expressions are evaluated, and how often).
func (m *machine) evalSpecs(ch *Chunk, specs []*VSpec, pos minic.Pos, f []float64, r []*interp.Array) []interp.TransferSpec {
	out := make([]interp.TransferSpec, len(specs))
	for i, sp := range specs {
		ts := interp.TransferSpec{Item: sp.Item, Dir: sp.Dir, Dest: sp.DevName, Scalar: sp.Scalar}
		if sp.Scalar {
			ts.Bytes = sp.ElemBytes
			ts.Alloc = false
			ts.Free = false
			out[i] = ts
			continue
		}
		n := int64(0)
		if sp.Length != nil {
			n = int64(m.evalBlock(ch, sp.Length, f, r))
			if n < 0 {
				m.throwf(pos, "negative transfer length %d for %s", n, sp.Item.Name)
			}
		}
		ts.Elems = n
		ts.AllocBytes = n * sp.ElemBytes
		if sp.Dir != interp.DirNone {
			ts.Bytes = n * sp.ElemBytes
		}
		if sp.Dir == interp.DirIn {
			switch {
			case sp.IntoStart != nil:
				ts.DestOffsetBytes = int64(m.evalBlock(ch, sp.IntoStart, f, r)) * sp.ElemBytes
			case sp.Item.Into == "" && sp.Start != nil:
				ts.DestOffsetBytes = int64(m.evalBlock(ch, sp.Start, f, r)) * sp.ElemBytes
			}
		}
		ts.Alloc = sp.DefAlloc
		if sp.AllocIf != nil {
			ts.Alloc = m.evalBlock(ch, sp.AllocIf, f, r) != 0
		}
		ts.Free = sp.DefFree
		if sp.FreeIf != nil {
			ts.Free = m.evalBlock(ch, sp.FreeIf, f, r) != 0
		}
		out[i] = ts
	}
	return out
}

// hostArrayFor resolves the host storage of a named array.
func (m *machine) hostArrayFor(h interp.GlobalHandle, name string, pos minic.Pos) *interp.Array {
	if !h.Valid() || !h.IsArray() {
		m.throwf(pos, "pragma item %s is not a global array", name)
	}
	a := h.Arr()
	if a == nil {
		m.throwf(pos, "array %s has no storage", name)
	}
	return a
}

// devBufferShape creates a device buffer shaped after a declared variable.
func (m *machine) devBufferShape(h interp.GlobalHandle, name string, elems int64, pos minic.Pos) *interp.Array {
	if !h.Valid() || !h.IsArray() {
		m.throwf(pos, "device buffer %s must be a declared array or pointer", name)
	}
	return interp.NewArrayFor(name, h.Elem(), elems)
}

// applyIn performs device allocation and host->device value copies.
func (m *machine) applyIn(ch *Chunk, specs []*VSpec, resolved []interp.TransferSpec, pos minic.Pos, f []float64, r []*interp.Array) {
	for i, sp := range specs {
		ts := resolved[i]
		if sp.Scalar {
			if sp.Dir == interp.DirIn || sp.Dir == interp.DirNone {
				if !sp.HostG.Valid() {
					m.throwf(pos, "scalar %s is not global; only globals can be transferred", sp.HostName)
				}
				m.p.EnsureDevScalar(sp.DevName).V = sp.HostG.Cell().V
			}
			continue
		}
		if ts.Alloc {
			m.p.SetDevBuf(sp.DevName, m.devBufferShape(sp.DevG, sp.DevName, ts.Elems, pos))
		}
		if sp.Dir != interp.DirIn {
			continue
		}
		dst := m.p.DevBuf(sp.DevName)
		if dst == nil {
			m.throwf(pos, "device buffer %s used before allocation (alloc_if(0) without a prior alloc?)", sp.DevName)
		}
		src := m.hostArrayFor(sp.HostG, sp.HostName, pos)
		srcOff := int64(0)
		if sp.Start != nil {
			srcOff = int64(m.evalBlock(ch, sp.Start, f, r))
		}
		dstOff := int64(0)
		if sp.IntoStart != nil {
			dstOff = int64(m.evalBlock(ch, sp.IntoStart, f, r))
		} else if sp.Item.Into == "" {
			// LEO: a section without into() occupies the same offsets in
			// the device copy of the array.
			dstOff = srcOff
		}
		m.copySection(src, srcOff, dst, dstOff, ts.Elems, pos)
	}
}

// applyOut performs device->host value copies.
func (m *machine) applyOut(ch *Chunk, specs []*VSpec, resolved []interp.TransferSpec, pos minic.Pos, f []float64, r []*interp.Array) {
	for i, sp := range specs {
		ts := resolved[i]
		if sp.Dir != interp.DirOut {
			continue
		}
		if sp.Scalar {
			if cell := m.p.DevScalar(sp.DevName); cell != nil {
				if !sp.HostG.Valid() {
					m.throwf(pos, "scalar %s is not global", sp.HostName)
				}
				sp.HostG.Cell().V = cell.V
			}
			continue
		}
		src := m.p.DevBuf(sp.DevName)
		if src == nil {
			m.throwf(pos, "device buffer %s not present for out transfer", sp.DevName)
		}
		dst := m.hostArrayFor(sp.HostG, sp.HostName, pos)
		srcOff := int64(0)
		if sp.Start != nil {
			srcOff = int64(m.evalBlock(ch, sp.Start, f, r))
		}
		dstOff := int64(0)
		if sp.IntoStart != nil {
			dstOff = int64(m.evalBlock(ch, sp.IntoStart, f, r))
		} else if sp.Item.Into == "" {
			dstOff = srcOff
		}
		m.copySection(src, srcOff, dst, dstOff, ts.Elems, pos)
	}
}

// applyFrees drops device buffers whose specs request freeing.
func (m *machine) applyFrees(resolved []interp.TransferSpec) {
	for _, ts := range resolved {
		if ts.Free && !ts.Scalar {
			m.p.DropDevBuf(ts.Dest)
		}
	}
}

func (m *machine) copySection(src *interp.Array, srcOff int64, dst *interp.Array, dstOff, elems int64, pos minic.Pos) {
	if src.Fields != dst.Fields {
		m.throwf(pos, "transfer between %s and %s with different element layouts", src.Name, dst.Name)
	}
	fl := int64(src.Fields)
	if srcOff < 0 || srcOff+elems > int64(src.Len()) {
		m.throwf(pos, "transfer section [%d,%d) out of range for %s (len %d)", srcOff, srcOff+elems, src.Name, src.Len())
	}
	if dstOff < 0 || dstOff+elems > int64(dst.Len()) {
		m.throwf(pos, "transfer section [%d,%d) out of range for %s (len %d)", dstOff, dstOff+elems, dst.Name, dst.Len())
	}
	copy(dst.Data[dstOff*fl:(dstOff+elems)*fl], src.Data[srcOff*fl:(srcOff+elems)*fl])
}
