// Package workloads re-creates the paper's 12-benchmark evaluation suite
// (Table II: PARSEC blackscholes/streamcluster/ferret/dedup/freqmine,
// Phoenix kmeans, NAS CG, Rodinia cfd/nn/srad/bfs/hotspot).
//
// Ten benchmarks are expressed as MiniC programs: the same offload-
// annotated source the paper's compiler consumes, sized and calibrated so
// the simulated platform reproduces the paper's ratios (transfer:compute
// per Figure 4, per-optimization speedups per Table II). The two
// pointer-structure benchmarks (ferret, freqmine) drive the §V shared-
// memory substrate directly and live in sharedmem.go.
//
// Each Benchmark carries its CPU baseline (offload pragmas stripped), its
// naive MIC version (the source as written), input generators with a fixed
// seed, the output arrays used for equivalence checking, and the set of
// optimizations Table II credits it with.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"comp/internal/core"
	"comp/internal/interp"
	"comp/internal/minic"
	"comp/internal/runtime"
	"comp/internal/vm"
)

// Benchmark is one member of the evaluation suite.
type Benchmark struct {
	// Name and Suite as in Table II.
	Name  string
	Suite string
	// InputDesc mirrors Table II's input column (scaled sizes; see the
	// calibration note in internal/sim/machine/params.go).
	InputDesc string
	// Source is the offload-annotated MiniC program (the "MIC version").
	// Empty for the shared-memory benchmarks.
	Source string
	// CPUOverride, when non-empty, is used as the CPU baseline instead of
	// stripping pragmas from Source (needed when the MIC source is
	// hand-pipelined, like dedup, and references device buffers).
	CPUOverride string
	// Setup injects generated input data after Reset.
	Setup func(p *interp.Program) error
	// Outputs lists the global arrays compared for equivalence.
	Outputs []string
	// Optimizations Table II credits this benchmark with. Keys:
	// "streaming", "merging", "regularization", "sharedmem".
	Applicable []string
	// CPUThreads overrides the default 4 (dedup uses 5, ferret 6, §VI).
	CPUThreads int
	// SharedMem marks the §V benchmarks (ferret, freqmine).
	SharedMem bool
	// Shared describes the pointer-structure workload for SharedMem
	// benchmarks.
	Shared *SharedWorkload
}

// Has reports whether the benchmark is credited with an optimization.
func (b *Benchmark) Has(opt string) bool {
	for _, o := range b.Applicable {
		if o == opt {
			return true
		}
	}
	return false
}

// CPUSource returns the OpenMP-only baseline: the MIC source with every
// offload-related pragma removed (or the explicit CPU override).
func (b *Benchmark) CPUSource() (string, error) {
	if b.CPUOverride != "" {
		return b.CPUOverride, nil
	}
	f, err := minic.Parse(b.Source)
	if err != nil {
		return "", err
	}
	StripOffload(f)
	return minic.Print(f), nil
}

// StripOffload removes offload, offload_transfer and offload_wait pragmas
// from a file, leaving the plain OpenMP program.
func StripOffload(f *minic.File) {
	minic.Inspect(f, func(n minic.Node) bool {
		switch x := n.(type) {
		case *minic.ForStmt:
			var kept []*minic.Pragma
			for _, p := range x.Pragmas {
				if p.Kind == minic.PragmaOmpParallelFor {
					kept = append(kept, p)
				}
			}
			x.Pragmas = kept
		case *minic.Block:
			var kept []minic.Stmt
			for _, s := range x.Stmts {
				if ps, ok := s.(*minic.PragmaStmt); ok {
					switch ps.P.Kind {
					case minic.PragmaOffloadTransfer, minic.PragmaOffloadWait:
						continue
					}
				}
				kept = append(kept, s)
			}
			x.Stmts = kept
		}
		return true
	})
}

// registry, populated by each benchmark file's init.
var registry = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("workloads: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// All returns the suite in the paper's Table II order.
var tableOrder = []string{
	"blackscholes", "streamcluster", "ferret", "dedup", "freqmine",
	"kmeans", "cg", "cfd", "nn", "srad", "bfs", "hotspot",
}

// All returns every benchmark in Table II order.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(registry))
	for _, name := range tableOrder {
		if b, ok := registry[name]; ok {
			out = append(out, b)
		}
	}
	// Append any extras deterministically (should be none).
	var extra []string
	for name := range registry {
		found := false
		for _, n := range tableOrder {
			if n == name {
				found = true
			}
		}
		if !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, registry[name])
	}
	return out
}

// Get returns a benchmark by name.
func Get(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	return b, nil
}

// Variant selects how a MiniC benchmark runs.
type Variant int

// Variants.
const (
	// CPU runs the OpenMP baseline on the host model.
	CPU Variant = iota
	// MICNaive offloads the parallel loops as written.
	MICNaive
	// MICOptimized applies the given core options first.
	MICOptimized
)

// RunOptions configures one benchmark execution.
type RunOptions struct {
	Variant Variant
	// Opt configures the compiler for MICOptimized.
	Opt core.Options
	// Passes, when non-empty, overrides Opt's pass selection with an explicit
	// pipeline spec (e.g. "merge,streaming"); Opt still supplies the block
	// count and streaming knobs. See pass.ParseSpec for the grammar.
	Passes string
	// Config overrides the platform (zero value = DefaultConfig).
	Config *runtime.Config
	// Exec pins the execution engine for the compiled program: vm.ExecVM
	// compiles it to bytecode, vm.ExecInterp forces the tree-walker, ""
	// keeps the process-wide default (vm.SetExecMode).
	Exec string
}

// Run executes a MiniC benchmark variant and returns its result.
func (b *Benchmark) Run(ro RunOptions) (runtime.Result, error) {
	p, cfg, err := b.Prepare(ro)
	if err != nil {
		return runtime.Result{}, err
	}
	return runtime.RunWithSetup(p, cfg, b.Setup)
}

// Prepare compiles a benchmark variant without executing it, returning the
// program and the effective platform config. The stream scheduler uses it
// to build one fresh program per request (each request needs its own
// instance) and the autotuner to recompile at each probed block count.
func (b *Benchmark) Prepare(ro RunOptions) (*interp.Program, runtime.Config, error) {
	if b.SharedMem {
		return nil, runtime.Config{}, fmt.Errorf("workloads: %s is a shared-memory benchmark; use RunShared", b.Name)
	}
	src := b.Source
	switch ro.Variant {
	case CPU:
		s, err := b.CPUSource()
		if err != nil {
			return nil, runtime.Config{}, err
		}
		src = s
	case MICOptimized:
		var res *core.Result
		var err error
		if ro.Passes != "" {
			res, err = core.OptimizeSpec(b.Source, ro.Passes, ro.Opt.PassConfig())
		} else {
			res, err = core.Optimize(b.Source, ro.Opt)
		}
		if err != nil {
			return nil, runtime.Config{}, fmt.Errorf("%s: optimize: %w", b.Name, err)
		}
		src = res.Source()
	}
	p, err := interp.Compile(src)
	if err != nil {
		return nil, runtime.Config{}, fmt.Errorf("%s: compile: %w\n%s", b.Name, err, src)
	}
	if err := vm.Apply(p, ro.Exec); err != nil {
		return nil, runtime.Config{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	cfg := runtime.DefaultConfig()
	if ro.Config != nil {
		cfg = *ro.Config
	}
	if b.CPUThreads > 0 {
		cfg.CPUThreads = b.CPUThreads
	}
	return p, cfg, nil
}

// OptimizeReport runs the compiler over the benchmark source and returns
// the report (used by Table II's applicability columns).
func (b *Benchmark) OptimizeReport(opt core.Options) (*core.Result, error) {
	return core.Optimize(b.Source, opt)
}

// seededRand returns a deterministic generator per benchmark+stream.
func seededRand(name string, stream int64) *rand.Rand {
	var h int64
	for _, c := range name {
		h = h*131 + int64(c)
	}
	return rand.New(rand.NewSource(h*1000003 + stream))
}

// setArray injects float data into a program global.
func setArray(p *interp.Program, name string, data []float64) error {
	return p.SetArray(name, data)
}

// uniform fills n values in [lo, hi).
func uniform(r *rand.Rand, n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + r.Float64()*(hi-lo)
	}
	return out
}

// permutedIndices returns n random indices in [0, max).
func permutedIndices(r *rand.Rand, n, max int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(r.Intn(max))
	}
	return out
}

// CompareOutputs checks that two runs produced identical output arrays.
func (b *Benchmark) CompareOutputs(a, c runtime.Result) error {
	for _, name := range b.Outputs {
		x, err := a.Program.ArrayData(name)
		if err != nil {
			return err
		}
		y, err := c.Program.ArrayData(name)
		if err != nil {
			return err
		}
		if len(x) != len(y) {
			return fmt.Errorf("%s: output %s length %d vs %d", b.Name, name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				return fmt.Errorf("%s: output %s[%d] = %v vs %v", b.Name, name, i, x[i], y[i])
			}
		}
	}
	return nil
}
