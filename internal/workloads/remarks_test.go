package workloads

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"comp/internal/core"
	"comp/internal/pass"
)

var updateRemarks = flag.Bool("update", false, "rewrite the remark golden files")

// remarkTrail returns the remark trail for a benchmark under the default
// pipeline. Shared-memory benchmarks have no MiniC source, so their trail
// is empty — the golden records that explicitly.
func remarkTrail(t *testing.T, b *Benchmark) pass.Remarks {
	t.Helper()
	if b.SharedMem {
		return pass.Remarks{}
	}
	res, err := b.OptimizeReport(core.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return res.Report.Remarks
}

// TestRemarkGoldens pins the remark trail — text and JSON — for every
// benchmark in the suite under the default pipeline. Regenerate with
//
//	go test ./internal/workloads -run RemarkGoldens -update
func TestRemarkGoldens(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			rs := remarkTrail(t, b)

			var text bytes.Buffer
			fmt.Fprintf(&text, "# %s remarks, pipeline %s\n", b.Name, pass.DefaultSpec)
			if b.SharedMem {
				text.WriteString("# shared-memory benchmark: no MiniC source, pipeline not applicable\n")
			}
			text.WriteString(rs.Render())

			var js bytes.Buffer
			if err := rs.WriteJSON(&js); err != nil {
				t.Fatal(err)
			}

			checkGolden(t, filepath.Join("testdata", "remarks", b.Name+".txt"), text.Bytes())
			checkGolden(t, filepath.Join("testdata", "remarks", b.Name+".json"), js.Bytes())
		})
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateRemarks {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (regenerate with -update)\n--- got\n%s--- want\n%s", path, got, want)
	}
}

// TestOptionsSpecEquivalence: the Options path (core.Optimize) and the
// equivalent pipeline spec (core.OptimizeSpec with Options.Spec and
// Options.PassConfig) must produce byte-identical printed source and
// identical remark trails for every workload — they are the same manager
// built two ways.
func TestOptionsSpecEquivalence(t *testing.T) {
	combos := []struct {
		name string
		opt  core.Options
	}{
		{"streaming", core.Options{Streaming: true, ReduceMemory: true, Persistent: true, Blocks: 4}},
		{"merge", core.Options{Merge: true}},
		{"regularize", core.Options{Regularize: true}},
		{"default", core.DefaultOptions()},
	}
	for _, b := range All() {
		if b.SharedMem {
			continue
		}
		for _, c := range combos {
			t.Run(b.Name+"/"+c.name, func(t *testing.T) {
				spec := c.opt.Spec()
				if spec == "" {
					t.Fatalf("combo %s resolves to an empty spec", c.name)
				}
				viaOpt, err := core.Optimize(b.Source, c.opt)
				if err != nil {
					t.Fatal(err)
				}
				viaSpec, err := core.OptimizeSpec(b.Source, spec, c.opt.PassConfig())
				if err != nil {
					t.Fatal(err)
				}
				if viaOpt.Source() != viaSpec.Source() {
					t.Errorf("Options path and spec %q printed different source", spec)
				}
				if viaOpt.Report.Remarks.Render() != viaSpec.Report.Remarks.Render() {
					t.Errorf("Options path and spec %q produced different remark trails:\n--- options\n%s--- spec\n%s",
						spec, viaOpt.Report.Remarks.Render(), viaSpec.Report.Remarks.Render())
				}
			})
		}
	}
}

// TestSradRemarkTrail is the acceptance check from the pass-manager issue:
// srad's trail under the default pipeline must show the split actually
// applied, and at least one other decision skipped with a stated reason (the
// serial split wrapper that streaming declines).
func TestSradRemarkTrail(t *testing.T) {
	b, err := Get("srad")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.OptimizeReport(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Report.Remarks
	if !rs.Has("split") {
		t.Fatalf("srad trail missing applied split:\n%s", rs.Render())
	}
	found := false
	for _, r := range rs.Skipped() {
		if r.Reason != "" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("srad trail has no skipped-with-reason remark:\n%s", rs.Render())
	}
}

// TestPrepareWithPassesSpec: RunOptions.Passes routes Prepare through the
// explicit-pipeline compiler path and still yields a runnable program.
func TestPrepareWithPassesSpec(t *testing.T) {
	b, err := Get("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Blocks = 4
	byOpt, err := b.Run(RunOptions{Variant: MICOptimized, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	bySpec, err := b.Run(RunOptions{Variant: MICOptimized, Opt: opt, Passes: opt.Spec()})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CompareOutputs(byOpt, bySpec); err != nil {
		t.Fatalf("spec-compiled run diverged from options-compiled run: %v", err)
	}
	if _, err := b.Run(RunOptions{Variant: MICOptimized, Opt: opt, Passes: "no-such-pass"}); err == nil {
		t.Fatal("bad pipeline spec accepted")
	}
}
