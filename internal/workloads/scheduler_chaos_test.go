package workloads

import (
	"fmt"
	"reflect"
	"testing"

	"comp/internal/core"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
)

// schedulerBatch prepares `requests` independent copies of the workload's
// optimized variant and runs them through the multi-stream scheduler.
func schedulerBatch(t *testing.T, b *Benchmark, cfg runtime.Config, streams, requests int) (runtime.SchedResult, []*runtime.Result) {
	t.Helper()
	s, err := runtime.NewScheduler(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	ro := RunOptions{Variant: MICOptimized, Opt: core.DefaultOptions(), Config: &cfg}
	results := make([]*runtime.Result, requests)
	for i := 0; i < requests; i++ {
		p, _, err := b.Prepare(ro)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = &runtime.Result{Program: p}
		s.Submit(runtime.Request{Label: fmt.Sprintf("%s-%02d", b.Name, i), Program: p, Setup: b.Setup})
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, results
}

// TestChaosMultiStream extends the chaos contract to the scheduler: real
// workloads sharing the device across streams must complete under every
// chaos seed with outputs bitwise-identical to the fault-free batch,
// bounded slowdown, and per-seed reproducibility.
func TestChaosMultiStream(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-stream chaos skipped in -short mode")
	}
	for _, name := range []string{"blackscholes", "srad", "dedup"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			clean, cleanRes := schedulerBatch(t, b, runtime.DefaultConfig(), 2, 4)
			for i, seed := range chaosSeeds {
				cfg := runtime.DefaultConfig()
				cfg.Faults = chaosConfig(seed)
				res, faulted := schedulerBatch(t, b, cfg, 2, 4)
				st := res.Stats
				if st.FaultsInjected < 1 {
					t.Errorf("seed %d: no faults injected; the schedule is too weak to test anything", seed)
				}
				for r := range faulted {
					if err := b.CompareOutputs(*cleanRes[r], *faulted[r]); err != nil {
						t.Errorf("seed %d: request %d diverged from the fault-free batch: %v", seed, r, err)
					}
				}
				if limit := 50*clean.Stats.Time + 50*engine.Millisecond; st.Time > limit {
					t.Errorf("seed %d: makespan %v exceeds bound %v (clean %v)", seed, st.Time, limit, clean.Stats.Time)
				}
				for _, rq := range st.Requests {
					if len(rq.DeadlockWarnings) != 0 {
						t.Errorf("seed %d: request %s left deadlocks: %v", seed, rq.Label, rq.DeadlockWarnings)
					}
				}
				if i == 0 {
					again, _ := schedulerBatch(t, b, cfg, 2, 4)
					if !reflect.DeepEqual(st, again.Stats) {
						t.Errorf("seed %d: rerun produced different stats:\n%+v\n%+v", seed, st, again.Stats)
					}
				}
			}
		})
	}
}
