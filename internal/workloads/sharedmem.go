package workloads

import (
	"fmt"

	"comp/internal/myo"
	"comp/internal/runtime"
	"comp/internal/shmem"
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
	"comp/internal/sim/machine"
	"comp/internal/sim/pcie"
)

// SharedWorkload describes a pointer-based-structure benchmark for the §V
// experiments (Table III). The two members, ferret and freqmine, build
// large object graphs with offload_shared_malloc and traverse them on the
// coprocessor; the contest is purely about how the structure reaches the
// device (MYO page faults vs COMP's bulk-copied segments), so these
// benchmarks drive the shared-memory substrates directly rather than the
// MiniC interpreter.
type SharedWorkload struct {
	// StaticSites and Allocations are Table III's "Static" and "Dynamic"
	// columns; TotalBytes is the structure's size.
	StaticSites int
	Allocations int64
	TotalBytes  int64
	// MYOScale is the input fraction at which the MYO baseline is
	// measured. ferret's full input exceeds MYO's allocation cap, so the
	// paper compares at 1500 of 3500 images.
	MYOScale float64
	// SerialFlops is host-side serial work (paid by every variant).
	SerialFlops float64
	// DevSerialFlops is the kernel's sequential portion (pointer chasing
	// that does not parallelize — large for freqmine's FP-tree walk).
	DevSerialFlops float64
	// ParFlops is the kernel's parallel (non-vectorizable) portion.
	ParFlops float64
	// DerefsPerObject counts shared-pointer dereferences per object; each
	// costs a few operations of translation under the COMP mechanism.
	DerefsPerObject int64
}

// translationFlops is the §V-B cost per dereference with the bid-augmented
// pointers: load delta[bid], add, use.
const translationFlops = 3

// linearSearchFlopsPerSegment is the per-segment comparison cost of the
// baseline translation strategy (ablation).
const linearSearchFlopsPerSegment = 2

// Mechanism selects how the structure reaches the device.
type Mechanism int

// Mechanisms.
const (
	// MechCPU runs the whole benchmark on the host (no transfer at all).
	MechCPU Mechanism = iota
	// MechMYO uses Intel MYO's page-fault shared memory.
	MechMYO
	// MechCOMP uses the paper's segmented buffers with bid pointers.
	MechCOMP
	// MechCOMPLinear is the ablation: COMP's buffers but linear-search
	// pointer translation instead of the bid field.
	MechCOMPLinear
)

func (m Mechanism) String() string {
	switch m {
	case MechCPU:
		return "cpu"
	case MechMYO:
		return "myo"
	case MechCOMP:
		return "comp"
	case MechCOMPLinear:
		return "comp-linear"
	}
	return "unknown"
}

// SharedResult reports one shared-memory run.
type SharedResult struct {
	Time      engine.Duration
	Faults    int64
	Transfers int64
	Bytes     int64
	Segments  int
	Allocs    int64
	// Reserved is the total segment reservation (COMP mechanism only).
	Reserved int64
	// Retries and FaultsInjected report recovery activity under an
	// injected fault schedule (RunSharedFaulted).
	Retries        int64
	FaultsInjected int64
	// Trace is the simulation's recorded execution timeline; nil for the
	// CPU mechanism (which builds no simulation) and when recording was
	// disabled via RunSharedTraced.
	Trace *engine.Trace
}

// objectSizes deterministically spreads TotalBytes over Allocations
// objects (±50% jitter around the mean).
func (w *SharedWorkload) objectSizes(name string, scale float64) []int64 {
	n := int64(float64(w.Allocations) * scale)
	if n < 1 {
		n = 1
	}
	total := int64(float64(w.TotalBytes) * scale)
	mean := total / n
	if mean < 16 {
		mean = 16
	}
	r := seededRand(name, 7)
	sizes := make([]int64, n)
	var sum int64
	for i := range sizes {
		s := mean/2 + int64(r.Float64()*float64(mean))
		sizes[i] = s
		sum += s
	}
	// Rescale to hit the target total.
	f := float64(total) / float64(sum)
	sum = 0
	for i := range sizes {
		sizes[i] = int64(float64(sizes[i]) * f)
		if sizes[i] < 8 {
			sizes[i] = 8
		}
		sum += sizes[i]
	}
	return sizes
}

// RunShared executes a shared-memory benchmark under one mechanism at the
// given input scale (1.0 = full input). MYO at full ferret input returns
// its allocation-limit error — the paper's "cannot run" result.
func RunShared(b *Benchmark, mech Mechanism, scale float64) (SharedResult, error) {
	return runShared(b, mech, scale, myo.DefaultConfig(), shmem.DefaultConfig(), fault.Config{}, true)
}

// RunSharedTraced is RunShared with span recording controlled explicitly.
// Disabling the trace must not change any result field except Trace itself;
// the consistency suite asserts exactly that.
func RunSharedTraced(b *Benchmark, mech Mechanism, scale float64, traceOn bool) (SharedResult, error) {
	return runShared(b, mech, scale, myo.DefaultConfig(), shmem.DefaultConfig(), fault.Config{}, traceOn)
}

// RunSharedMYOConfig runs the MYO mechanism with a custom configuration
// (page-size ablation).
func RunSharedMYOConfig(b *Benchmark, scale float64, cfg myo.Config) (SharedResult, error) {
	return runShared(b, MechMYO, scale, cfg, shmem.DefaultConfig(), fault.Config{}, true)
}

// RunSharedSegment runs the COMP mechanism with a custom segment size
// (§V-A ablation).
func RunSharedSegment(b *Benchmark, scale float64, segmentBytes int64) (SharedResult, error) {
	return runShared(b, MechCOMP, scale, myo.DefaultConfig(), shmem.Config{SegmentBytes: segmentBytes}, fault.Config{}, true)
}

// RunSharedFaulted runs the COMP mechanism under a seeded fault schedule:
// segment DMAs fail transiently and are retried with the offload runtime's
// exponential-backoff policy. The analytic result is unaffected; only
// timing and the recovery counters change, deterministically per seed.
func RunSharedFaulted(b *Benchmark, scale float64, fc fault.Config) (SharedResult, error) {
	return runShared(b, MechCOMP, scale, myo.DefaultConfig(), shmem.DefaultConfig(), fc, true)
}

func runShared(b *Benchmark, mech Mechanism, scale float64, myoCfg myo.Config, shmemCfg shmem.Config, fc fault.Config, traceOn bool) (SharedResult, error) {
	if !b.SharedMem || b.Shared == nil {
		return SharedResult{}, fmt.Errorf("workloads: %s is not a shared-memory benchmark", b.Name)
	}
	w := b.Shared
	mic := machine.XeonPhi()
	cpu := machine.XeonE5()

	serial := w.SerialFlops * scale
	devSerial := w.DevSerialFlops * scale
	par := w.ParFlops * scale

	if mech == MechCPU {
		// Everything on the host: serial portions at host serial speed,
		// parallel portion across the host threads (scalar: pointer code
		// does not vectorize).
		t := cpu.SerialTime(serial + devSerial)
		t += cpu.WorkTime(par, 0, 0, false, machine.DefaultCPUThreads)
		return SharedResult{Time: t}, nil
	}

	sim := engine.New()
	sim.Trace().SetEnabled(traceOn)
	bus := pcie.New(sim, pcie.Default())
	sizes := w.objectSizes(b.Name, scale)

	switch mech {
	case MechMYO:
		heap := myo.NewHeap(myoCfg)
		addrs := make([]int64, len(sizes))
		for i, s := range sizes {
			a, err := heap.Malloc(s)
			if err != nil {
				return SharedResult{}, fmt.Errorf("%s under MYO: %w", b.Name, err)
			}
			addrs[i] = a
		}
		// Device phase: the traversal faults every object's pages in, in
		// access order; the kernel computes once the data is resident.
		last := sim.FiredEvent()
		for i, a := range addrs {
			last = heap.TouchOnDevice(sim, bus, last, a, sizes[i])
		}
		kernelT := mic.SerialTime(devSerial) + mic.WorkTime(par, 0, 0, false, machine.DefaultMICThreads)
		var doneAt engine.Time
		last.OnFire(func(engine.Time) {
			sim.After(kernelT, func() { doneAt = sim.Now() })
		})
		sim.Run()
		total := engine.Duration(doneAt) + cpu.SerialTime(serial)
		res := SharedResult{
			Time:      total,
			Faults:    heap.Faults(),
			Transfers: bus.TotalTransfers(),
			Bytes:     bus.TotalBytes(),
			Allocs:    heap.AllocCount(),
		}
		if traceOn {
			res.Trace = sim.Trace()
		}
		return res, nil

	case MechCOMP, MechCOMPLinear:
		heap := shmem.NewHeap(shmemCfg)
		for _, s := range sizes {
			if _, err := heap.Malloc(s); err != nil {
				return SharedResult{}, fmt.Errorf("%s under COMP shared memory: %w", b.Name, err)
			}
		}
		// Bulk-copy each segment with one DMA (full use of the engine).
		devBases := make([]uint64, heap.SegmentCount())
		for i := range devBases {
			devBases[i] = uint64(0x8000000 + i*0x900000)
		}
		if _, err := heap.CopyToDevice(devBases); err != nil {
			return SharedResult{}, err
		}
		if fc.Enabled() {
			bus.SetInjector(fault.New(fc))
		}
		var retries int64
		last := sim.FiredEvent()
		for _, seg := range heap.Segments() {
			last = segmentDMA(sim, bus, last, seg.Used, &retries)
		}
		// Kernel: traversal plus per-dereference translation overhead.
		derefs := float64(int64(len(sizes)) * w.DerefsPerObject)
		transFlops := derefs * translationFlops
		if mech == MechCOMPLinear {
			// Expected cost of the linear scan: half the segment list per
			// dereference.
			transFlops = derefs * linearSearchFlopsPerSegment * float64(heap.SegmentCount()) / 2
		}
		kernelT := mic.SerialTime(devSerial) +
			mic.WorkTime(par+transFlops, 0, 0, false, machine.DefaultMICThreads)
		var doneAt engine.Time
		last.OnFire(func(engine.Time) {
			sim.After(kernelT, func() { doneAt = sim.Now() })
		})
		sim.Run()
		total := engine.Duration(doneAt) + cpu.SerialTime(serial)
		res := SharedResult{
			Time:           total,
			Transfers:      bus.TotalTransfers(),
			Bytes:          bus.TotalBytes(),
			Segments:       heap.SegmentCount(),
			Allocs:         heap.AllocCount(),
			Reserved:       heap.TotalReserved(),
			Retries:        retries,
			FaultsInjected: bus.FaultCount(),
		}
		if traceOn {
			res.Trace = sim.Trace()
		}
		return res, nil
	}
	return SharedResult{}, fmt.Errorf("workloads: unknown mechanism %v", mech)
}

// segmentDMA issues one segment copy under the fault schedule, retrying
// failed attempts with exponential backoff and escalating to a guaranteed
// transfer once the runtime's retry budget is exhausted.
func segmentDMA(sim *engine.Sim, bus *pcie.Bus, after *engine.Event, bytes int64, retries *int64) *engine.Event {
	ev, ok := bus.TryTransferAfter(after, pcie.HostToDevice, "segment", bytes)
	for attempt := 1; !ok; attempt++ {
		*retries++
		ready := engine.Delay(sim, ev, runtime.DefaultBackoff<<min(attempt-1, 20))
		if attempt > runtime.DefaultMaxRetries {
			return bus.TransferAfter(ready, pcie.HostToDevice, "segment", bytes)
		}
		ev, ok = bus.TryTransferAfter(ready, pcie.HostToDevice, "segment", bytes)
	}
	return ev
}

// ---- ferret (PARSEC) ---------------------------------------------------
//
// Content-based image similarity: tens of thousands of small feature
// objects linked by pointers (Figure 9's example structure). At the full
// 3500-image input MYO's allocation cap is exceeded — the benchmark
// "cannot run correctly using Intel MYO" — so the paper compares at 1500
// images, where COMP's bulk-copied segments win 7.81x (Table III).

func init() {
	register(&Benchmark{
		Name:       "ferret",
		Suite:      "PARSEC",
		InputDesc:  "3500 images, 80298 shared allocations, 83 MB",
		Applicable: []string{"sharedmem"},
		CPUThreads: 6,
		SharedMem:  true,
		Shared: &SharedWorkload{
			StaticSites:     19,
			Allocations:     80298,
			TotalBytes:      83 << 20,
			MYOScale:        1500.0 / 3500.0,
			SerialFlops:     2.2e6,
			DevSerialFlops:  0,
			ParFlops:        2.5e9,
			DerefsPerObject: 4,
		},
	})
}

// ---- freqmine (PARSEC) --------------------------------------------------
//
// FP-growth frequent itemset mining: fewer but much larger shared
// allocations (912 allocations, 183 MB) and a compute-heavy, largely
// sequential tree walk on the device. The structure transfers 8x faster
// under COMP, but compute dominates, so the whole-benchmark gain is the
// paper's modest 1.16x.

func init() {
	register(&Benchmark{
		Name:       "freqmine",
		Suite:      "PARSEC",
		InputDesc:  "250000 web docs, 912 shared allocations, 183 MB",
		Applicable: []string{"sharedmem"},
		SharedMem:  true,
		Shared: &SharedWorkload{
			StaticSites:     7,
			Allocations:     912,
			TotalBytes:      183 << 20,
			MYOScale:        1.0,
			SerialFlops:     1.0e9,
			DevSerialFlops:  1.84e9,
			ParFlops:        1.053e11,
			DerefsPerObject: 40000,
		},
	})
}

// defaultMYO exposes the baseline MYO configuration for tests and sweeps.
func defaultMYO() myo.Config { return myo.DefaultConfig() }
