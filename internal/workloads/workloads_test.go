package workloads

import (
	"strings"
	"testing"

	"comp/internal/core"
)

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(all))
	}
	for i, name := range tableOrder {
		if all[i].Name != name {
			t.Fatalf("position %d = %s, want %s (Table II order)", i, all[i].Name, name)
		}
	}
	for _, b := range all {
		if b.Suite == "" || b.InputDesc == "" {
			t.Errorf("%s missing metadata", b.Name)
		}
		if b.SharedMem && b.Shared == nil {
			t.Errorf("%s marked shared but has no workload", b.Name)
		}
		if !b.SharedMem && b.Source == "" {
			t.Errorf("%s has no source", b.Name)
		}
	}
	if _, err := Get("blackscholes"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown benchmark lookup succeeded")
	}
}

func TestApplicabilityMatchesTable2(t *testing.T) {
	want := map[string][]string{
		"blackscholes":  {"streaming"},
		"streamcluster": {"streaming", "merging"},
		"ferret":        {"sharedmem"},
		"dedup":         nil,
		"freqmine":      {"sharedmem"},
		"kmeans":        {"streaming"},
		"cg":            {"streaming", "merging"},
		"cfd":           {"merging"},
		"nn":            {"streaming", "regularization"},
		"srad":          {"regularization"},
		"bfs":           nil,
		"hotspot":       nil,
	}
	for name, opts := range want {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Applicable) != len(opts) {
			t.Errorf("%s applicable = %v, want %v", name, b.Applicable, opts)
			continue
		}
		for _, o := range opts {
			if !b.Has(o) {
				t.Errorf("%s missing %s", name, o)
			}
		}
	}
}

// TestMiniCVariantsEquivalent is the end-to-end soak: every MiniC
// benchmark must produce identical outputs on the CPU baseline, the naive
// MIC offload, and the fully optimized MIC version.
func TestMiniCVariantsEquivalent(t *testing.T) {
	for _, b := range All() {
		if b.SharedMem {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cpu, err := b.Run(RunOptions{Variant: CPU})
			if err != nil {
				t.Fatalf("cpu: %v", err)
			}
			naive, err := b.Run(RunOptions{Variant: MICNaive})
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			opt, err := b.Run(RunOptions{Variant: MICOptimized, Opt: core.DefaultOptions()})
			if err != nil {
				t.Fatalf("optimized: %v", err)
			}
			if err := b.CompareOutputs(cpu, naive); err != nil {
				t.Fatalf("cpu vs naive: %v", err)
			}
			if err := b.CompareOutputs(cpu, opt); err != nil {
				t.Fatalf("cpu vs optimized: %v", err)
			}
			t.Logf("%-14s cpu=%v naive=%v opt=%v  naive/cpu=%.2f opt/naive=%.2f launches naive=%d opt=%d",
				b.Name, cpu.Stats.Time, naive.Stats.Time, opt.Stats.Time,
				float64(cpu.Stats.Time)/float64(naive.Stats.Time),
				float64(naive.Stats.Time)/float64(opt.Stats.Time),
				naive.Stats.KernelLaunches, opt.Stats.KernelLaunches)
		})
	}
}

func TestOptimizerAppliesExpectedTransforms(t *testing.T) {
	expect := map[string][]string{
		"blackscholes":  {"stream"},
		"streamcluster": {"merge"},
		"cg":            {"merge"},
		"cfd":           {"merge"},
		"kmeans":        {"stream"},
		"nn":            {"reorder", "stream"},
		"srad":          {"split"},
	}
	for name, opts := range expect {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.OptimizeReport(core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, o := range opts {
			if !res.Report.Remarks.Has(o) {
				t.Errorf("%s: transform %q not applied; remarks:\n%s", name, o, res.Report.Remarks.Render())
			}
		}
	}
}

func TestOptimizerDeclinesWhereNothingApplies(t *testing.T) {
	for _, name := range []string{"dedup", "hotspot", "bfs"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.OptimizeReport(core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if applied := res.Report.Remarks.Applied(); len(applied) != 0 {
			t.Errorf("%s: expected no transforms, got %+v", name, applied)
		}
		// Every decline must carry a reason; "nothing applied" is itself
		// an explained outcome under the pass manager.
		if len(res.Report.Remarks.Skipped()) == 0 {
			t.Errorf("%s: no skipped-with-reason remarks recorded", name)
		}
		for _, r := range res.Report.Remarks.Skipped() {
			if r.Reason == "" {
				t.Errorf("%s: skipped remark without reason: %+v", name, r)
			}
		}
	}
}

func TestCPUSourceStripsOffload(t *testing.T) {
	b, _ := Get("blackscholes")
	src, err := b.CPUSource()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "offload") {
		t.Fatalf("CPU source still mentions offload:\n%s", src)
	}
	if !strings.Contains(src, "omp parallel for") {
		t.Fatalf("CPU source lost omp pragma")
	}
}

func TestSharedRunMechanisms(t *testing.T) {
	ferret, _ := Get("ferret")
	freqmine, _ := Get("freqmine")

	// ferret at full input cannot run under MYO (allocation cap).
	if _, err := RunShared(ferret, MechMYO, 1.0); err == nil {
		t.Fatal("ferret full input ran under MYO; the paper reports it cannot")
	}
	// At the reduced 1500-image input it runs, and COMP wins big.
	fm, err := RunShared(ferret, MechMYO, ferret.Shared.MYOScale)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := RunShared(ferret, MechCOMP, ferret.Shared.MYOScale)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(fm.Time) / float64(fc.Time)
	if ratio < 4 || ratio > 14 {
		t.Errorf("ferret MYO/COMP = %.2f, want in the 7.81x neighbourhood", ratio)
	}
	if fm.Faults == 0 {
		t.Error("MYO run took no faults")
	}
	if fc.Segments == 0 {
		t.Error("COMP run created no segments")
	}
	t.Logf("ferret: myo=%v comp=%v ratio=%.2f faults=%d segments=%d",
		fm.Time, fc.Time, ratio, fm.Faults, fc.Segments)

	// freqmine runs under both; gain is modest (compute dominates).
	qm, err := RunShared(freqmine, MechMYO, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	qc, err := RunShared(freqmine, MechCOMP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ratio = float64(qm.Time) / float64(qc.Time)
	if ratio < 1.05 || ratio > 1.6 {
		t.Errorf("freqmine MYO/COMP = %.2f, want near 1.16x", ratio)
	}
	t.Logf("freqmine: myo=%v comp=%v ratio=%.2f", qm.Time, qc.Time, ratio)

	// CPU variants exist for both.
	if _, err := RunShared(ferret, MechCPU, 1.0); err != nil {
		t.Fatal(err)
	}
	// Linear-search translation is worse than bid-based.
	cl, err := RunShared(freqmine, MechCOMPLinear, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Time <= qc.Time {
		t.Errorf("linear translation %v not slower than bid translation %v", cl.Time, qc.Time)
	}
}

func TestSharedRejectsWrongKinds(t *testing.T) {
	bs, _ := Get("blackscholes")
	if _, err := RunShared(bs, MechMYO, 1.0); err == nil {
		t.Error("RunShared accepted a MiniC benchmark")
	}
	ferret, _ := Get("ferret")
	if _, err := ferret.Run(RunOptions{Variant: CPU}); err == nil {
		t.Error("Run accepted a shared-memory benchmark")
	}
}

func TestTable3Counts(t *testing.T) {
	ferret, _ := Get("ferret")
	freqmine, _ := Get("freqmine")
	if ferret.Shared.Allocations != 80298 || ferret.Shared.StaticSites != 19 {
		t.Errorf("ferret Table III counts wrong: %+v", ferret.Shared)
	}
	if freqmine.Shared.Allocations != 912 || freqmine.Shared.StaticSites != 7 {
		t.Errorf("freqmine Table III counts wrong: %+v", freqmine.Shared)
	}
}

func TestSharedConfigVariants(t *testing.T) {
	ferret, _ := Get("ferret")
	// Custom segment size returns reservation accounting.
	res, err := RunSharedSegment(ferret, 1.0, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 6 || res.Reserved != 6*(16<<20) {
		t.Fatalf("segments=%d reserved=%d", res.Segments, res.Reserved)
	}
	// Custom MYO page size changes the fault count proportionally.
	import_cfg := func(page int64) int64 {
		cfg := defaultMYO()
		cfg.PageBytes = page
		r, err := RunSharedMYOConfig(ferret, ferret.Shared.MYOScale, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.Faults
	}
	f4k := import_cfg(4096)
	f16k := import_cfg(16384)
	if f16k >= f4k {
		t.Fatalf("coarser pages did not reduce faults: %d vs %d", f16k, f4k)
	}
}
