package workloads

import (
	"reflect"
	"testing"

	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
)

// chaosSeeds are the fault schedules every workload must survive. The
// whole platform is deterministic, so these are regression pins, not
// random draws: a behavior change under any seed is a real change.
var chaosSeeds = []int64{11, 23, 47}

// chaosConfig is an aggressive schedule: half of DMA attempts fail, a
// quarter of launches, plus hangs and allocation faults.
func chaosConfig(seed int64) fault.Config {
	return fault.Config{Seed: seed, DMARate: 0.5, LaunchRate: 0.25, HangRate: 0.15, AllocRate: 0.1}
}

// TestChaosAllWorkloads runs every benchmark under every chaos seed and
// asserts the resilience contract: the run completes, outputs are
// bitwise-identical to the fault-free run, the slowdown is bounded, and
// the same seed reproduces the same Stats.
func TestChaosAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.SharedMem {
				chaosShared(t, b)
				return
			}
			clean, err := b.Run(RunOptions{Variant: MICNaive})
			if err != nil {
				t.Fatal(err)
			}
			for i, seed := range chaosSeeds {
				cfg := runtime.DefaultConfig()
				cfg.Faults = chaosConfig(seed)
				res, err := b.Run(RunOptions{Variant: MICNaive, Config: &cfg})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				st := res.Stats
				if st.FaultsInjected < 1 {
					t.Errorf("seed %d: no faults injected; the schedule is too weak to test anything", seed)
				}
				if err := b.CompareOutputs(clean, res); err != nil {
					t.Errorf("seed %d: outputs diverged from the fault-free run: %v", seed, err)
				}
				if limit := 50*clean.Stats.Time + 50*engine.Millisecond; st.Time > limit {
					t.Errorf("seed %d: makespan %v exceeds bound %v (clean %v)", seed, st.Time, limit, clean.Stats.Time)
				}
				if len(st.DeadlockWarnings) != 0 {
					t.Errorf("seed %d: recovery left deadlocks: %v", seed, st.DeadlockWarnings)
				}
				if i == 0 {
					again, err := b.Run(RunOptions{Variant: MICNaive, Config: &cfg})
					if err != nil {
						t.Fatalf("seed %d rerun: %v", seed, err)
					}
					if !reflect.DeepEqual(st, again.Stats) {
						t.Errorf("seed %d: rerun produced different Stats:\n%+v\n%+v", seed, st, again.Stats)
					}
				}
			}
		})
	}
}

// chaosShared is the chaos contract for the two shared-memory benchmarks:
// segment DMAs fail and are retried; payload accounting and the analytic
// result stay identical, and the run is reproducible per seed.
func chaosShared(t *testing.T, b *Benchmark) {
	clean, err := RunShared(b, MechCOMP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range chaosSeeds {
		fc := fault.Config{Seed: seed, DMARate: 0.5}
		res, err := RunSharedFaulted(b, 1.0, fc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.FaultsInjected < 1 {
			t.Errorf("seed %d: no faults injected", seed)
		}
		if res.Retries < 1 {
			t.Errorf("seed %d: faults injected but nothing retried", seed)
		}
		if res.Bytes != clean.Bytes || res.Segments != clean.Segments || res.Allocs != clean.Allocs {
			t.Errorf("seed %d: faulted run changed the workload: %+v vs clean %+v", seed, res, clean)
		}
		if res.Time <= clean.Time {
			t.Errorf("seed %d: faulted %v not slower than clean %v", seed, res.Time, clean.Time)
		}
		if res.Time > 50*clean.Time {
			t.Errorf("seed %d: slowdown unbounded: %v vs clean %v", seed, res.Time, clean.Time)
		}
		if i == 0 {
			again, err := RunSharedFaulted(b, 1.0, fc)
			if err != nil {
				t.Fatalf("seed %d rerun: %v", seed, err)
			}
			if !reflect.DeepEqual(res, again) {
				t.Errorf("seed %d: rerun differs:\n%+v\n%+v", seed, res, again)
			}
		}
	}
}
