package workloads

import (
	"testing"

	"comp/internal/interp"
	"comp/internal/minic"
)

// TestBenchmarkSourcesRoundTrip: every benchmark source parses, checks,
// and survives a print/reparse cycle unchanged — the property that lets
// the optimizer treat them as plain source files.
func TestBenchmarkSourcesRoundTrip(t *testing.T) {
	for _, b := range All() {
		if b.SharedMem {
			continue
		}
		f1, err := minic.Parse(b.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", b.Name, err)
		}
		if err := minic.Check(f1).Err(); err != nil {
			t.Fatalf("%s: check: %v", b.Name, err)
		}
		p1 := minic.Print(f1)
		f2, err := minic.Parse(p1)
		if err != nil {
			t.Fatalf("%s: reparse: %v", b.Name, err)
		}
		if p2 := minic.Print(f2); p1 != p2 {
			t.Fatalf("%s: print not a fixed point", b.Name)
		}
		if b.CPUOverride != "" {
			if _, err := minic.Parse(b.CPUOverride); err != nil {
				t.Fatalf("%s: CPU override parse: %v", b.Name, err)
			}
		}
	}
}

// TestSetupDeterministic: two Setups of the same benchmark inject
// identical data — the property behind reproducible figures.
func TestSetupDeterministic(t *testing.T) {
	for _, b := range All() {
		if b.SharedMem {
			continue
		}
		load := func() map[string][]float64 {
			p, err := interp.Compile(b.Source)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if err := b.Setup(p); err != nil {
				t.Fatalf("%s: setup: %v", b.Name, err)
			}
			out := map[string][]float64{}
			for _, d := range p.File().Decls {
				vd, ok := d.(*minic.VarDecl)
				if !ok || minic.ElemOf(vd.Type) == nil {
					continue
				}
				if data, err := p.ArrayData(vd.Name); err == nil {
					out[vd.Name] = data
				}
			}
			return out
		}
		a, c := load(), load()
		for name, av := range a {
			cv := c[name]
			if len(av) != len(cv) {
				t.Fatalf("%s: %s lengths differ", b.Name, name)
			}
			for i := range av {
				if av[i] != cv[i] {
					t.Fatalf("%s: %s[%d] differs across setups", b.Name, name, i)
				}
			}
		}
	}
}

// TestSharedObjectSizesDeterministic pins the synthetic structure layout.
func TestSharedObjectSizesDeterministic(t *testing.T) {
	ferret, _ := Get("ferret")
	a := ferret.Shared.objectSizes("ferret", 0.25)
	b := ferret.Shared.objectSizes("ferret", 0.25)
	if len(a) != len(b) {
		t.Fatal("object counts differ")
	}
	var total int64
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("size[%d] differs", i)
		}
		total += a[i]
	}
	want := int64(float64(ferret.Shared.TotalBytes) * 0.25)
	// Rescaling is approximate; stay within 2%.
	if total < want*98/100 || total > want*102/100 {
		t.Fatalf("total %d not within 2%% of %d", total, want)
	}
}
