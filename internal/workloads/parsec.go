package workloads

import (
	"comp/internal/interp"
)

// ---- blackscholes (PARSEC) -------------------------------------------
//
// The paper's running example (Figure 5): one offloaded parallel loop
// pricing options. Five input arrays and one output array stream; the
// kernel is transcendental-heavy (CNDF evaluations), giving the Figure 4
// transfer:compute ratio around 3 and the Table II streaming speedup of
// about 1.5x.

const blackscholesN = 32768

const blackscholesSrc = `
float sptprice[32768];
float strike[32768];
float rate[32768];
float volatility[32768];
float otime[32768];
float prices[32768];
int numOptions;
int numRuns;

float CNDF(float x) {
    float sign = 1.0;
    if (x < 0.0) {
        x = -x;
        sign = 0.0;
    }
    float k = 1.0 / (1.0 + 0.2316419 * x);
    float kp = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    float nd = 1.0 - 0.39894228 * exp(-0.5 * x * x) * kp;
    if (sign == 0.0) {
        nd = 1.0 - nd;
    }
    return nd;
}

float BlkSchlsEqEuroNoDiv(float spt, float str, float r, float v, float t, int otype) {
    float sqrtT = sqrt(t);
    float d1 = (log(spt / str) + (r + 0.5 * v * v) * t) / (v * sqrtT);
    float d2 = d1 - v * sqrtT;
    float nd1 = CNDF(d1);
    float nd2 = CNDF(d2);
    float futureValue = str * exp(-r * t);
    if (otype == 0) {
        return spt * nd1 - futureValue * nd2;
    }
    return futureValue * (1.0 - nd2) - spt * (1.0 - nd1);
}

int main(void) {
    int i;
    int r;
    numOptions = 32768;
    numRuns = 2;
    #pragma offload target(mic:0) in(sptprice, strike, rate, volatility, otime : length(numOptions)) out(prices : length(numOptions))
    #pragma omp parallel for
    for (i = 0; i < numOptions; i++) {
        float price = 0.0;
        for (r = 0; r < numRuns; r++) {
            price = BlkSchlsEqEuroNoDiv(sptprice[i], strike[i], rate[i], volatility[i], otime[i], i % 2);
        }
        prices[i] = price;
    }
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "blackscholes",
		Suite:      "PARSEC",
		InputDesc:  "32768 options x 2 runs (paper: 10^7 options)",
		Source:     blackscholesSrc,
		Outputs:    []string{"prices"},
		Applicable: []string{"streaming"},
		Setup: func(p *interp.Program) error {
			r := seededRand("blackscholes", 1)
			n := blackscholesN
			// Fixed order: map iteration would randomize the rand stream.
			for _, in := range []struct {
				name   string
				lo, hi float64
			}{
				{"sptprice", 5, 120},
				{"strike", 10, 100},
				{"rate", 0.01, 0.1},
				{"volatility", 0.05, 0.65},
				{"otime", 0.1, 2.0},
			} {
				if err := setArray(p, in.name, uniform(r, n, in.lo, in.hi)); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

// ---- streamcluster (PARSEC) ------------------------------------------
//
// The Figure 6 shape: a long-running clustering loop whose body launches
// several small offloads per iteration (distance evaluation, gain
// computation, assignment update). Each offload moves little data and
// computes little, so the per-offload launch + transfer overhead dominates
// — the prime candidate for offload merging (Table II: 38.89x) with a
// small additional streaming win on the individual loops (1.34x).

const streamclusterN = 8192
const streamclusterIters = 200

const streamclusterSrc = `
float px[8192];
float py[8192];
float wts[8192];
float ids[8192];
float cost[8192];
float gain[8192];
float assignv[8192];
float cx;
float cy;
int n;
int iters;

int main(void) {
    int it;
    int i;
    n = 8192;
    iters = 200;
    cx = 0.5;
    cy = 0.25;
    for (it = 0; it < iters; it++) {
        #pragma offload target(mic:0) in(px, py, wts, ids : length(n)) out(cost : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            float dx = px[i] - cx;
            float dy = py[i] - cy;
            cost[i] = (dx * dx + dy * dy) * wts[0] + ids[0] * 0.0;
        }
        #pragma offload target(mic:0) in(cost, wts, ids : length(n)) out(gain : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            gain[i] = cost[i] * 0.5 + 1.0 + wts[0] * 0.0 + ids[0] * 0.0;
        }
        #pragma offload target(mic:0) in(gain, wts : length(n)) inout(assignv : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            if (gain[i] < assignv[i] + wts[0] * 0.0) {
                assignv[i] = gain[i];
            }
        }
        // Serial center update between the parallel phases.
        cx = cx + 0.001;
        cy = cy - 0.0005;
    }
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "streamcluster",
		Suite:      "PARSEC",
		InputDesc:  "8192 points x 200 rounds (paper: 163840 points)",
		Source:     streamclusterSrc,
		Outputs:    []string{"cost", "gain", "assignv"},
		Applicable: []string{"streaming", "merging"},
		Setup: func(p *interp.Program) error {
			r := seededRand("streamcluster", 1)
			if err := setArray(p, "px", uniform(r, streamclusterN, 0, 1)); err != nil {
				return err
			}
			if err := setArray(p, "py", uniform(r, streamclusterN, 0, 1)); err != nil {
				return err
			}
			if err := setArray(p, "wts", uniform(r, streamclusterN, 1, 1)); err != nil {
				return err
			}
			if err := setArray(p, "ids", uniform(r, streamclusterN, 0, 1)); err != nil {
				return err
			}
			return setArray(p, "assignv", uniform(r, streamclusterN, 10, 20))
		},
	})
}

// ---- dedup (PARSEC) ----------------------------------------------------
//
// The paper notes dedup "has data streaming implemented manually", so COMP
// brings no further speedup (Table II: '-'). The source below is already
// in the double-buffered, signal/wait pipelined form the streaming pass
// would generate; the compiler recognizes the sectioned clauses and
// declines. dedup's minimum thread count is 5 (§VI).

const dedupN = 65536
const dedupBlocks = 16

const dedupSrc = `
float chunks[65536];
float hashes[65536];
float *buf1;
float *buf2;
float *outb;
int sig0;
int sig1;
int n;

int main(void) {
    int i;
    int blk;
    n = 65536;
    int bs = n / 16;
    #pragma offload_transfer target(mic:0) nocopy(buf1 : length(bs) alloc_if(1) free_if(0)) nocopy(buf2 : length(bs) alloc_if(1) free_if(0)) nocopy(outb : length(bs) alloc_if(1) free_if(0))
    #pragma offload_transfer target(mic:0) in(chunks[0 : bs] : into(buf1) alloc_if(0) free_if(0)) signal(&sig0)
    for (blk = 0; blk < 16; blk++) {
        if (blk % 2 == 0) {
            if (blk + 1 < 16) {
                #pragma offload_transfer target(mic:0) in(chunks[(blk + 1) * bs : bs] : into(buf2) alloc_if(0) free_if(0)) signal(&sig1)
            }
            #pragma offload target(mic:0) out(outb[0 : bs] : into(hashes[blk * bs : bs]) alloc_if(0) free_if(0)) wait(&sig0)
            #pragma omp parallel for
            for (i = 0; i < bs; i++) {
                float h = buf1[i] * 2654435761.0;
                h = h - floor(h / 65536.0) * 65536.0;
                float roll = h;
                roll = roll * 31.0 + buf1[i];
                roll = roll - floor(roll / 8191.0) * 8191.0;
                float mix = exp(-roll * 0.0001) + log(h + 2.0) + pow(roll + 1.0, 0.25);
                outb[i] = roll + sqrt(h + 1.0) + mix * 0.001 + exp(-h * 0.00001);
            }
        } else {
            if (blk + 1 < 16) {
                #pragma offload_transfer target(mic:0) in(chunks[(blk + 1) * bs : bs] : into(buf1) alloc_if(0) free_if(0)) signal(&sig0)
            }
            #pragma offload target(mic:0) out(outb[0 : bs] : into(hashes[blk * bs : bs]) alloc_if(0) free_if(0)) wait(&sig1)
            #pragma omp parallel for
            for (i = 0; i < bs; i++) {
                float h = buf2[i] * 2654435761.0;
                h = h - floor(h / 65536.0) * 65536.0;
                float roll = h;
                roll = roll * 31.0 + buf2[i];
                roll = roll - floor(roll / 8191.0) * 8191.0;
                float mix = exp(-roll * 0.0001) + log(h + 2.0) + pow(roll + 1.0, 0.25);
                outb[i] = roll + sqrt(h + 1.0) + mix * 0.001 + exp(-h * 0.00001);
            }
        }
    }
    return 0;
}
`

// dedupCPUSrc is the plain OpenMP program the pipelined MIC port derives
// from; stripping pragmas from the pipelined source would leave device
// buffer references behind, so the baseline is kept explicitly.
const dedupCPUSrc = `
float chunks[65536];
float hashes[65536];
int n;

int main(void) {
    int i;
    n = 65536;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float h = chunks[i] * 2654435761.0;
        h = h - floor(h / 65536.0) * 65536.0;
        float roll = h;
        roll = roll * 31.0 + chunks[i];
        roll = roll - floor(roll / 8191.0) * 8191.0;
        float mix = exp(-roll * 0.0001) + log(h + 2.0) + pow(roll + 1.0, 0.25);
        hashes[i] = roll + sqrt(h + 1.0) + mix * 0.001 + exp(-h * 0.00001);
    }
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:        "dedup",
		Suite:       "PARSEC",
		InputDesc:   "65536 chunks, hand-pipelined (paper: 672 MB stream)",
		Source:      dedupSrc,
		CPUOverride: dedupCPUSrc,
		Outputs:     []string{"hashes"},
		Applicable:  nil, // manual streaming already present
		CPUThreads:  5,
		Setup: func(p *interp.Program) error {
			r := seededRand("dedup", 1)
			return setArray(p, "chunks", uniform(r, dedupN, 0, 4096))
		},
	})
}
