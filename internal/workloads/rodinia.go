package workloads

import (
	"comp/internal/interp"
)

// ---- cfd (Rodinia) -----------------------------------------------------
//
// An unstructured-mesh solver: every time step launches three small
// kernels (step factor, flux, time integration). The flux kernel gathers
// neighbour values through an index array, guarded by boundary checks, so
// neither streaming (indirect subscripts) nor reordering (guarded
// accesses) applies — but hoisting the whole time loop into one offload
// removes hundreds of launches and re-transfers (Table II: 27.19x).

const (
	cfdN     = 3072
	cfdIters = 200
)

const cfdSrc = `
float density[3072];
float momentum[3072];
float energy[3072];
float stepf[3072];
float flux[3072];
int nb[3072];
int n;
int iters;

int main(void) {
    int it;
    int i;
    n = 3072;
    iters = 200;
    for (it = 0; it < iters; it++) {
        #pragma offload target(mic:0) in(density, momentum : length(n)) out(stepf : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            stepf[i] = 0.5 / (sqrt(fabs(density[i]) + 1.0) + momentum[i] * momentum[i]);
        }
        #pragma offload target(mic:0) in(density, stepf : length(n)) in(nb : length(n)) out(flux : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            float f = density[i] * stepf[i];
            if (nb[i] >= 0) {
                f += density[nb[i]] * 0.25;
            }
            flux[i] = f;
        }
        #pragma offload target(mic:0) in(flux, stepf : length(n)) inout(density, momentum, energy : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            density[i] = density[i] + flux[i] * stepf[i];
            momentum[i] = momentum[i] * 0.9995;
            energy[i] = energy[i] + flux[i] * 0.125;
        }
    }
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "cfd",
		Suite:      "Rodinia",
		InputDesc:  "3072 cells x 200 steps x 3 kernels (paper: 2.0*10^8 points)",
		Source:     cfdSrc,
		Outputs:    []string{"density", "momentum", "energy"},
		Applicable: []string{"merging"},
		Setup: func(p *interp.Program) error {
			r := seededRand("cfd", 1)
			if err := setArray(p, "density", uniform(r, cfdN, 0.5, 2)); err != nil {
				return err
			}
			if err := setArray(p, "momentum", uniform(r, cfdN, -1, 1)); err != nil {
				return err
			}
			if err := setArray(p, "energy", uniform(r, cfdN, 1, 3)); err != nil {
				return err
			}
			nbs := permutedIndices(r, cfdN, cfdN)
			for i := range nbs {
				if i%7 == 0 {
					nbs[i] = -1 // boundary face
				}
			}
			return setArray(p, "nb", nbs)
		},
	})
}

// ---- nn (Rodinia) ------------------------------------------------------
//
// Nearest-neighbour search over flat records: each record holds 8 fields
// but the kernel reads only two (latitude, longitude) with stride 8 — the
// §IV strided pattern. Regularization packs the used fields into dense
// permutation arrays, cutting the transfer 4x (Table II: 1.23x whole-
// program); streaming the regularized loop overlaps what remains (1.24x).

const (
	nnN      = 32768
	nnStride = 8
)

const nnSrc = `
float recs[262144];
float dist[32768];
float tlat;
float tlng;
int n;

int main(void) {
    int i;
    n = 32768;
    tlat = 30.0;
    tlng = 50.0;
    // Host-side record parsing (serial).
    float seen = 0.0;
    for (i = 0; i < n; i++) {
        seen = seen + recs[8 * i] * 0.001;
        seen = seen - floor(seen);
    }
    #pragma offload target(mic:0) in(recs : length(8 * n)) out(dist : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float dlat = recs[8 * i] - tlat;
        float dlng = recs[8 * i + 1] - tlng;
        dist[i] = sqrt(dlat * dlat + dlng * dlng) + exp(-fabs(dlat) * 0.01);
    }
    printf("seen %f\n", seen);
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "nn",
		Suite:      "Rodinia",
		InputDesc:  "32768 records, 8 fields, 2 used (paper: 53 M data)",
		Source:     nnSrc,
		Outputs:    []string{"dist"},
		Applicable: []string{"streaming", "regularization"},
		Setup: func(p *interp.Program) error {
			r := seededRand("nn", 1)
			return setArray(p, "recs", uniform(r, nnN*nnStride, 0, 90))
		},
	})
}

// ---- srad (Rodinia) ----------------------------------------------------
//
// Speckle-reducing anisotropic diffusion (the Figure 7 example): each
// iteration gathers the four neighbours of a cell through index arrays,
// then runs a heavy regular update. Loop splitting peels the gathers into
// their own loop and vectorizes the remainder (Table II: 1.25x); there is
// no streaming because the gathers stay irregular.

const sradN = 24576

const sradSrc = `
float J[25000];
int iN[24576];
int iS[24576];
int jW[24576];
int jE[24576];
float dN[24576];
float dS[24576];
float dW[24576];
float dE[24576];
float c[24576];
int n;

int main(void) {
    int i;
    n = 24576;
    #pragma offload target(mic:0) in(J : length(25000)) in(iN, iS, jW, jE : length(n)) out(dN, dS, dW, dE, c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float jc = J[i];
        float jn = J[iN[i]];
        float js = J[iS[i]];
        float jw = J[jW[i]];
        float je = J[jE[i]];
        dN[i] = jn - jc;
        dS[i] = js - jc;
        dW[i] = jw - jc;
        dE[i] = je - jc;
        float g2 = (dN[i] * dN[i] + dS[i] * dS[i] + dW[i] * dW[i] + dE[i] * dE[i]) / (jc * jc + 0.001);
        float l = (dN[i] + dS[i] + dW[i] + dE[i]) / (jc + 0.001);
        float num = 0.5 * g2 - 0.0625 * l * l;
        float den = 1.0 + 0.25 * l;
        float qsqr = num / (den * den + 0.001);
        den = (qsqr - 0.25) / (0.25 * (1.0 + 0.25) + 0.001);
        c[i] = 1.0 / (1.0 + den) + exp(-qsqr) * 0.001 + sqrt(fabs(den) + 0.001) * 0.01 + log(fabs(qsqr) + 1.0) * 0.001 + sqrt(g2 + 1.0) * 0.0001 + exp(-l * l) * 0.0001 + exp(-g2 * 0.5) * 0.0001 + sqrt(fabs(l) + 1.0) * 0.0001;
    }
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "srad",
		Suite:      "Rodinia",
		InputDesc:  "24576 cells with 4-neighbour gathers (paper: 32 M points)",
		Source:     sradSrc,
		Outputs:    []string{"dN", "dS", "dW", "dE", "c"},
		Applicable: []string{"regularization"},
		Setup: func(p *interp.Program) error {
			r := seededRand("srad", 1)
			if err := setArray(p, "J", uniform(r, 25000, 0.2, 2)); err != nil {
				return err
			}
			for _, name := range []string{"iN", "iS", "jW", "jE"} {
				if err := setArray(p, name, permutedIndices(r, sradN, 25000)); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

// ---- bfs (Rodinia) -----------------------------------------------------
//
// Level-synchronous BFS over a CSR graph: one offload per level, guarded
// gathers through the edge array, and a serial frontier update on the
// host between levels. No optimization applies — the row-pointer access
// rs[i+1] is a halo offset (streaming declines), the gathers are guarded
// (reordering declines), and there is only one offload per level (merging
// declines) — reproducing the paper's "bfs does not benefit" row.

const (
	bfsN      = 16384
	bfsDegree = 6
	bfsLevels = 10
)

const bfsSrc = `
int rs[16385];
int col[98304];
float dist[16384];
float front[16384];
float next[16384];
int n;
int levels;

int main(void) {
    int lvl;
    int i;
    int e;
    n = 16384;
    levels = 10;
    for (lvl = 0; lvl < levels; lvl++) {
        #pragma offload target(mic:0) in(rs : length(n + 1)) in(col : length(98304)) in(front, dist : length(n)) out(next : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            float nd = 0.0;
            if (front[i] > 0.0) {
                for (e = rs[i]; e < rs[i + 1]; e++) {
                    float dn = dist[col[e]];
                    if (dn > dist[i] + 1.0) {
                        nd = nd + 1.0;
                    }
                }
            }
            next[i] = nd;
        }
        // Serial frontier compaction on the host.
        for (i = 0; i < n; i++) {
            if (next[i] > 0.0) {
                front[i] = 1.0;
                dist[i] = dist[i] + exp(-next[i] * 0.125);
            } else {
                front[i] = front[i] * 0.5;
            }
        }
    }
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "bfs",
		Suite:      "Rodinia",
		InputDesc:  "16384 nodes, degree 6, 10 levels (paper: 1M nodes)",
		Source:     bfsSrc,
		Outputs:    []string{"dist", "front", "next"},
		Applicable: nil,
		Setup: func(p *interp.Program) error {
			r := seededRand("bfs", 1)
			rsv := make([]float64, bfsN+1)
			for i := 1; i <= bfsN; i++ {
				rsv[i] = rsv[i-1] + float64(bfsDegree)
			}
			if err := setArray(p, "rs", rsv); err != nil {
				return err
			}
			if err := setArray(p, "col", permutedIndices(r, bfsN*bfsDegree, bfsN)); err != nil {
				return err
			}
			if err := setArray(p, "dist", uniform(r, bfsN, 0, 8)); err != nil {
				return err
			}
			front := make([]float64, bfsN)
			for i := range front {
				if r.Intn(4) == 0 {
					front[i] = 1
				}
			}
			return setArray(p, "front", front)
		},
	})
}

// ---- hotspot (Rodinia) -------------------------------------------------
//
// Thermal stencil: the whole time loop is offloaded once (the natural MIC
// port), with ping-pong grids updated by vectorizable inner loops. The
// stencil's i-1/i+1 halo accesses fail the streaming legality check, the
// single offload leaves merging nothing to do, and the accesses are
// regular — so no optimization applies, but the naive port is already
// faster than the CPU (one of the four Figure 1 winners).

const (
	hotspotN     = 32768
	hotspotSteps = 50
)

const hotspotSrc = `
float temp[32768];
float temp2[32768];
float power[32768];
int n;
int steps;

int main(void) {
    int s;
    int i;
    n = 32768;
    steps = 50;
    // Host-side floorplan parsing (serial).
    float acc = 0.0;
    for (i = 0; i < n; i++) {
        acc = acc + power[i] * 0.01 + exp(-power[i]) + log(power[i] + 1.5) + pow(power[i] + 0.5, 0.3);
        acc = acc - floor(acc) + sqrt(acc + 2.0) * 0.001;
    }
    #pragma offload target(mic:0) inout(temp, temp2 : length(n)) in(power : length(n))
    for (s = 0; s < steps; s++) {
        #pragma omp parallel for
        for (i = 1; i < n - 1; i++) {
            temp2[i] = temp[i] + 0.1 * (temp[i - 1] + temp[i + 1] - 2.0 * temp[i]) + 0.05 * power[i];
        }
        #pragma omp parallel for
        for (i = 1; i < n - 1; i++) {
            temp[i] = temp2[i] + 0.1 * (temp2[i - 1] + temp2[i + 1] - 2.0 * temp2[i]) + 0.05 * power[i];
        }
    }
    printf("acc %f\n", acc);
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "hotspot",
		Suite:      "Rodinia",
		InputDesc:  "32768 cells x 50 steps (paper: 1024x1024 grid)",
		Source:     hotspotSrc,
		Outputs:    []string{"temp", "temp2"},
		Applicable: nil,
		Setup: func(p *interp.Program) error {
			r := seededRand("hotspot", 1)
			if err := setArray(p, "temp", uniform(r, hotspotN, 300, 340)); err != nil {
				return err
			}
			return setArray(p, "power", uniform(r, hotspotN, 0, 1))
		},
	})
}
