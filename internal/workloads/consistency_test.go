package workloads

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"comp/internal/core"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
)

// The Stats↔Trace consistency suite: every aggregate the runtime reports
// must be re-derivable from the span stream, and disabling the trace must
// not change anything except the span stream itself. Together the two
// directions prove the timeline honest — the trace shows neither more nor
// less work than the run actually did, and observing the run does not
// perturb it.

// spanBytes reads the "bytes" arg every DMA span carries.
func spanBytes(t *testing.T, sp engine.Span) int64 {
	t.Helper()
	v, ok := sp.Args["bytes"].(int64)
	if !ok {
		t.Fatalf("span %s/%s has no int64 bytes arg: %v", sp.Resource, sp.Label, sp.Args)
	}
	return v
}

// checkStatsTrace asserts each Stats aggregate against its span-level
// oracle. Exact equality throughout: the engine is deterministic and both
// sides count the same simulated nanoseconds.
func checkStatsTrace(t *testing.T, st runtime.Stats, tr *engine.Trace) {
	t.Helper()
	if tr == nil {
		t.Fatal("no trace recorded")
	}

	// Overlap: the online busy-counter meter vs pairwise span overlap.
	// Equal because all three resources are single-server.
	wantOverlap := tr.Overlap("pcie-h2d", "mic-compute") + tr.Overlap("pcie-d2h", "mic-compute")
	if st.Overlap != wantOverlap {
		t.Errorf("Stats.Overlap = %v, trace overlap = %v", st.Overlap, wantOverlap)
	}

	// Busy times: resource counters vs summed span lengths. Fault spans
	// occupy their channel, so they count on both sides.
	if want := tr.BusyTime("pcie-h2d") + tr.BusyTime("pcie-d2h"); st.TransferBusy != want {
		t.Errorf("Stats.TransferBusy = %v, trace busy = %v", st.TransferBusy, want)
	}
	if want := tr.BusyTime("mic-compute"); st.DeviceBusy != want {
		t.Errorf("Stats.DeviceBusy = %v, trace busy = %v", st.DeviceBusy, want)
	}
	if want := tr.BusyTime("cpu"); st.HostBusy != want {
		t.Errorf("Stats.HostBusy = %v, trace busy = %v", st.HostBusy, want)
	}

	// Kernel launches: exactly the spans carrying the launch marker
	// (per-launch kernels, persistent-kernel startups, and hangs — which
	// pay the launch; failed launches do not).
	var launches int64
	for _, sp := range tr.ByResource("mic-compute") {
		if v, ok := sp.Args["launch"].(bool); ok && v {
			launches++
		}
	}
	if st.KernelLaunches != launches {
		t.Errorf("Stats.KernelLaunches = %d, launch-marked spans = %d", st.KernelLaunches, launches)
	}

	// DMA counts and payloads: successful transfers only (fault attempts
	// are CatFault and move no data).
	var nDMA, bytesIn, bytesOut int64
	for _, sp := range tr.Spans() {
		switch sp.Cat {
		case engine.CatDMAIn:
			nDMA++
			bytesIn += spanBytes(t, sp)
		case engine.CatDMAOut:
			nDMA++
			bytesOut += spanBytes(t, sp)
		}
	}
	if st.Transfers != nDMA {
		t.Errorf("Stats.Transfers = %d, DMA spans = %d", st.Transfers, nDMA)
	}
	if st.BytesIn != bytesIn || st.BytesOut != bytesOut {
		t.Errorf("Stats bytes in/out = %d/%d, trace = %d/%d", st.BytesIn, st.BytesOut, bytesIn, bytesOut)
	}

	// Makespan covers every span.
	for _, sp := range tr.Spans() {
		if engine.Duration(sp.End) > st.Time {
			t.Errorf("span %s/%s ends at %v, after the makespan %v", sp.Resource, sp.Label, sp.End, st.Time)
			break
		}
	}
}

// TestStatsTraceConsistencyAllWorkloads checks the oracle on every member
// of the 12-benchmark suite, naive and fully optimized.
func TestStatsTraceConsistencyAllWorkloads(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.SharedMem {
				checkSharedConsistency(t, b)
				return
			}
			variants := []struct {
				name string
				ro   RunOptions
			}{
				{"naive", RunOptions{Variant: MICNaive}},
				{"optimized", RunOptions{Variant: MICOptimized, Opt: core.DefaultOptions()}},
			}
			for _, v := range variants {
				res, err := b.Run(v.ro)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if len(res.Trace.Spans()) == 0 {
					t.Fatalf("%s: empty trace", v.name)
				}
				checkStatsTrace(t, res.Stats, res.Trace)
			}
		})
	}
}

// checkSharedConsistency is the span-level oracle for the two §V
// benchmarks, which report SharedResult counters instead of Stats.
func checkSharedConsistency(t *testing.T, b *Benchmark) {
	scale := b.Shared.MYOScale // a scale every mechanism can run at
	for _, mech := range []Mechanism{MechMYO, MechCOMP} {
		res, err := RunSharedTraced(b, mech, scale, true)
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		tr := res.Trace
		if tr == nil || len(tr.Spans()) == 0 {
			t.Fatalf("%v: empty trace", mech)
		}
		var nDMA, total int64
		for _, sp := range tr.Spans() {
			switch sp.Cat {
			case engine.CatDMAIn, engine.CatDMAOut:
				nDMA++
				total += spanBytes(t, sp)
			}
		}
		if res.Transfers != nDMA {
			t.Errorf("%v: Transfers = %d, DMA spans = %d", mech, res.Transfers, nDMA)
		}
		if res.Bytes != total {
			t.Errorf("%v: Bytes = %d, trace payload = %d", mech, res.Bytes, total)
		}
	}
}

// TestStatsTraceConsistencyUnderFaults reruns the oracle under an
// aggressive fault schedule: retries, hangs, watchdog aborts and fallbacks
// must keep the books balanced, and the recovery machinery must show up in
// the trace.
func TestStatsTraceConsistencyUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault consistency skipped in -short mode")
	}
	for _, name := range []string{"blackscholes", "srad", "dedup"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			cfg := runtime.DefaultConfig()
			cfg.Faults = chaosConfig(11)
			res, err := b.Run(RunOptions{Variant: MICNaive, Config: &cfg})
			if err != nil {
				t.Fatal(err)
			}
			st, tr := res.Stats, res.Trace
			checkStatsTrace(t, st, tr)
			if st.FaultsInjected < 1 {
				t.Fatal("schedule injected nothing; the test is vacuous")
			}
			var injectInstants int64
			for _, sp := range tr.ByResource("fault") {
				if sp.Instant {
					injectInstants++
				}
			}
			if injectInstants != st.FaultsInjected {
				t.Errorf("Stats.FaultsInjected = %d, injector instants = %d", st.FaultsInjected, injectInstants)
			}
			if st.Retries > 0 && len(tr.ByCategory(engine.CatRetry)) == 0 {
				t.Errorf("%d retries happened but none reached the trace", st.Retries)
			}
			if len(st.Fallbacks) > 0 && len(tr.ByCategory(engine.CatFallback)) == 0 {
				t.Errorf("degradation steps %v happened but none reached the trace", st.Fallbacks)
			}
		})
	}
}

// TestDisableTraceDoesNotChangeResults is the observer-effect half of the
// contract: with recording off, Stats, program outputs and (for the shared
// benchmarks) every counter are bit-identical.
func TestDisableTraceDoesNotChangeResults(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.SharedMem {
				on, err := RunSharedTraced(b, MechCOMP, 1.0, true)
				if err != nil {
					t.Fatal(err)
				}
				off, err := RunSharedTraced(b, MechCOMP, 1.0, false)
				if err != nil {
					t.Fatal(err)
				}
				if off.Trace != nil {
					t.Error("disabled run still returned a trace")
				}
				on.Trace = nil
				if !reflect.DeepEqual(on, off) {
					t.Errorf("tracing changed the shared result:\n on: %+v\noff: %+v", on, off)
				}
				return
			}
			traced, err := b.Run(RunOptions{Variant: MICNaive})
			if err != nil {
				t.Fatal(err)
			}
			cfg := runtime.DefaultConfig()
			cfg.DisableTrace = true
			silent, err := b.Run(RunOptions{Variant: MICNaive, Config: &cfg})
			if err != nil {
				t.Fatal(err)
			}
			if n := len(silent.Trace.Spans()); n != 0 {
				t.Errorf("DisableTrace still recorded %d spans", n)
			}
			if !reflect.DeepEqual(traced.Stats, silent.Stats) {
				t.Errorf("tracing changed Stats:\n on: %+v\noff: %+v", traced.Stats, silent.Stats)
			}
			if err := b.CompareOutputs(traced, silent); err != nil {
				t.Errorf("tracing changed outputs: %v", err)
			}
			if a, c := traced.Program.Output(), silent.Program.Output(); a != c {
				t.Errorf("tracing changed printed output: %q vs %q", a, c)
			}
		})
	}
}

// TestChromeExportRealWorkload is the acceptance check on a real run: the
// exported trace is valid Chrome trace_event JSON with the run's spans in
// it, not just a well-formed empty shell.
func TestChromeExportRealWorkload(t *testing.T) {
	b, err := Get("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(RunOptions{Variant: MICOptimized, Opt: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.ChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var kernels, dmas, threads int
	for _, ev := range file.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "thread_name":
			threads++
		case ev.Cat == "kernel" && ev.Phase == "X":
			kernels++
		case (ev.Cat == "dma-in" || ev.Cat == "dma-out") && ev.Phase == "X":
			dmas++
		}
	}
	if threads == 0 || kernels == 0 || dmas == 0 {
		t.Errorf("export missing structure: %d threads, %d kernels, %d dmas", threads, kernels, dmas)
	}
	if int64(kernels) != res.Stats.KernelLaunches+countPersistentBlocks(res.Trace) {
		t.Logf("note: %d kernel events vs %d launches (persistent blocks add spans)", kernels, res.Stats.KernelLaunches)
	}
}

// countPersistentBlocks counts non-launch kernel spans (persistent-kernel
// block executions).
func countPersistentBlocks(tr *engine.Trace) int64 {
	var n int64
	for _, sp := range tr.ByCategory(engine.CatKernel) {
		if v, ok := sp.Args["launch"].(bool); !ok || !v {
			n++
		}
	}
	return n
}
