package workloads

import (
	"comp/internal/interp"
)

// ---- kmeans (Phoenix) --------------------------------------------------
//
// One offloaded assignment loop: every point computes its distance to
// every centroid. Coordinates are stored SoA (one array per dimension, as
// the MIC ports of kmeans do) so point data streams with unit stride; the
// centroid table is loop-invariant and stays resident. Compute per point
// roughly matches transfer per point, giving the strongest streaming win
// in Table II (1.95x) — the pipeline hides nearly all of the transfer.

const (
	kmeansN = 12288
	kmeansK = 16
)

const kmeansSrc = `
float p0[12288];
float p1[12288];
float p2[12288];
float p3[12288];
float p4[12288];
float p5[12288];
float p6[12288];
float p7[12288];
float c0[16];
float c1[16];
float c2[16];
float c3[16];
float c4[16];
float c5[16];
float c6[16];
float c7[16];
float membership[12288];
float mindist[12288];
int n;
int k;

int main(void) {
    int i;
    int j;
    n = 12288;
    k = 16;
    #pragma offload target(mic:0) in(p0, p1, p2, p3, p4, p5, p6, p7 : length(n)) in(c0, c1, c2, c3, c4, c5, c6, c7 : length(k)) out(membership, mindist : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float best = 1000000000.0;
        int bestj = 0;
        for (j = 0; j < k; j++) {
            float d0 = p0[i] - c0[j];
            float d1 = p1[i] - c1[j];
            float d2 = p2[i] - c2[j];
            float d3 = p3[i] - c3[j];
            float d4 = p4[i] - c4[j];
            float d5 = p5[i] - c5[j];
            float d6 = p6[i] - c6[j];
            float d7 = p7[i] - c7[j];
            float dist = sqrt(d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3 + d4 * d4 + d5 * d5 + d6 * d6 + d7 * d7);
            if (dist < best) {
                best = dist;
                bestj = j;
            }
        }
        membership[i] = bestj;
        mindist[i] = best;
    }
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "kmeans",
		Suite:      "Phoenix",
		InputDesc:  "12288 points, 16 clusters, dim 8 (paper: 100 clusters, 10^5 points)",
		Source:     kmeansSrc,
		Outputs:    []string{"membership", "mindist"},
		Applicable: []string{"streaming"},
		Setup: func(p *interp.Program) error {
			r := seededRand("kmeans", 1)
			for _, name := range []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"} {
				if err := setArray(p, name, uniform(r, kmeansN, -10, 10)); err != nil {
					return err
				}
			}
			for _, name := range []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"} {
				if err := setArray(p, name, uniform(r, kmeansK, -10, 10)); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

// ---- CG (NAS) ----------------------------------------------------------
//
// Conjugate-gradient iterations: each iteration offloads a matrix-vector
// product over four stored diagonals plus a vector update. Two offloads
// per iteration across 40 iterations re-transfer the operands every time;
// merging hoists the whole solve into one offload (Table II: 18.53x), and
// streaming improves the individual offloads by a modest 1.28x
// (Figure 12).

const (
	cgN     = 16384
	cgIters = 80
)

const cgSrc = `
float ad0[16384];
float ad1[16384];
float ad2[16384];
float ad3[16384];
float x[16384];
float q[16384];
float z[16384];
int n;
int iters;

int main(void) {
    int it;
    int i;
    n = 16384;
    iters = 80;
    for (it = 0; it < iters; it++) {
        // q = A x with A stored as four diagonals (structured sparse, so
        // every access stays affine and CG keeps its regular profile).
        #pragma offload target(mic:0) in(ad0, ad1, ad2, ad3 : length(n)) in(x : length(n)) out(q : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            q[i] = ad0[i] * x[i] + ad1[i] * x[i] * 0.5 + ad2[i] * x[i] * 0.25 + ad3[i] * x[i] * 0.125;
        }
        // z += alpha q ; damped update of x.
        #pragma offload target(mic:0) in(q : length(n)) inout(z, x : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            z[i] = z[i] + 0.3 * q[i];
            x[i] = x[i] * 0.999 + z[i] * 0.001;
        }
    }
    return 0;
}
`

func init() {
	register(&Benchmark{
		Name:       "cg",
		Suite:      "NAS",
		InputDesc:  "n=16384, 4 diagonals, 80 iterations (paper: 75K array)",
		Source:     cgSrc,
		Outputs:    []string{"x", "z", "q"},
		Applicable: []string{"streaming", "merging"},
		Setup: func(p *interp.Program) error {
			r := seededRand("cg", 1)
			for _, name := range []string{"ad0", "ad1", "ad2", "ad3"} {
				if err := setArray(p, name, uniform(r, cgN, -1, 1)); err != nil {
					return err
				}
			}
			if err := setArray(p, "x", uniform(r, cgN, -1, 1)); err != nil {
				return err
			}
			return setArray(p, "z", uniform(r, cgN, 0, 0.1))
		},
	})
}
