// Package myo models Intel's MYO virtual shared memory, the baseline the
// paper's §V mechanism replaces.
//
// MYO keeps shared data coherent with a page-fault-style protocol: when a
// shared page is first touched on the coprocessor, the access faults, the
// runtime handles the fault, and the page is copied over PCIe — one small
// DMA per page, paying the setup latency every time. The paper identifies
// three costs this package reproduces: page granularity is too small for
// large structures, DMA is underutilized, and fault handling itself is
// expensive. MYO also caps the number of shared allocations and the total
// shared size; ferret exceeds the allocation cap and "cannot run
// correctly using Intel MYO".
package myo

import (
	"errors"
	"fmt"

	"comp/internal/sim/engine"
	"comp/internal/sim/pcie"
)

// Config holds MYO's parameters.
type Config struct {
	// PageBytes is the coherence granularity.
	PageBytes int64
	// FaultCost is the handling overhead per device page fault, on top of
	// the page's DMA time.
	FaultCost engine.Duration
	// MaxAllocations caps Offload_shared_malloc calls.
	MaxAllocations int64
	// MaxTotalBytes caps the shared arena size.
	MaxTotalBytes int64
}

// DefaultConfig mirrors the runtime the paper measured: 4 KiB pages, a
// fault cost scaled with the platform's other fixed costs, and the
// allocation/size caps that ferret overflows.
func DefaultConfig() Config {
	return Config{
		PageBytes:      4096,
		FaultCost:      43 * engine.Microsecond,
		MaxAllocations: 65536,
		MaxTotalBytes:  512 << 20,
	}
}

// Errors mirroring MYO's failure modes.
var (
	ErrTooManyAllocations = errors.New("myo: shared allocation limit exceeded")
	ErrArenaFull          = errors.New("myo: shared memory arena exhausted")
)

// Heap is the MYO shared arena.
type Heap struct {
	cfg    Config
	used   int64
	allocs int64
	// resident marks pages already copied to the device.
	resident map[int64]bool
	faults   int64
}

// NewHeap creates an empty arena.
func NewHeap(cfg Config) *Heap {
	if cfg.PageBytes <= 0 {
		panic("myo: page size must be positive")
	}
	return &Heap{cfg: cfg, resident: map[int64]bool{}}
}

// Malloc performs Offload_shared_malloc with MYO's limits.
func (h *Heap) Malloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("myo: invalid allocation size %d", size)
	}
	if h.allocs+1 > h.cfg.MaxAllocations {
		return 0, fmt.Errorf("%w (%d)", ErrTooManyAllocations, h.cfg.MaxAllocations)
	}
	if h.used+size > h.cfg.MaxTotalBytes {
		return 0, fmt.Errorf("%w (%d bytes)", ErrArenaFull, h.cfg.MaxTotalBytes)
	}
	base := h.used
	h.used += size
	h.allocs++
	return base, nil
}

// AllocCount returns the number of shared allocations.
func (h *Heap) AllocCount() int64 { return h.allocs }

// Used returns bytes allocated in the arena.
func (h *Heap) Used() int64 { return h.used }

// Faults returns the device page faults taken so far.
func (h *Heap) Faults() int64 { return h.faults }

// PageOf returns the page index of an arena offset.
func (h *Heap) PageOf(addr int64) int64 { return addr / h.cfg.PageBytes }

// TouchOnDevice models the device accessing [addr, addr+size): every
// non-resident page faults, is handled, and is copied host-to-device as
// its own DMA on the bus. The returned event fires when the last fault
// completes (the kernel stalls for each fault in turn). If the range is
// fully resident the returned event is already fired.
func (h *Heap) TouchOnDevice(sim *engine.Sim, bus *pcie.Bus, after *engine.Event, addr, size int64) *engine.Event {
	if after == nil {
		after = sim.FiredEvent()
	}
	last := after
	first := h.PageOf(addr)
	lastPage := h.PageOf(addr + size - 1)
	for pg := first; pg <= lastPage; pg++ {
		if h.resident[pg] {
			continue
		}
		h.resident[pg] = true
		h.faults++
		// Fault handling stalls, then the page moves as one small DMA.
		faultDone := sim.NewEvent("myo-fault")
		prev := last
		prev.OnFire(func(engine.Time) {
			sim.After(h.cfg.FaultCost, faultDone.Fire)
		})
		last = bus.TransferAfter(faultDone, pcie.HostToDevice, "myo-page", h.cfg.PageBytes)
	}
	return last
}

// InvalidateDevice drops residency, as MYO does at offload boundaries when
// the host writes shared data (the data must fault over again next time).
func (h *Heap) InvalidateDevice() {
	h.resident = map[int64]bool{}
}

// ResidentPages returns the number of pages currently on the device.
func (h *Heap) ResidentPages() int { return len(h.resident) }
