package myo

import (
	"errors"
	"testing"

	"comp/internal/sim/engine"
	"comp/internal/sim/pcie"
)

func testCfg() Config {
	return Config{
		PageBytes:      4096,
		FaultCost:      3 * engine.Microsecond,
		MaxAllocations: 100,
		MaxTotalBytes:  1 << 20,
	}
}

func TestMallocAccounting(t *testing.T) {
	h := NewHeap(testCfg())
	a, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Malloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 100 {
		t.Fatalf("bases = %d,%d, want 0,100", a, b)
	}
	if h.AllocCount() != 2 || h.Used() != 300 {
		t.Fatalf("allocs=%d used=%d", h.AllocCount(), h.Used())
	}
}

func TestAllocationLimit(t *testing.T) {
	cfg := testCfg()
	cfg.MaxAllocations = 3
	h := NewHeap(cfg)
	for i := 0; i < 3; i++ {
		if _, err := h.Malloc(16); err != nil {
			t.Fatal(err)
		}
	}
	_, err := h.Malloc(16)
	if !errors.Is(err, ErrTooManyAllocations) {
		t.Fatalf("err = %v, want allocation limit (the ferret failure mode)", err)
	}
}

func TestArenaSizeLimit(t *testing.T) {
	cfg := testCfg()
	cfg.MaxTotalBytes = 1000
	h := NewHeap(cfg)
	if _, err := h.Malloc(600); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Malloc(600); !errors.Is(err, ErrArenaFull) {
		t.Fatalf("err = %v, want arena full", err)
	}
}

func TestInvalidSizes(t *testing.T) {
	h := NewHeap(testCfg())
	if _, err := h.Malloc(0); err == nil {
		t.Error("zero malloc accepted")
	}
	if _, err := h.Malloc(-1); err == nil {
		t.Error("negative malloc accepted")
	}
}

func TestTouchFaultsOncePerPage(t *testing.T) {
	sim := engine.New()
	bus := pcie.New(sim, pcie.Default())
	h := NewHeap(testCfg())
	base, _ := h.Malloc(3 * 4096)

	done := h.TouchOnDevice(sim, bus, nil, base, 3*4096)
	sim.Run()
	if !done.Fired() {
		t.Fatal("touch did not complete")
	}
	if h.Faults() != 3 {
		t.Fatalf("faults = %d, want 3", h.Faults())
	}
	if h.ResidentPages() != 3 {
		t.Fatalf("resident = %d, want 3", h.ResidentPages())
	}
	// Touching again is free: already resident.
	before := sim.Now()
	done2 := h.TouchOnDevice(sim, bus, nil, base, 3*4096)
	sim.Run()
	if h.Faults() != 3 {
		t.Fatalf("re-touch faulted: %d", h.Faults())
	}
	if done2.Time() > before {
		t.Fatalf("re-touch took time: %v", done2.Time())
	}
}

func TestTouchSerializesFaults(t *testing.T) {
	sim := engine.New()
	bus := pcie.New(sim, pcie.Default())
	cfg := testCfg()
	h := NewHeap(cfg)
	const pages = 10
	base, _ := h.Malloc(pages * 4096)
	done := h.TouchOnDevice(sim, bus, nil, base, pages*4096)
	sim.Run()
	perPage := cfg.FaultCost + bus.TransferTime(cfg.PageBytes)
	want := engine.Time(pages * int64(perPage))
	if done.Time() != want {
		t.Fatalf("touch completed at %v, want %v (strictly serialized faults)", done.Time(), want)
	}
}

func TestTouchPartialPageSpan(t *testing.T) {
	sim := engine.New()
	bus := pcie.New(sim, pcie.Default())
	h := NewHeap(testCfg())
	base, _ := h.Malloc(10000)
	// A 100-byte object straddling a page boundary touches two pages.
	h.TouchOnDevice(sim, bus, nil, base+4000, 200)
	sim.Run()
	if h.Faults() != 2 {
		t.Fatalf("faults = %d, want 2 (straddling object)", h.Faults())
	}
}

func TestInvalidateForcesRefault(t *testing.T) {
	sim := engine.New()
	bus := pcie.New(sim, pcie.Default())
	h := NewHeap(testCfg())
	base, _ := h.Malloc(4096)
	h.TouchOnDevice(sim, bus, nil, base, 4096)
	sim.Run()
	h.InvalidateDevice()
	if h.ResidentPages() != 0 {
		t.Fatal("invalidate left pages resident")
	}
	h.TouchOnDevice(sim, bus, nil, base, 4096)
	sim.Run()
	if h.Faults() != 2 {
		t.Fatalf("faults = %d, want 2 after invalidate", h.Faults())
	}
}

func TestMYOSlowerThanBulkCopy(t *testing.T) {
	// The §V headline: page-fault transfer of a large structure is far
	// slower than one bulk DMA of the same bytes.
	const total = 8 << 20 // 8 MiB
	cfg := DefaultConfig()

	simA := engine.New()
	busA := pcie.New(simA, pcie.Default())
	h := NewHeap(cfg)
	base, err := h.Malloc(total)
	if err != nil {
		t.Fatal(err)
	}
	done := h.TouchOnDevice(simA, busA, nil, base, total)
	simA.Run()
	myoTime := done.Time()

	simB := engine.New()
	busB := pcie.New(simB, pcie.Default())
	bulk := busB.Transfer(pcie.HostToDevice, "bulk", total)
	simB.Run()
	bulkTime := bulk.Time()

	ratio := float64(myoTime) / float64(bulkTime)
	if ratio < 3 {
		t.Fatalf("MYO/bulk ratio %.2f, want >= 3 (paper: 7.81x for ferret)", ratio)
	}
	t.Logf("MYO %v vs bulk %v (%.1fx)", myoTime, bulkTime, ratio)
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero page size accepted")
		}
	}()
	NewHeap(Config{})
}
