package machine

// CalibrateVectorEff derives a Config.VectorEff value from a measured
// vector-over-scalar speedup ratio. A machine with L lanes at efficiency
// e runs vectorizable loops e*L times faster than scalar code, so the
// observed ratio S maps back to e = S/L, clamped to (0, 1]: a ratio at
// or below 1 means vectorization bought nothing (floor at a nominal 1%
// so the factor stays usable as a multiplier), and a ratio above L*1.0
// cannot be explained by lanes alone and saturates at perfect efficiency.
func CalibrateVectorEff(measured float64, lanes int) float64 {
	if lanes <= 0 {
		return 0.01
	}
	eff := measured / float64(lanes)
	if !(eff > 0.01) { // also catches NaN
		return 0.01
	}
	if eff > 1 {
		return 1
	}
	return eff
}

// WithMeasuredVectorRatio returns a copy of the config with VectorEff
// recalibrated from a measured vector-over-scalar speedup on this
// machine's lane count.
func (c Config) WithMeasuredVectorRatio(measured float64) Config {
	c.VectorEff = CalibrateVectorEff(measured, c.VectorLanes)
	return c
}
