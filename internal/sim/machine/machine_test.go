package machine

import (
	"testing"
	"testing/quick"

	"comp/internal/sim/engine"
)

func TestDefaultConfigsValid(t *testing.T) {
	for _, c := range []Config{XeonE5(), XeonPhi()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	base := XeonE5()
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.ThreadsPerCore = 0 },
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.IPCPerCore = 0 },
		func(c *Config) { c.SingleThreadIPC = -1 },
		func(c *Config) { c.VectorLanes = 0 },
		func(c *Config) { c.VectorEff = 0 },
		func(c *Config) { c.VectorEff = 1.5 },
		func(c *Config) { c.MemBandwidthGBs = 0 },
		func(c *Config) { c.CacheLineBytes = 0 },
		func(c *Config) { c.RandomAccessBytes = 128 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config passed Validate", i)
		}
	}
}

func TestMaxThreads(t *testing.T) {
	if got := XeonPhi().MaxThreads(); got != 240 {
		t.Errorf("Phi MaxThreads = %d, want 240", got)
	}
	if got := XeonE5().MaxThreads(); got != 8 {
		t.Errorf("E5 MaxThreads = %d, want 8", got)
	}
}

func TestMICSingleThreadSlowerThanCPU(t *testing.T) {
	// §II-B: "the performance of a single MIC thread is much worse than a
	// single CPU thread". The model must preserve this.
	cpu, mic := XeonE5(), XeonPhi()
	flops := 1e9
	if cpu.SerialTime(flops) >= mic.SerialTime(flops) {
		t.Fatalf("CPU serial %v should beat MIC serial %v",
			cpu.SerialTime(flops), mic.SerialTime(flops))
	}
	ratio := float64(mic.SerialTime(flops)) / float64(cpu.SerialTime(flops))
	if ratio < 5 {
		t.Errorf("MIC/CPU serial ratio %.1f, want >= 5 (in-order 1.05 GHz vs OoO 2.2 GHz)", ratio)
	}
}

func TestMICParallelFasterThanCPUWhenVectorizable(t *testing.T) {
	// The point of offloading: a fully parallel, vectorizable loop should
	// be faster on 200 MIC threads than on 4 CPU threads.
	cpu, mic := XeonE5(), XeonPhi()
	p := Profile{FlopsPerIter: 200, BytesPerIter: 8, Vectorizable: true}
	ct := cpu.LoopTime(p, 1<<22, DefaultCPUThreads)
	mt := mic.LoopTime(p, 1<<22, DefaultMICThreads)
	if mt >= ct {
		t.Fatalf("MIC parallel %v should beat CPU parallel %v", mt, ct)
	}
}

func TestIrregularDisablesVectorSpeedup(t *testing.T) {
	mic := XeonPhi()
	reg := Profile{FlopsPerIter: 50, BytesPerIter: 16, Vectorizable: true}
	irr := reg
	irr.Vectorizable = false
	irr.Irregular = true
	irr.IrregularFrac = 1
	tr := mic.LoopTime(reg, 1<<20, DefaultMICThreads)
	ti := mic.LoopTime(irr, 1<<20, DefaultMICThreads)
	if ti <= tr {
		t.Fatalf("irregular loop %v should be slower than regular %v", ti, tr)
	}
}

func TestEffectiveBandwidthBounds(t *testing.T) {
	c := XeonPhi()
	peak := c.MemBandwidthGBs * 1e9
	if got := c.EffectiveBandwidth(0); got != peak {
		t.Errorf("regular bandwidth = %v, want peak %v", got, peak)
	}
	worst := peak * float64(c.RandomAccessBytes) / float64(c.CacheLineBytes)
	if got := c.EffectiveBandwidth(1); got != worst {
		t.Errorf("fully irregular bandwidth = %v, want %v", got, worst)
	}
	// Out-of-range fractions clamp.
	if got := c.EffectiveBandwidth(-3); got != peak {
		t.Errorf("clamped low = %v, want %v", got, peak)
	}
	if got := c.EffectiveBandwidth(7); got != worst {
		t.Errorf("clamped high = %v, want %v", got, worst)
	}
}

func TestEffectiveBandwidthMonotone(t *testing.T) {
	c := XeonPhi()
	prev := c.EffectiveBandwidth(0)
	for f := 0.1; f <= 1.0; f += 0.1 {
		cur := c.EffectiveBandwidth(f)
		if cur > prev {
			t.Fatalf("bandwidth increased with irregularity at frac %v", f)
		}
		prev = cur
	}
}

func TestLoopTimeZeroIters(t *testing.T) {
	if got := XeonPhi().LoopTime(Profile{FlopsPerIter: 10}, 0, 1); got != 0 {
		t.Errorf("zero iters time = %v, want 0", got)
	}
}

func TestLoopTimeScalesWithIterations(t *testing.T) {
	c := XeonPhi()
	p := Profile{FlopsPerIter: 100, BytesPerIter: 8, Vectorizable: true}
	t1 := c.LoopTime(p, 1e6, 200)
	t2 := c.LoopTime(p, 2e6, 200)
	ratio := float64(t2) / float64(t1)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("doubling iterations scaled time by %v, want 2.0", ratio)
	}
}

func TestMoreThreadsNeverSlower(t *testing.T) {
	c := XeonPhi()
	p := Profile{FlopsPerIter: 500, BytesPerIter: 4, Vectorizable: false}
	prev := c.LoopTime(p, 1e6, 1)
	for _, th := range []int{4, 16, 60, 120, 240, 400} {
		cur := c.LoopTime(p, 1e6, th)
		if cur > prev {
			t.Fatalf("time increased from %v to %v at %d threads", prev, cur, th)
		}
		prev = cur
	}
}

func TestThreadsBeyondHardwareSaturate(t *testing.T) {
	c := XeonPhi()
	p := Profile{FlopsPerIter: 500, BytesPerIter: 4}
	at240 := c.LoopTime(p, 1e6, 240)
	at999 := c.LoopTime(p, 1e6, 999)
	if at240 != at999 {
		t.Fatalf("oversubscription changed time: %v vs %v", at240, at999)
	}
}

func TestSerialTimeLinear(t *testing.T) {
	c := XeonE5()
	a := c.SerialTime(1e8)
	b := c.SerialTime(2e8)
	if b < a*2-engine.Duration(2) || b > a*2+engine.Duration(2) {
		t.Fatalf("serial time not linear: %v vs %v", a, b)
	}
}

func TestProfileScaled(t *testing.T) {
	p := Profile{FlopsPerIter: 10, BytesPerIter: 4, Vectorizable: true}
	q := p.Scaled(0.5)
	if q.FlopsPerIter != 5 || q.BytesPerIter != 2 || !q.Vectorizable {
		t.Fatalf("Scaled = %+v", q)
	}
	if p.FlopsPerIter != 10 {
		t.Fatal("Scaled mutated receiver")
	}
}

func TestVectorizationSpeedsUpComputeBoundLoop(t *testing.T) {
	c := XeonPhi()
	pv := Profile{FlopsPerIter: 1000, BytesPerIter: 1, Vectorizable: true}
	ps := pv
	ps.Vectorizable = false
	tv := c.LoopTime(pv, 1e6, 200)
	ts := c.LoopTime(ps, 1e6, 200)
	ratio := float64(ts) / float64(tv)
	// The scalar path is additionally derated by ScalarEff (in-order
	// penalty), so the observed gap is lanes*vectorEff/scalarEff.
	want := float64(c.VectorLanes) * c.VectorEff / c.ScalarEff
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Fatalf("vector speedup %v, want about %v", ratio, want)
	}
}

// Property: loop time is monotone non-decreasing in flops and bytes.
func TestLoopTimeMonotoneProperty(t *testing.T) {
	c := XeonPhi()
	f := func(flops, bytes uint16, extraF, extraB uint8, vec bool) bool {
		p1 := Profile{FlopsPerIter: float64(flops), BytesPerIter: float64(bytes), Vectorizable: vec}
		p2 := Profile{FlopsPerIter: float64(flops) + float64(extraF), BytesPerIter: float64(bytes) + float64(extraB), Vectorizable: vec}
		return c.LoopTime(p2, 1e5, 200) >= c.LoopTime(p1, 1e5, 200)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a loop's time is never below either roofline leg in isolation.
func TestRooflineLowerBoundProperty(t *testing.T) {
	c := XeonE5()
	f := func(flopsRaw, bytesRaw uint16) bool {
		p := Profile{FlopsPerIter: float64(flopsRaw) + 1, BytesPerIter: float64(bytesRaw) + 1}
		iters := int64(1e5)
		full := c.LoopTime(p, iters, 4)
		computeOnly := c.LoopTime(Profile{FlopsPerIter: p.FlopsPerIter}, iters, 4)
		memOnly := c.LoopTime(Profile{BytesPerIter: p.BytesPerIter}, iters, 4)
		return full >= computeOnly && full >= memOnly
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
