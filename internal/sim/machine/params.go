package machine

import "comp/internal/sim/engine"

// Calibration constants. These mirror the hardware table in the paper's
// §VI. Clock rates, core counts, thread counts, SIMD widths and memory
// sizes are taken directly from the paper; IPC, efficiency, bandwidth and
// launch-overhead values are calibrated so that the simulator reproduces
// the paper's measured ratios (Figures 1, 4, 10–15) within their reported
// shapes. Absolute times are not meaningful — only ratios are.
//
// Scaling note: the interpreter executes every loop iteration for value
// correctness, so the evaluation workloads run at 10^5–10^6 iterations
// rather than the paper's 10^7–10^8. Fixed per-operation costs (kernel
// launch, DMA setup) are scaled down by roughly the same factor so the
// dimensionless ratios that drive every result — D/K (transfer time over
// launch overhead, which sets the optimal block count ~ sqrt(D/K)) and
// D/C (transfer over compute, Figure 4) — sit in the regime the paper
// reports (D/K in the thousands, best N between 10 and 40).

// XeonE5 returns the host model: Intel Xeon E5-2660, 8 cores at 2.2 GHz,
// out-of-order cores with AVX (256-bit).
func XeonE5() Config {
	return Config{
		Name:              "xeon-e5-2660",
		Cores:             8,
		ThreadsPerCore:    1,
		ClockGHz:          2.2,
		IPCPerCore:        2.0,
		SingleThreadIPC:   2.0,
		VectorLanes:       8, // 256-bit AVX over 32-bit lanes
		VectorEff:         0.40,
		ScalarEff:         1.0,
		MemBandwidthGBs:   38,
		CacheLineBytes:    64,
		RandomAccessBytes: 4,
	}
}

// XeonPhi returns the coprocessor model: Xeon Phi ES2-P/A/X 1750, 61 cores
// at 1.05 GHz, 4 hardware threads per in-order core, 512-bit SIMD, 8 GB
// GDDR5 with a slice reserved for the card OS. One core is reserved for the
// OS, so applications see 60 cores / 240 threads; the paper runs with 200.
func XeonPhi() Config {
	return Config{
		Name:              "xeon-phi-es2",
		Cores:             60,
		ThreadsPerCore:    4,
		ClockGHz:          1.05,
		IPCPerCore:        1.0,
		SingleThreadIPC:   0.25, // in-order core needs >1 resident thread
		VectorLanes:       16,   // 512-bit SIMD over 32-bit lanes
		VectorEff:         0.35,
		ScalarEff:         0.40, // in-order cores on branchy scalar code
		MemBandwidthGBs:   140,
		SaturationCores:   24, // ~40% of the cores saturate GDDR5 (STREAM-style)
		CacheLineBytes:    64,
		RandomAccessBytes: 4,
		MemBytes:          8 << 30,
		OSReservedBytes:   1 << 30,
		LaunchOverhead:    1 * engine.Microsecond, // scaled; see note above
		AllocOverhead:     1 * engine.Microsecond, // scaled; see note above
	}
}

// XeonPhi3120 models the smaller card class: a 57-core Xeon Phi
// 3120-style part at 1.1 GHz with 6 GB of GDDR5. Same microarchitectural
// constants as the calibrated ES2 model — only the size knobs differ,
// which is exactly what makes its tuned plans non-interchangeable with
// the ES2's (and what makes it the held-out machine configuration the
// tuner's learned predictor is tested against).
func XeonPhi3120() Config {
	c := XeonPhi()
	c.Name = "xeon-phi-3120"
	c.Cores = 57
	c.ClockGHz = 1.1
	c.MemBytes = 6 << 30
	return c
}

// Default thread counts used throughout the evaluation (§VI).
const (
	DefaultCPUThreads = 4
	DefaultMICThreads = 200
)
