// Package machine provides the performance model of the host CPU and the
// manycore coprocessor used by the simulator.
//
// The model is deliberately simple and documented: a loop's execution time
// is the maximum of its compute time (a roofline over cores × clock × IPC ×
// SIMD lanes) and its memory time (bytes over effective bandwidth), plus
// any serial portion executed on a single thread. Irregular (gathered)
// accesses disable vectorization and waste cache-line bandwidth, which is
// exactly the coupling the paper's regularization optimization exploits.
package machine

import (
	"fmt"

	"comp/internal/sim/engine"
)

// Profile summarizes the per-iteration behaviour of a loop body as derived
// by static analysis (see internal/analysis). It is the interface between
// the compiler and the performance model.
type Profile struct {
	// FlopsPerIter counts arithmetic operations per iteration; transcendental
	// calls are pre-weighted by the analysis.
	FlopsPerIter float64
	// BytesPerIter counts bytes of memory traffic per iteration.
	BytesPerIter float64
	// Vectorizable reports whether the loop passes the vectorizer's checks
	// (unit-stride accesses, no irregular gathers, no loop-carried deps).
	Vectorizable bool
	// Irregular reports whether the loop performs gathered/strided accesses
	// that touch non-contiguous cache lines.
	Irregular bool
	// IrregularFrac is the fraction of BytesPerIter moved by irregular
	// accesses (only meaningful when Irregular is true).
	IrregularFrac float64
}

// Scaled returns a copy of p with flops and bytes multiplied by f; used when
// a transformation splits or fuses loop bodies.
func (p Profile) Scaled(f float64) Profile {
	p.FlopsPerIter *= f
	p.BytesPerIter *= f
	return p
}

// Config describes one processor (host CPU or coprocessor).
type Config struct {
	Name           string
	Cores          int
	ThreadsPerCore int
	ClockGHz       float64
	// IPCPerCore is per-core sustained scalar operations per cycle when
	// enough hardware threads are resident to fill the pipeline.
	IPCPerCore float64
	// SingleThreadIPC is the sustained IPC of a single software thread on
	// one core. For the in-order MIC core this is far below IPCPerCore,
	// which is why native mode and serial sections on the card are slow.
	SingleThreadIPC float64
	// VectorLanes is the SIMD width in 32-bit lanes (16 for MIC's 512-bit
	// units, 8 for AVX on the host).
	VectorLanes int
	// VectorEff is the fraction of peak SIMD speedup achieved in practice.
	VectorEff float64
	// ScalarEff derates non-vectorizable parallel work. In-order cores
	// (the Phi's Pentium-derived cores) lose far more than out-of-order
	// hosts on branchy, irregular scalar code; this is why several
	// benchmarks run slower on 200 MIC threads than on 4 CPU threads
	// (Figure 1) even though peak scalar throughput favours the MIC.
	ScalarEff float64
	// MemBandwidthGBs is the aggregate DRAM bandwidth in GB/s.
	MemBandwidthGBs float64
	// SaturationCores is how many cores it takes to saturate the DRAM
	// bandwidth; a kernel engaging fewer cores sustains only a
	// proportional fraction. Zero means any core count reaches full
	// bandwidth (the pre-partitioning behaviour, kept for the host, whose
	// prefetchers saturate DRAM from very few cores). On the in-order
	// manycore card this is what makes device sharing profitable: a
	// quarter of the cores sustains well over a quarter of aggregate
	// bandwidth only up to the saturation knee, so one memory-bound
	// kernel on all cores leaves compute throughput idle that concurrent
	// streams can recover.
	SaturationCores int
	// CacheLineBytes is the line size used for irregular-access accounting.
	CacheLineBytes int
	// RandomAccessBytes is the useful payload per line on a gathered access
	// (e.g. one 4-byte element per 64-byte line).
	RandomAccessBytes int
	// MemBytes and OSReservedBytes size the device memory (zero for host).
	MemBytes        uint64
	OSReservedBytes uint64
	// LaunchOverhead is the fixed cost of launching one kernel (device only).
	LaunchOverhead engine.Duration
	// AllocOverhead is the host-visible cost of allocating one device
	// buffer. §III-A hoists allocation out of streamed loops because "the
	// allocation procedure will be invoked many times".
	AllocOverhead engine.Duration
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("machine %s: cores %d < 1", c.Name, c.Cores)
	case c.ThreadsPerCore < 1:
		return fmt.Errorf("machine %s: threads/core %d < 1", c.Name, c.ThreadsPerCore)
	case c.ClockGHz <= 0:
		return fmt.Errorf("machine %s: clock %v <= 0", c.Name, c.ClockGHz)
	case c.IPCPerCore <= 0 || c.SingleThreadIPC <= 0:
		return fmt.Errorf("machine %s: IPC must be positive", c.Name)
	case c.VectorLanes < 1:
		return fmt.Errorf("machine %s: vector lanes %d < 1", c.Name, c.VectorLanes)
	case c.VectorEff <= 0 || c.VectorEff > 1:
		return fmt.Errorf("machine %s: vector efficiency %v outside (0,1]", c.Name, c.VectorEff)
	case c.ScalarEff <= 0 || c.ScalarEff > 1:
		return fmt.Errorf("machine %s: scalar efficiency %v outside (0,1]", c.Name, c.ScalarEff)
	case c.MemBandwidthGBs <= 0:
		return fmt.Errorf("machine %s: memory bandwidth %v <= 0", c.Name, c.MemBandwidthGBs)
	case c.CacheLineBytes <= 0 || c.RandomAccessBytes <= 0:
		return fmt.Errorf("machine %s: cache line/random payload must be positive", c.Name)
	case c.RandomAccessBytes > c.CacheLineBytes:
		return fmt.Errorf("machine %s: random payload %d > line %d", c.Name, c.RandomAccessBytes, c.CacheLineBytes)
	case c.SaturationCores < 0:
		return fmt.Errorf("machine %s: saturation cores %d < 0", c.Name, c.SaturationCores)
	}
	return nil
}

// MaxThreads returns the hardware thread count.
func (c Config) MaxThreads() int { return c.Cores * c.ThreadsPerCore }

// coresFor returns the number of cores engaged by the given thread count.
func (c Config) coresFor(threads int) int {
	if threads < 1 {
		threads = 1
	}
	cores := (threads + c.ThreadsPerCore - 1) / c.ThreadsPerCore
	if cores > c.Cores {
		cores = c.Cores
	}
	return cores
}

// ScalarThroughput returns sustained scalar op/s with the given threads.
func (c Config) ScalarThroughput(threads int) float64 {
	cores := c.coresFor(threads)
	perCore := c.IPCPerCore
	// A core running fewer software threads than needed to fill its
	// pipeline sustains only the single-thread rate.
	if threads < cores*c.ThreadsPerCore && threads <= c.Cores {
		perCore = c.SingleThreadIPC
	}
	return float64(cores) * c.ClockGHz * 1e9 * perCore
}

// SerialTime returns the time for `flops` operations on one thread. This is
// the model behind the paper's observation that serial code hoisted onto the
// MIC by offload merging runs much slower than on the host.
func (c Config) SerialTime(flops float64) engine.Duration {
	return engine.DurationOf(flops / (c.ClockGHz * 1e9 * c.SingleThreadIPC))
}

// BandwidthAt returns the sustained DRAM bandwidth in GB/s reachable with
// the given number of engaged cores: linear up to SaturationCores, flat at
// the aggregate beyond. With SaturationCores zero it is always the
// aggregate.
func (c Config) BandwidthAt(cores int) float64 {
	if c.SaturationCores <= 0 || cores >= c.SaturationCores {
		return c.MemBandwidthGBs
	}
	if cores < 1 {
		cores = 1
	}
	return c.MemBandwidthGBs * float64(cores) / float64(c.SaturationCores)
}

// EffectiveBandwidth returns memory bandwidth in bytes/s given the fraction
// of traffic that is irregular, assuming enough cores to saturate DRAM.
// Each irregular element drags a whole cache line across the memory system
// but uses only RandomAccessBytes of it.
func (c Config) EffectiveBandwidth(irregularFrac float64) float64 {
	return c.effectiveBandwidthAt(irregularFrac, c.Cores)
}

func (c Config) effectiveBandwidthAt(irregularFrac float64, cores int) float64 {
	if irregularFrac < 0 {
		irregularFrac = 0
	}
	if irregularFrac > 1 {
		irregularFrac = 1
	}
	peak := c.BandwidthAt(cores) * 1e9
	lineWaste := float64(c.CacheLineBytes) / float64(c.RandomAccessBytes)
	// Weighted harmonic combination of regular and irregular traffic.
	denom := (1 - irregularFrac) + irregularFrac*lineWaste
	return peak / denom
}

// LoopTime estimates the wall time of iters loop iterations with profile p
// using the given number of software threads. The estimate is a roofline:
// max(compute, memory), with vectorization gating the compute leg.
func (c Config) LoopTime(p Profile, iters int64, threads int) engine.Duration {
	if iters <= 0 {
		return 0
	}
	irr := 0.0
	if p.Irregular {
		irr = p.IrregularFrac
		if irr == 0 {
			irr = 1
		}
	}
	return c.WorkTime(
		p.FlopsPerIter*float64(iters),
		p.BytesPerIter*float64(iters),
		irr,
		p.Vectorizable && !p.Irregular,
		threads,
	)
}

// WorkTime is the totals form of LoopTime, used with dynamically profiled
// operation and traffic counts.
func (c Config) WorkTime(flops, bytes, irregularFrac float64, vectorizable bool, threads int) engine.Duration {
	tp := c.ScalarThroughput(threads)
	if vectorizable {
		tp *= float64(c.VectorLanes) * c.VectorEff
	} else {
		tp *= c.ScalarEff
	}
	computeSec := flops / tp
	memSec := bytes / c.effectiveBandwidthAt(irregularFrac, c.coresFor(threads))
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	return engine.DurationOf(sec)
}

// Share is one stream's slice of a partitioned device: a derated Config
// (core count reduced; the memory roofline follows via SaturationCores)
// plus the software thread count filling exactly those cores.
type Share struct {
	Config  Config
	Cores   int
	Threads int
}

// Partition splits the device engaged by `threads` software threads into
// `parts` core-disjoint shares, whole cores only, remainders handed out
// from the first share on. Thread counts are multiples of ThreadsPerCore so
// every share's cores run with full pipelines (no single-thread IPC
// penalty). It errors when there are not enough engaged cores to give every
// share at least one.
func (c Config) Partition(threads, parts int) ([]Share, error) {
	if parts < 1 {
		return nil, fmt.Errorf("machine %s: partition into %d parts", c.Name, parts)
	}
	total := c.coresFor(threads)
	if parts > total {
		return nil, fmt.Errorf("machine %s: %d streams exceed the %d cores engaged by %d threads",
			c.Name, parts, total, threads)
	}
	base, rem := total/parts, total%parts
	shares := make([]Share, parts)
	for i := range shares {
		cores := base
		if i < rem {
			cores++
		}
		cfg := c
		cfg.Cores = cores
		shares[i] = Share{Config: cfg, Cores: cores, Threads: cores * c.ThreadsPerCore}
	}
	return shares, nil
}
