package machine

import (
	"math"
	"testing"
)

func TestCalibrateVectorEff(t *testing.T) {
	cases := []struct {
		measured float64
		lanes    int
		want     float64
	}{
		{4.0, 8, 0.5},    // typical host-measured ratio
		{3.2, 8, 0.4},    // exactly the committed XeonE5 value
		{16.0, 8, 1.0},   // more than lanes can explain: saturate
		{8.0, 8, 1.0},    // perfect efficiency
		{1.0, 8, 0.125},  // vectorization bought a lane's worth of nothing extra
		{0.5, 8, 0.0625}, // slowdown still maps into (0,1]
		{0.05, 8, 0.01},  // floored
		{-1.0, 8, 0.01},  // nonsense input floored
		{math.NaN(), 8, 0.01},
		{4.0, 0, 0.01},
	}
	for _, tc := range cases {
		if got := CalibrateVectorEff(tc.measured, tc.lanes); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CalibrateVectorEff(%v, %d) = %v, want %v", tc.measured, tc.lanes, got, tc.want)
		}
	}
}

func TestWithMeasuredVectorRatio(t *testing.T) {
	c := XeonE5().WithMeasuredVectorRatio(4.0)
	if c.VectorEff != 0.5 {
		t.Errorf("VectorEff = %v, want 0.5", c.VectorEff)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("recalibrated config does not validate: %v", err)
	}
	// The committed defaults are untouched.
	if XeonE5().VectorEff != 0.40 {
		t.Errorf("XeonE5 default VectorEff changed: %v", XeonE5().VectorEff)
	}
}
