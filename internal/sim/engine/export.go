package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace_event format. Complete
// spans use phase "X" (ts + dur); instants use phase "i". Times are in
// microseconds, the unit chrome://tracing and Perfetto expect.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object flavour of the format, which lets us set
// the display unit alongside the event array.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePid = 1

func toMicros(t Time) float64      { return float64(t) / float64(Microsecond) }
func durMicros(d Duration) float64 { return float64(d) / float64(Microsecond) }

// ChromeJSON writes the trace in Chrome trace_event JSON, loadable in
// chrome://tracing and https://ui.perfetto.dev. Each simulated resource
// becomes one named thread; spans become complete ("X") events and
// instants become instant ("i") events. Output is deterministic: threads
// are ordered by resource name and events by (start, resource, label).
func (t *Trace) ChromeJSON(w io.Writer) error {
	resources := t.Resources()
	tids := make(map[string]int, len(resources))
	events := make([]chromeEvent, 0, len(t.spans)+len(resources))
	for i, name := range resources {
		tid := i + 1
		tids[name] = tid
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			Pid:   chromePid,
			Tid:   tid,
			Args:  map[string]any{"name": name},
		})
	}
	for _, sp := range t.sorted() {
		ev := chromeEvent{
			Name: sp.Label,
			Cat:  string(sp.Cat),
			Ts:   toMicros(sp.Start),
			Pid:  chromePid,
			Tid:  tids[sp.Resource],
			Args: sp.Args,
		}
		if sp.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			d := durMicros(sp.Duration())
			ev.Dur = &d
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// timelineGlyphs maps categories to the cell glyph of the ASCII renderer.
var timelineGlyphs = map[Category]byte{
	CatDMAIn:  '<',
	CatDMAOut: '>',
	CatKernel: '#',
	CatHost:   '=',
	CatAlloc:  'a',
	CatFault:  'X',
	CatRetry:  'r',
}

// Timeline renders the trace as an ASCII chart, one lane per resource,
// scaled to the given width in columns (minimum 20). Span cells are drawn
// with a per-category glyph ('<' dma-in, '>' dma-out, '#' kernel, '='
// host, 'a' alloc, 'X' fault, 'r' retry, '*' other); instants overprint a
// '!'. It is the terminal-friendly counterpart of ChromeJSON.
func (t *Trace) Timeline(w io.Writer, width int) {
	if width < 20 {
		width = 20
	}
	var end Time
	for _, sp := range t.spans {
		if sp.End > end {
			end = sp.End
		}
	}
	if end == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	resources := t.Resources()
	nameW := 0
	for _, r := range resources {
		if len(r) > nameW {
			nameW = len(r)
		}
	}
	cell := func(tm Time) int {
		c := int(int64(tm) * int64(width) / int64(end))
		if c >= width {
			c = width - 1
		}
		return c
	}
	fmt.Fprintf(w, "%-*s 0%*s\n", nameW, "timeline", width, end)
	lanes := make(map[string][]byte, len(resources))
	for _, r := range resources {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		lanes[r] = lane
	}
	for _, sp := range t.sorted() {
		lane := lanes[sp.Resource]
		if sp.Instant {
			lane[cell(sp.Start)] = '!'
			continue
		}
		glyph, ok := timelineGlyphs[sp.Cat]
		if !ok {
			glyph = '*'
		}
		lo, hi := cell(sp.Start), cell(sp.End)
		if hi <= lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			lane[i] = glyph
		}
	}
	for _, r := range resources {
		fmt.Fprintf(w, "%-*s |%s|\n", nameW, r, lanes[r])
	}
	var cats []string
	seen := map[Category]bool{}
	for _, sp := range t.spans {
		if sp.Cat != "" && !seen[sp.Cat] && !sp.Instant {
			seen[sp.Cat] = true
			glyph, ok := timelineGlyphs[sp.Cat]
			if !ok {
				glyph = '*'
			}
			cats = append(cats, fmt.Sprintf("%c %s", glyph, sp.Cat))
		}
	}
	sort.Strings(cats)
	if len(cats) > 0 {
		fmt.Fprintf(w, "%-*s  %s\n", nameW, "legend", strings.Join(cats, "  "))
	}
}
