package engine

import "testing"

// BenchmarkScheduling measures raw event throughput: the figure harness
// schedules hundreds of thousands of events per evaluation run.
func BenchmarkScheduling(b *testing.B) {
	s := New()
	s.Trace().SetEnabled(false)
	for i := 0; i < b.N; i++ {
		s.After(Duration(i%1000), func() {})
		if i%4096 == 4095 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkPipeline measures a transfer-compute pipeline of 1000 blocks.
func BenchmarkPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		s.Trace().SetEnabled(false)
		xfer := s.NewResource("x", 1)
		comp := s.NewResource("c", 1)
		for j := 0; j < 1000; j++ {
			t := xfer.Submit("t", 100)
			comp.SubmitAfter(t, "k", 90)
		}
		s.Run()
	}
}
