// Package engine implements a deterministic discrete-event simulation core.
//
// The engine provides a virtual clock, an event calendar, one-shot events
// (futures) and FIFO resources with a fixed number of servers. All higher
// simulator layers (PCIe DMA, device memory, kernel launch) are built on
// these primitives. Determinism is guaranteed by a strict (time, sequence)
// ordering of scheduled callbacks: two callbacks scheduled for the same
// virtual instant run in submission order.
package engine

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds from simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds converts t to floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(d))
}

func (t Time) String() string { return Duration(t).String() }

// DurationOf converts floating-point seconds to a Duration, rounding to the
// nearest nanosecond. Negative inputs clamp to zero: the cost model never
// produces a meaningful negative span, and clamping keeps resource timelines
// monotone.
func DurationOf(seconds float64) Duration {
	if seconds <= 0 {
		return 0
	}
	return Duration(seconds*float64(Second) + 0.5)
}

type scheduled struct {
	at  Time
	seq uint64
	fn  func()
}

type calendar []scheduled

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x interface{}) { *c = append(*c, x.(scheduled)) }
func (c *calendar) Pop() interface{} {
	old := *c
	n := len(old)
	it := old[n-1]
	*c = old[:n-1]
	return it
}

// Sim is a discrete-event simulation instance. The zero value is not usable;
// construct with New.
type Sim struct {
	now   Time
	seq   uint64
	cal   calendar
	trace *Trace
	steps int64
}

// New returns an empty simulation positioned at time zero.
func New() *Sim {
	return &Sim{trace: NewTrace()}
}

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Trace returns the span recorder attached to this simulation.
func (s *Sim) Trace() *Trace { return s.trace }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would break the monotone clock invariant.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("engine: schedule at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.cal, scheduled{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+Time(d), fn)
}

// Run executes scheduled callbacks in (time, sequence) order until the
// calendar is empty, advancing the clock. It returns the final time.
func (s *Sim) Run() Time {
	for len(s.cal) > 0 {
		it := heap.Pop(&s.cal).(scheduled)
		s.now = it.at
		s.steps++
		it.fn()
	}
	return s.now
}

// Steps reports the number of callbacks executed so far; useful for
// asserting that a model stays within an expected event budget.
func (s *Sim) Steps() int64 { return s.steps }

// Event is a one-shot future. Callbacks registered with OnFire run when the
// event fires; registering on an already-fired event runs the callback
// immediately (synchronously) with the original fire time.
type Event struct {
	sim     *Sim
	name    string
	fired   bool
	at      Time
	waiters []func(Time)
}

// NewEvent creates an unfired event. The name is used in diagnostics only.
func (s *Sim) NewEvent(name string) *Event {
	return &Event{sim: s, name: name}
}

// FiredEvent returns an event that is already fired at the current time.
// It is the identity for AllOf and a convenient "no dependency" marker.
func (s *Sim) FiredEvent() *Event {
	return &Event{sim: s, name: "fired", fired: true, at: s.now}
}

// Fire marks the event fired at the current simulation time and runs all
// registered callbacks. Firing twice panics: events are one-shot by design
// and a double fire always indicates a protocol bug in the caller.
func (e *Event) Fire() {
	if e.fired {
		panic("engine: event " + e.name + " fired twice")
	}
	e.fired = true
	e.at = e.sim.now
	ws := e.waiters
	e.waiters = nil
	for _, w := range ws {
		w(e.at)
	}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Time returns the fire time; it panics if the event has not fired.
func (e *Event) Time() Time {
	if !e.fired {
		panic("engine: Time on unfired event " + e.name)
	}
	return e.at
}

// OnFire registers fn to run when the event fires. If the event already
// fired, fn runs immediately with the original fire time.
func (e *Event) OnFire(fn func(Time)) {
	if e.fired {
		fn(e.at)
		return
	}
	e.waiters = append(e.waiters, fn)
}

// Delay returns an event that fires d after ev does. It is the backoff
// primitive: retry chains are built as Delay(sim, failed, backoff) without
// the caller needing calendar access.
func Delay(s *Sim, ev *Event, d Duration) *Event {
	if d < 0 {
		d = 0
	}
	out := s.NewEvent("delay")
	ev.OnFire(func(t Time) {
		at := t + Time(d)
		// OnFire on an already-fired event reports the original fire time,
		// which may be in the simulated past; clamp to keep the clock monotone.
		if at < s.now {
			at = s.now
		}
		s.At(at, out.Fire)
	})
	return out
}

// AllOf returns an event that fires when every input has fired. With no
// inputs the result fires immediately.
func AllOf(s *Sim, evs ...*Event) *Event {
	out := s.NewEvent("all")
	pending := 0
	for _, e := range evs {
		if !e.Fired() {
			pending++
		}
	}
	if pending == 0 {
		out.fired = true
		out.at = s.now
		return out
	}
	remaining := pending
	for _, e := range evs {
		if e.Fired() {
			continue
		}
		e.OnFire(func(Time) {
			remaining--
			if remaining == 0 {
				out.Fire()
			}
		})
	}
	return out
}
