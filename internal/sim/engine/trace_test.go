package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceInstantRecordsPointEvent(t *testing.T) {
	tr := NewTrace()
	tr.Instant("runtime", "fallback:sync", CatFallback, 42, map[string]any{"cause": "dma"})
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Instant || sp.Start != 42 || sp.End != 42 {
		t.Errorf("instant span = %+v, want Instant at 42", sp)
	}
	if sp.Cat != CatFallback || sp.Args["cause"] != "dma" {
		t.Errorf("cat/args = %v/%v, want fallback/dma", sp.Cat, sp.Args)
	}
	if sp.Duration() != 0 {
		t.Errorf("instant duration = %v, want 0", sp.Duration())
	}
}

func TestTraceInstantDisabledRecordsNothing(t *testing.T) {
	tr := NewTrace()
	tr.SetEnabled(false)
	tr.Instant("r", "x", CatFault, 1, nil)
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("disabled trace recorded %d instants", n)
	}
}

func TestTraceBusyTimeSumsSpansNotInstants(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Resource: "pcie", Label: "a", Start: 0, End: 30})
	tr.Add(Span{Resource: "pcie", Label: "b", Start: 50, End: 70})
	tr.Add(Span{Resource: "mic", Label: "k", Start: 0, End: 100})
	tr.Instant("pcie", "fault", CatFault, 10, nil)
	if got := tr.BusyTime("pcie"); got != 50 {
		t.Errorf("BusyTime(pcie) = %v, want 50", got)
	}
	if got := tr.BusyTime("mic"); got != 100 {
		t.Errorf("BusyTime(mic) = %v, want 100", got)
	}
	if got := tr.BusyTime("absent"); got != 0 {
		t.Errorf("BusyTime(absent) = %v, want 0", got)
	}
}

func TestTraceByCategoryAndResources(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Resource: "b", Label: "x", Cat: CatKernel, Start: 10, End: 20})
	tr.Add(Span{Resource: "a", Label: "y", Cat: CatDMAIn, Start: 0, End: 5})
	tr.Add(Span{Resource: "a", Label: "z", Cat: CatKernel, Start: 5, End: 8})
	ks := tr.ByCategory(CatKernel)
	if len(ks) != 2 || ks[0].Label != "z" || ks[1].Label != "x" {
		t.Errorf("ByCategory(kernel) = %v, want [z x] sorted by start", ks)
	}
	res := tr.Resources()
	if len(res) != 2 || res[0] != "a" || res[1] != "b" {
		t.Errorf("Resources() = %v, want [a b]", res)
	}
}

// TestChromeJSONRoundTrip is the acceptance check: the exporter emits valid
// Chrome trace_event JSON that round-trips through json.Unmarshal with the
// expected structure.
func TestChromeJSONRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Resource: "pcie-h2d", Label: "dma", Cat: CatDMAIn, Start: 0, End: Time(2 * Microsecond),
		Args: map[string]any{"bytes": 4096}})
	tr.Add(Span{Resource: "mic-compute", Label: "kern", Cat: CatKernel, Start: Time(Microsecond), End: Time(3 * Microsecond)})
	tr.Instant("runtime", "retry:dma", CatRetry, Time(2*Microsecond), map[string]any{"attempt": 1})

	var buf bytes.Buffer
	if err := tr.ChromeJSON(&buf); err != nil {
		t.Fatalf("ChromeJSON: %v", err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if file.DisplayUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", file.DisplayUnit)
	}
	// 3 resources -> 3 metadata events, plus 3 span/instant events.
	if len(file.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(file.TraceEvents))
	}
	var phases = map[string]int{}
	for _, ev := range file.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "M":
			if ev["name"] != "thread_name" {
				t.Errorf("metadata event name = %v, want thread_name", ev["name"])
			}
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
		case "i":
			if ev["s"] != "t" {
				t.Errorf("instant event scope = %v, want t", ev["s"])
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if phases["M"] != 3 || phases["X"] != 2 || phases["i"] != 1 {
		t.Errorf("phase counts = %v, want M:3 X:2 i:1", phases)
	}
	// The DMA complete event: ts 0, dur 2us, args carried through.
	for _, ev := range file.TraceEvents {
		if ev["name"] == "dma" {
			if ev["ts"].(float64) != 0 || ev["dur"].(float64) != 2 {
				t.Errorf("dma ts/dur = %v/%v, want 0/2 (microseconds)", ev["ts"], ev["dur"])
			}
			args := ev["args"].(map[string]any)
			if args["bytes"].(float64) != 4096 {
				t.Errorf("dma args = %v, want bytes 4096", args)
			}
			if ev["cat"] != "dma-in" {
				t.Errorf("dma cat = %v, want dma-in", ev["cat"])
			}
		}
	}
}

func TestChromeJSONDeterministic(t *testing.T) {
	build := func() *Trace {
		tr := NewTrace()
		tr.Add(Span{Resource: "b", Label: "x", Cat: CatKernel, Start: 10, End: 20})
		tr.Add(Span{Resource: "a", Label: "y", Cat: CatDMAIn, Start: 10, End: 15})
		tr.Instant("c", "f", CatFault, 12, nil)
		return tr
	}
	var b1, b2 bytes.Buffer
	if err := build().ChromeJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().ChromeJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("ChromeJSON output is not deterministic")
	}
}

func TestTimelineRendersLanesAndLegend(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Resource: "pcie-h2d", Label: "dma", Cat: CatDMAIn, Start: 0, End: 50})
	tr.Add(Span{Resource: "mic-compute", Label: "k", Cat: CatKernel, Start: 50, End: 100})
	tr.Instant("runtime", "fault", CatFault, 75, nil)
	var buf bytes.Buffer
	tr.Timeline(&buf, 20)
	out := buf.String()
	for _, want := range []string{"pcie-h2d", "mic-compute", "runtime", "legend", "<", "#", "!"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 3 lanes + legend
	if len(lines) != 5 {
		t.Errorf("timeline has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTimelineEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	NewTrace().Timeline(&buf, 40)
	if !strings.Contains(buf.String(), "empty trace") {
		t.Errorf("empty trace rendered %q", buf.String())
	}
}

// TestOverlapMeterMatchesTraceOverlap is the core consistency invariant: for
// single-server resources the online meter and the pairwise span overlap
// measure the same quantity.
func TestOverlapMeterMatchesTraceOverlap(t *testing.T) {
	s := New()
	xfer := s.NewResource("pcie", 1)
	comp := s.NewResource("mic", 1)
	m := s.MeterOverlap(xfer, comp)
	// Pipeline: transfer i feeds kernel i; kernels overlap later transfers.
	for i := 0; i < 6; i++ {
		tEv := xfer.Submit("t", 100)
		comp.SubmitAfter(tEv, "k", 130)
	}
	s.Run()
	want := s.Trace().Overlap("pcie", "mic")
	if want == 0 {
		t.Fatal("expected nonzero overlap in pipeline")
	}
	if got := m.Total(); got != want {
		t.Errorf("OverlapMeter.Total() = %v, Trace.Overlap = %v", got, want)
	}
}

func TestOverlapMeterWorksWithTraceDisabled(t *testing.T) {
	run := func(disable bool) Duration {
		s := New()
		if disable {
			s.Trace().SetEnabled(false)
		}
		a := s.NewResource("a", 1)
		b := s.NewResource("b", 1)
		m := s.MeterOverlap(a, b)
		a.Submit("x", 100)
		ready := s.NewEvent("ready")
		s.At(30, func() { ready.Fire() })
		b.SubmitAfter(ready, "y", 100)
		s.Run()
		return m.Total()
	}
	on, off := run(false), run(true)
	if on != off {
		t.Errorf("meter with trace on = %v, off = %v; must be identical", on, off)
	}
	if on != 70 {
		t.Errorf("overlap = %v, want 70", on)
	}
}

func TestOverlapMeterDisjointIsZero(t *testing.T) {
	s := New()
	a := s.NewResource("a", 1)
	b := s.NewResource("b", 1)
	m := s.MeterOverlap(a, b)
	done := a.Submit("x", 50)
	b.SubmitAfter(done, "y", 50)
	s.Run()
	if got := m.Total(); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
}

func TestSubmitTaggedRecordsCategoryAndArgs(t *testing.T) {
	s := New()
	r := s.NewResource("pcie", 1)
	r.SubmitTagged(nil, "dma", CatDMAIn, 10, map[string]any{"bytes": 512})
	s.Run()
	spans := s.Trace().Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Cat != CatDMAIn || sp.Args["bytes"] != 512 {
		t.Errorf("span = %+v, want dma-in with bytes 512", sp)
	}
}

func TestResourceDefaultCategory(t *testing.T) {
	s := New()
	r := s.NewResource("mic", 1)
	r.SetCategory(CatKernel)
	if r.Category() != CatKernel {
		t.Fatalf("Category() = %v, want kernel", r.Category())
	}
	r.Submit("k", 5)
	s.Run()
	if sp := s.Trace().Spans()[0]; sp.Cat != CatKernel {
		t.Errorf("default-category span cat = %v, want kernel", sp.Cat)
	}
}
