package engine

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.After(5*Microsecond, func() { at = s.Now() })
	end := s.Run()
	if at != Time(5*Microsecond) {
		t.Errorf("callback ran at %v, want 5us", at)
	}
	if end != Time(5*Microsecond) {
		t.Errorf("Run returned %v, want 5us", end)
	}
}

func TestSameInstantRunsInSubmissionOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (ties must run FIFO)", i, v, i)
		}
	}
}

func TestEventsInterleaveByTime(t *testing.T) {
	s := New()
	var order []string
	s.At(30, func() { order = append(order, "c") })
	s.At(10, func() { order = append(order, "a") })
	s.At(20, func() { order = append(order, "b") })
	s.Run()
	got := order[0] + order[1] + order[2]
	if got != "abc" {
		t.Fatalf("execution order %q, want abc", got)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []Time
	s.After(10, func() {
		s.After(10, func() {
			fired = append(fired, s.Now())
			s.After(10, func() { fired = append(fired, s.Now()) })
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 20 || fired[1] != 30 {
		t.Fatalf("nested fire times = %v, want [20 30]", fired)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	s.At(50, func() {
		ran := false
		s.After(-10, func() { ran = true })
		_ = ran
	})
	var at Time = -1
	s.At(60, func() { at = s.Now() })
	s.Run()
	if at != 60 {
		t.Fatalf("final event at %v, want 60", at)
	}
}

func TestEventFireRunsWaiters(t *testing.T) {
	s := New()
	e := s.NewEvent("x")
	var got Time = -1
	e.OnFire(func(at Time) { got = at })
	s.At(42, func() { e.Fire() })
	s.Run()
	if got != 42 {
		t.Fatalf("waiter saw %v, want 42", got)
	}
	if !e.Fired() || e.Time() != 42 {
		t.Fatalf("Fired=%v Time=%v, want true/42", e.Fired(), e.Time())
	}
}

func TestOnFireAfterFiredRunsImmediately(t *testing.T) {
	s := New()
	e := s.FiredEvent()
	ran := false
	e.OnFire(func(Time) { ran = true })
	if !ran {
		t.Fatal("OnFire on fired event did not run synchronously")
	}
}

func TestDoubleFirePanics(t *testing.T) {
	s := New()
	e := s.NewEvent("x")
	e.Fire()
	defer func() {
		if recover() == nil {
			t.Error("double Fire did not panic")
		}
	}()
	e.Fire()
}

func TestTimeOnUnfiredPanics(t *testing.T) {
	s := New()
	e := s.NewEvent("x")
	defer func() {
		if recover() == nil {
			t.Error("Time on unfired event did not panic")
		}
	}()
	_ = e.Time()
}

func TestAllOfWaitsForEveryInput(t *testing.T) {
	s := New()
	a := s.NewEvent("a")
	b := s.NewEvent("b")
	all := AllOf(s, a, b)
	var at Time = -1
	all.OnFire(func(x Time) { at = x })
	s.At(10, func() { a.Fire() })
	s.At(25, func() { b.Fire() })
	s.Run()
	if at != 25 {
		t.Fatalf("AllOf fired at %v, want 25 (latest input)", at)
	}
}

func TestAllOfEmptyFiresImmediately(t *testing.T) {
	s := New()
	if !AllOf(s).Fired() {
		t.Fatal("AllOf() with no inputs should be fired")
	}
}

func TestAllOfWithPreFired(t *testing.T) {
	s := New()
	a := s.FiredEvent()
	b := s.NewEvent("b")
	all := AllOf(s, a, b)
	if all.Fired() {
		t.Fatal("AllOf fired before pending input")
	}
	s.At(7, func() { b.Fire() })
	s.Run()
	if !all.Fired() || all.Time() != 7 {
		t.Fatalf("AllOf fired=%v time=%v, want true/7", all.Fired(), all.Time())
	}
}

func TestResourceSerializesJobs(t *testing.T) {
	s := New()
	r := s.NewResource("pcie", 1)
	d1 := r.Submit("a", 100)
	d2 := r.Submit("b", 50)
	s.Run()
	if d1.Time() != 100 {
		t.Errorf("job a done at %v, want 100", d1.Time())
	}
	if d2.Time() != 150 {
		t.Errorf("job b done at %v, want 150 (must wait for a)", d2.Time())
	}
}

func TestResourceParallelServers(t *testing.T) {
	s := New()
	r := s.NewResource("cores", 2)
	d1 := r.Submit("a", 100)
	d2 := r.Submit("b", 100)
	d3 := r.Submit("c", 100)
	s.Run()
	if d1.Time() != 100 || d2.Time() != 100 {
		t.Errorf("parallel jobs done at %v,%v, want 100,100", d1.Time(), d2.Time())
	}
	if d3.Time() != 200 {
		t.Errorf("third job done at %v, want 200", d3.Time())
	}
}

func TestSubmitAfterHonorsDependency(t *testing.T) {
	s := New()
	r := s.NewResource("mic", 1)
	ready := s.NewEvent("ready")
	done := r.SubmitAfter(ready, "k", 40)
	s.At(60, func() { ready.Fire() })
	s.Run()
	if done.Time() != 100 {
		t.Fatalf("dependent job done at %v, want 100", done.Time())
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Two resources: transfers feed kernels. Classic streaming pipeline:
	// with equal stage times the makespan is (N+1) stages, not 2N.
	s := New()
	xfer := s.NewResource("pcie", 1)
	comp := s.NewResource("mic", 1)
	const n = 8
	const stage = 100
	var last *Event
	for i := 0; i < n; i++ {
		tEv := xfer.Submit("t", stage)
		last = comp.SubmitAfter(tEv, "k", stage)
	}
	s.Run()
	want := Time((n + 1) * stage)
	if last.Time() != want {
		t.Fatalf("pipeline makespan %v, want %v", last.Time(), want)
	}
	if ov := s.Trace().Overlap("pcie", "mic"); ov <= 0 {
		t.Fatal("expected transfer/compute overlap, got none")
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := s.NewResource("bus", 1)
	r.Submit("a", 50)
	s.At(100, func() {}) // extend the clock to 100
	s.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if r.BusyTime() != 50 {
		t.Fatalf("busy time = %v, want 50", r.BusyTime())
	}
}

func TestResourceZeroServersPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("NewResource(0) did not panic")
		}
	}()
	s.NewResource("x", 0)
}

func TestTraceByResourceSorted(t *testing.T) {
	s := New()
	r := s.NewResource("r", 2)
	r.Submit("b", 30)
	r.Submit("a", 10)
	s.Run()
	spans := s.Trace().ByResource("r")
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Start > spans[1].Start {
		t.Fatal("spans not sorted by start")
	}
}

func TestTraceOverlapDisjoint(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Resource: "a", Label: "x", Start: 0, End: 10})
	tr.Add(Span{Resource: "b", Label: "y", Start: 10, End: 20})
	if ov := tr.Overlap("a", "b"); ov != 0 {
		t.Fatalf("overlap of adjacent spans = %v, want 0", ov)
	}
}

func TestTraceDisabled(t *testing.T) {
	s := New()
	s.Trace().SetEnabled(false)
	r := s.NewResource("r", 1)
	r.Submit("a", 5)
	s.Run()
	if n := len(s.Trace().Spans()); n != 0 {
		t.Fatalf("disabled trace recorded %d spans", n)
	}
}

func TestDurationOf(t *testing.T) {
	cases := []struct {
		sec  float64
		want Duration
	}{
		{0, 0},
		{-1, 0},
		{1e-9, 1},
		{1, Second},
		{0.5, 500 * Millisecond},
	}
	for _, c := range cases {
		if got := DurationOf(c.sec); got != c.want {
			t.Errorf("DurationOf(%v) = %v, want %v", c.sec, got, c.want)
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{5, "5ns"},
		{1500, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: for any set of job durations on a single-server resource, the
// completion time of the last job equals the sum of all durations (FIFO,
// work-conserving, no preemption).
func TestResourceWorkConservingProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		s := New()
		r := s.NewResource("r", 1)
		var last *Event
		var sum Duration
		for _, d := range durs {
			dd := Duration(d)
			sum += dd
			last = r.Submit("j", dd)
		}
		s.Run()
		return last.Time() == Time(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with k servers and equal-duration jobs, makespan is
// ceil(n/k) * d.
func TestResourceParallelMakespanProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%32) + 1
		k := int(kRaw%8) + 1
		const d = 100
		s := New()
		r := s.NewResource("r", k)
		var last *Event
		for i := 0; i < n; i++ {
			last = r.Submit("j", d)
		}
		s.Run()
		waves := (n + k - 1) / k
		return last.Time() == Time(waves*d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AllOf fires at the max of its inputs' fire times.
func TestAllOfMaxProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		s := New()
		evs := make([]*Event, len(times))
		var max Time
		for i, tt := range times {
			evs[i] = s.NewEvent("e")
			at := Time(tt)
			if at > max {
				max = at
			}
			e := evs[i]
			s.At(at, func() { e.Fire() })
		}
		all := AllOf(s, evs...)
		s.Run()
		return all.Fired() && all.Time() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
