package engine

// Resource models a set of identical FIFO servers (e.g. a DMA channel, the
// device compute fabric, a host core pool). Jobs submitted to a resource run
// in submission order as servers become free; each job occupies one server
// for its stated duration. Completion is reported through an Event so that
// dependent work can be chained without polling.
type Resource struct {
	sim     *Sim
	name    string
	servers int
	busy    int
	queue   []job
	busyTot Duration // aggregate busy time across servers, for utilization
}

type job struct {
	label string
	dur   Duration
	ready *Event // job may not start before this fires (already satisfied when queued)
	done  *Event
}

// NewResource creates a resource with the given number of parallel servers.
// servers must be at least 1.
func (s *Sim) NewResource(name string, servers int) *Resource {
	if servers < 1 {
		panic("engine: resource " + name + " needs at least one server")
	}
	return &Resource{sim: s, name: name, servers: servers}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// BusyTime returns the total busy time accumulated across all servers.
func (r *Resource) BusyTime() Duration { return r.busyTot }

// Utilization returns busy time divided by (elapsed × servers); zero before
// any time has passed.
func (r *Resource) Utilization() float64 {
	elapsed := r.sim.Now()
	if elapsed == 0 {
		return 0
	}
	return float64(r.busyTot) / (float64(elapsed) * float64(r.servers))
}

// Submit enqueues a job of duration d and returns the event that fires when
// the job completes.
func (r *Resource) Submit(label string, d Duration) *Event {
	return r.SubmitAfter(r.sim.FiredEvent(), label, d)
}

// SubmitAfter enqueues a job that becomes eligible to start only once ready
// has fired. Ordering is by eligibility: the job joins the FIFO queue at the
// moment ready fires.
func (r *Resource) SubmitAfter(ready *Event, label string, d Duration) *Event {
	if d < 0 {
		d = 0
	}
	done := r.sim.NewEvent(r.name + ":" + label)
	ready.OnFire(func(Time) {
		r.queue = append(r.queue, job{label: label, dur: d, done: done})
		r.dispatch()
	})
	return done
}

func (r *Resource) dispatch() {
	for r.busy < r.servers && len(r.queue) > 0 {
		j := r.queue[0]
		r.queue = r.queue[1:]
		r.busy++
		start := r.sim.Now()
		r.sim.After(j.dur, func() {
			r.busy--
			r.busyTot += j.dur
			r.sim.trace.Add(Span{Resource: r.name, Label: j.label, Start: start, End: r.sim.Now()})
			j.done.Fire()
			r.dispatch()
		})
	}
}

// QueueLen reports the number of jobs waiting (not yet started).
func (r *Resource) QueueLen() int { return len(r.queue) }

// InService reports the number of jobs currently occupying servers.
func (r *Resource) InService() int { return r.busy }
