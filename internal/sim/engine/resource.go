package engine

// Resource models a set of identical FIFO servers (e.g. a DMA channel, the
// device compute fabric, a host core pool). Jobs submitted to a resource run
// in submission order as servers become free; each job occupies one server
// for its stated duration. Completion is reported through an Event so that
// dependent work can be chained without polling.
type Resource struct {
	sim     *Sim
	name    string
	cat     Category // default span category for jobs on this resource
	servers int
	busy    int
	queue   []job
	busyTot Duration // aggregate busy time across servers, for utilization
	meters  []busyObserver
}

// busyObserver is notified whenever the resource's busy count changes;
// OverlapMeter and ConcurrencyMeter implement it.
type busyObserver interface{ update() }

type job struct {
	label string
	cat   Category
	args  map[string]any
	dur   Duration
	ready *Event // job may not start before this fires (already satisfied when queued)
	done  *Event
}

// NewResource creates a resource with the given number of parallel servers.
// servers must be at least 1.
func (s *Sim) NewResource(name string, servers int) *Resource {
	if servers < 1 {
		panic("engine: resource " + name + " needs at least one server")
	}
	return &Resource{sim: s, name: name, servers: servers}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// SetCategory sets the default span category for jobs submitted without an
// explicit one (Submit/SubmitAfter).
func (r *Resource) SetCategory(c Category) { r.cat = c }

// Category returns the resource's default span category.
func (r *Resource) Category() Category { return r.cat }

// BusyTime returns the total busy time accumulated across all servers.
func (r *Resource) BusyTime() Duration { return r.busyTot }

// Utilization returns busy time divided by (elapsed × servers); zero before
// any time has passed.
func (r *Resource) Utilization() float64 {
	elapsed := r.sim.Now()
	if elapsed == 0 {
		return 0
	}
	return float64(r.busyTot) / (float64(elapsed) * float64(r.servers))
}

// Submit enqueues a job of duration d and returns the event that fires when
// the job completes.
func (r *Resource) Submit(label string, d Duration) *Event {
	return r.SubmitTagged(r.sim.FiredEvent(), label, r.cat, d, nil)
}

// SubmitAfter enqueues a job that becomes eligible to start only once ready
// has fired. Ordering is by eligibility: the job joins the FIFO queue at the
// moment ready fires.
func (r *Resource) SubmitAfter(ready *Event, label string, d Duration) *Event {
	return r.SubmitTagged(ready, label, r.cat, d, nil)
}

// SubmitTagged is SubmitAfter with an explicit span category and structured
// args recorded on the job's trace span. It is how emitters distinguish,
// e.g., a failed DMA attempt (CatFault) from a real transfer on the same
// channel, and how payload sizes reach the trace. A nil ready means the job
// is eligible immediately.
func (r *Resource) SubmitTagged(ready *Event, label string, cat Category, d Duration, args map[string]any) *Event {
	if ready == nil {
		ready = r.sim.FiredEvent()
	}
	if d < 0 {
		d = 0
	}
	done := r.sim.NewEvent(r.name + ":" + label)
	ready.OnFire(func(Time) {
		r.queue = append(r.queue, job{label: label, cat: cat, args: args, dur: d, done: done})
		r.dispatch()
	})
	return done
}

func (r *Resource) dispatch() {
	for r.busy < r.servers && len(r.queue) > 0 {
		j := r.queue[0]
		r.queue = r.queue[1:]
		r.busy++
		r.notifyMeters()
		start := r.sim.Now()
		r.sim.After(j.dur, func() {
			r.busy--
			r.notifyMeters()
			r.busyTot += j.dur
			r.sim.trace.Add(Span{
				Resource: r.name,
				Label:    j.label,
				Cat:      j.cat,
				Start:    start,
				End:      r.sim.Now(),
				Args:     j.args,
			})
			j.done.Fire()
			r.dispatch()
		})
	}
}

// QueueLen reports the number of jobs waiting (not yet started).
func (r *Resource) QueueLen() int { return len(r.queue) }

// InService reports the number of jobs currently occupying servers.
func (r *Resource) InService() int { return r.busy }

func (r *Resource) notifyMeters() {
	for _, m := range r.meters {
		m.update()
	}
}

// OverlapMeter measures the total virtual time during which two resources
// are simultaneously busy. Unlike Trace.Overlap it is computed online from
// the resources' busy counters, so it works — and yields identical numbers
// for single-server resources — even when trace recording is disabled.
// This keeps Stats independent of the observability layer; the consistency
// suite cross-checks the two.
type OverlapMeter struct {
	sim    *Sim
	a, b   *Resource
	total  Duration
	since  Time
	active bool
}

// MeterOverlap attaches an overlap meter to two resources. Meters must be
// created before any job is submitted to either resource.
func (s *Sim) MeterOverlap(a, b *Resource) *OverlapMeter {
	m := &OverlapMeter{sim: s, a: a, b: b}
	a.meters = append(a.meters, m)
	b.meters = append(b.meters, m)
	return m
}

func (m *OverlapMeter) update() {
	both := m.a.busy > 0 && m.b.busy > 0
	switch {
	case both && !m.active:
		m.active = true
		m.since = m.sim.now
	case !both && m.active:
		m.active = false
		m.total += Duration(m.sim.now - m.since)
	}
}

// Total returns the accumulated overlap, including any interval still open.
func (m *OverlapMeter) Total() Duration {
	if m.active {
		return m.total + Duration(m.sim.now-m.since)
	}
	return m.total
}

// ConcurrencyMeter measures the total virtual time during which at least
// `threshold` resources of a set are simultaneously busy. The device-sharing
// scheduler uses it with threshold 2 over the per-stream compute resources
// to report cross-stream overlap — the utilization a single pipeline leaves
// idle — without depending on trace recording.
type ConcurrencyMeter struct {
	sim       *Sim
	resources []*Resource
	threshold int
	total     Duration
	since     Time
	active    bool
}

// MeterConcurrency attaches a concurrency meter to a set of resources.
// Like MeterOverlap, it must be created before any job is submitted to any
// of them. A threshold below 1 is clamped to 1.
func (s *Sim) MeterConcurrency(threshold int, rs ...*Resource) *ConcurrencyMeter {
	if threshold < 1 {
		threshold = 1
	}
	m := &ConcurrencyMeter{sim: s, resources: rs, threshold: threshold}
	for _, r := range rs {
		r.meters = append(r.meters, m)
	}
	return m
}

func (m *ConcurrencyMeter) update() {
	n := 0
	for _, r := range m.resources {
		if r.busy > 0 {
			n++
		}
	}
	on := n >= m.threshold
	switch {
	case on && !m.active:
		m.active = true
		m.since = m.sim.now
	case !on && m.active:
		m.active = false
		m.total += Duration(m.sim.now - m.since)
	}
}

// Total returns the accumulated concurrency time, including any interval
// still open.
func (m *ConcurrencyMeter) Total() Duration {
	if m.active {
		return m.total + Duration(m.sim.now-m.since)
	}
	return m.total
}
