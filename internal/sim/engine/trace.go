package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Category classifies a span for the observability layer: what kind of
// activity the span represents, independent of which resource it ran on.
// Categories are the unit of aggregation for the derived-metrics layer
// (internal/sim/metrics) and the "cat" field of the Chrome trace export.
type Category string

// Span categories.
const (
	// CatDMAIn is a host-to-device DMA occupying a PCIe channel.
	CatDMAIn Category = "dma-in"
	// CatDMAOut is a device-to-host DMA occupying a PCIe channel.
	CatDMAOut Category = "dma-out"
	// CatKernel is device compute: a kernel execution or persistent-kernel
	// block on the coprocessor fabric.
	CatKernel Category = "kernel"
	// CatHost is host-side work: compute segments and per-offload driver
	// overheads charged to the host thread.
	CatHost Category = "host"
	// CatAlloc is device-memory management: allocations, frees, and the
	// host-side allocation overhead spans.
	CatAlloc Category = "alloc"
	// CatFault is an injected failure or its direct cost: a failed DMA
	// attempt occupying the channel, a failed launch, a hang, a watchdog
	// abort.
	CatFault Category = "fault"
	// CatRetry is a recovery reissue of a previously failed operation.
	CatRetry Category = "retry"
	// CatFallback is a step down the runtime's degradation ladder.
	CatFallback Category = "fallback"
)

// Span records one completed job on a resource timeline, or (when Instant
// is set) a point event such as a fault decision or a fallback.
type Span struct {
	Resource string
	Label    string
	// Cat classifies the activity; empty for spans recorded before the
	// emitter was categorised (treated as uncategorised by the metrics
	// layer).
	Cat   Category
	Start Time
	End   Time
	// Instant marks a zero-duration point event (Chrome "i" phase) as
	// opposed to a genuine job that happened to take zero time.
	Instant bool
	// Args carries structured details (payload bytes, retry attempt,
	// fault kind, ...). Values must be JSON-serializable; keys are
	// emitter-defined.
	Args map[string]any
}

// Duration returns the span's length.
func (sp Span) Duration() Duration { return Duration(sp.End - sp.Start) }

// Trace accumulates completed spans for post-run inspection. It exists for
// tests ("did the transfer of block i+1 overlap the compute of block i?"),
// for the Chrome trace export of cmd/compsim, and as the input of the
// derived-metrics layer. Disabling a trace must never change simulation
// outcomes: recording is strictly write-only with respect to the engine.
type Trace struct {
	spans   []Span
	enabled bool
}

// NewTrace returns an enabled trace recorder.
func NewTrace() *Trace { return &Trace{enabled: true} }

// SetEnabled toggles recording; disabling keeps existing spans.
func (t *Trace) SetEnabled(on bool) { t.enabled = on }

// Enabled reports whether the trace is recording.
func (t *Trace) Enabled() bool { return t.enabled }

// Add records a span if recording is enabled.
func (t *Trace) Add(sp Span) {
	if t.enabled {
		t.spans = append(t.spans, sp)
	}
}

// Instant records a point event at the given time if recording is enabled.
func (t *Trace) Instant(resource, label string, cat Category, at Time, args map[string]any) {
	if !t.enabled {
		return
	}
	t.spans = append(t.spans, Span{
		Resource: resource,
		Label:    label,
		Cat:      cat,
		Start:    at,
		End:      at,
		Instant:  true,
		Args:     args,
	})
}

// Spans returns all recorded spans in completion order.
func (t *Trace) Spans() []Span { return t.spans }

// ByResource returns the spans recorded for one resource, sorted by start.
func (t *Trace) ByResource(name string) []Span {
	var out []Span
	for _, sp := range t.spans {
		if sp.Resource == name {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ByCategory returns the spans of one category, sorted by start.
func (t *Trace) ByCategory(cat Category) []Span {
	var out []Span
	for _, sp := range t.spans {
		if sp.Cat == cat {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Resources returns the sorted set of resource names with recorded spans.
func (t *Trace) Resources() []string {
	seen := map[string]bool{}
	for _, sp := range t.spans {
		seen[sp.Resource] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BusyTime sums the durations of the non-instant spans recorded for one
// resource — the trace-derived counterpart of Resource.BusyTime, used by
// the Stats↔Trace consistency suite.
func (t *Trace) BusyTime(resource string) Duration {
	var total Duration
	for _, sp := range t.spans {
		if sp.Resource == resource && !sp.Instant {
			total += sp.Duration()
		}
	}
	return total
}

// Overlap reports the total time during which both a-labelled and b-labelled
// spans were simultaneously active. It is the measurement behind the
// paper's central claim: data streaming overlaps transfer with compute.
// Instant spans contribute nothing.
func (t *Trace) Overlap(aResource, bResource string) Duration {
	a := t.ByResource(aResource)
	b := t.ByResource(bResource)
	var total Duration
	for _, x := range a {
		for _, y := range b {
			lo := x.Start
			if y.Start > lo {
				lo = y.Start
			}
			hi := x.End
			if y.End < hi {
				hi = y.End
			}
			if hi > lo {
				total += Duration(hi - lo)
			}
		}
	}
	return total
}

// sorted returns a copy of the spans in (start, resource, label) order —
// the canonical order of every renderer and exporter.
func (t *Trace) sorted() []Span {
	spans := append([]Span(nil), t.spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Resource != spans[j].Resource {
			return spans[i].Resource < spans[j].Resource
		}
		return spans[i].Label < spans[j].Label
	})
	return spans
}

// String renders a compact textual timeline, one line per span.
func (t *Trace) String() string {
	var b strings.Builder
	for _, sp := range t.sorted() {
		cat := string(sp.Cat)
		if cat == "" {
			cat = "-"
		}
		marker := ""
		if sp.Instant {
			marker = " !"
		}
		fmt.Fprintf(&b, "%12v %12v  %-10s %-9s %s%s\n", sp.Start, sp.End, sp.Resource, cat, sp.Label, marker)
	}
	return b.String()
}
