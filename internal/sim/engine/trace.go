package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Span records one completed job on a resource timeline.
type Span struct {
	Resource string
	Label    string
	Start    Time
	End      Time
}

// Duration returns the span's length.
func (sp Span) Duration() Duration { return Duration(sp.End - sp.Start) }

// Trace accumulates completed spans for post-run inspection. It exists for
// tests ("did the transfer of block i+1 overlap the compute of block i?")
// and for the -trace flag of cmd/compsim.
type Trace struct {
	spans   []Span
	enabled bool
}

// NewTrace returns an enabled trace recorder.
func NewTrace() *Trace { return &Trace{enabled: true} }

// SetEnabled toggles recording; disabling keeps existing spans.
func (t *Trace) SetEnabled(on bool) { t.enabled = on }

// Add records a span if recording is enabled.
func (t *Trace) Add(sp Span) {
	if t.enabled {
		t.spans = append(t.spans, sp)
	}
}

// Spans returns all recorded spans in completion order.
func (t *Trace) Spans() []Span { return t.spans }

// ByResource returns the spans recorded for one resource, sorted by start.
func (t *Trace) ByResource(name string) []Span {
	var out []Span
	for _, sp := range t.spans {
		if sp.Resource == name {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Overlap reports the total time during which both a-labelled and b-labelled
// spans were simultaneously active. It is the measurement behind the
// paper's central claim: data streaming overlaps transfer with compute.
func (t *Trace) Overlap(aResource, bResource string) Duration {
	a := t.ByResource(aResource)
	b := t.ByResource(bResource)
	var total Duration
	for _, x := range a {
		for _, y := range b {
			lo := x.Start
			if y.Start > lo {
				lo = y.Start
			}
			hi := x.End
			if y.End < hi {
				hi = y.End
			}
			if hi > lo {
				total += Duration(hi - lo)
			}
		}
	}
	return total
}

// String renders a compact textual timeline, one line per span.
func (t *Trace) String() string {
	var b strings.Builder
	spans := append([]Span(nil), t.spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Resource < spans[j].Resource
	})
	for _, sp := range spans {
		fmt.Fprintf(&b, "%12v %12v  %-10s %s\n", sp.Start, sp.End, sp.Resource, sp.Label)
	}
	return b.String()
}
