// Package fault provides deterministic, seeded fault injection for the
// simulated platform.
//
// The paper's platform — LEO offloads over PCIe to a Xeon Phi — fails in
// practice: DMA transfers abort transiently, kernel launches fail, device
// threads wedge, and the 8 GB card runs out of memory. This package turns
// those failure modes into a reproducible schedule: every component that
// can fail asks the shared Injector for a per-kind decision, and the
// decision for the Nth query of a kind is a pure function of (seed, kind,
// N). The same seed therefore yields the same fault schedule, the same
// recovery actions, and bit-identical Stats — which is what makes chaos
// runs regressions instead of flakes.
package fault

import (
	"fmt"

	"comp/internal/sim/engine"
)

// Kind identifies one injectable failure mode.
type Kind int

// Failure modes.
const (
	// DMA is a transient PCIe transfer failure: the attempt occupies the
	// channel for a latency penalty, then reports an error.
	DMA Kind = iota
	// Launch is a kernel launch failure: the launch overhead is paid but
	// the kernel never starts.
	Launch
	// Hang is a device hang: the kernel starts and never completes; only a
	// watchdog abort frees the device.
	Hang
	// Alloc is a device-memory allocation failure independent of capacity
	// (fragmentation, driver error).
	Alloc

	numKinds
)

func (k Kind) String() string {
	switch k {
	case DMA:
		return "dma"
	case Launch:
		return "launch"
	case Hang:
		return "hang"
	case Alloc:
		return "alloc"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Config is a fault schedule: a seed plus one failure probability per kind.
// The zero value injects nothing.
type Config struct {
	// Seed selects the schedule; every rate-equal config with the same seed
	// produces identical decisions.
	Seed int64
	// Per-attempt failure probabilities in [0, 1].
	DMARate    float64
	LaunchRate float64
	HangRate   float64
	AllocRate  float64
	// MaxFaults caps the total number of injected faults (0 = unlimited).
	MaxFaults int64
}

// Uniform returns a schedule with every kind failing at the same rate.
func Uniform(seed int64, rate float64) Config {
	return Config{Seed: seed, DMARate: rate, LaunchRate: rate, HangRate: rate, AllocRate: rate}
}

// Kinds lists every injectable kind in declaration order.
func Kinds() []Kind { return []Kind{DMA, Launch, Hang, Alloc} }

// FromRates returns a schedule with non-uniform per-kind rates: kinds
// absent from the map do not fire. Unknown kinds are ignored, so a rate
// map can be built from user input and validated by Config.Validate.
func FromRates(seed int64, rates map[Kind]float64) Config {
	c := Config{Seed: seed}
	for k, r := range rates {
		switch k {
		case DMA:
			c.DMARate = r
		case Launch:
			c.LaunchRate = r
		case Hang:
			c.HangRate = r
		case Alloc:
			c.AllocRate = r
		}
	}
	return c
}

// Rate returns the configured rate for one kind (0 for unknown kinds).
func (c Config) Rate(k Kind) float64 {
	switch k {
	case DMA:
		return c.DMARate
	case Launch:
		return c.LaunchRate
	case Hang:
		return c.HangRate
	case Alloc:
		return c.AllocRate
	}
	return 0
}

// Describe renders the schedule compactly: the seed, every non-zero
// per-kind rate in declaration order, and the fault cap when set. The
// zero value describes itself as injecting nothing.
func (c Config) Describe() string {
	if !c.Enabled() {
		return "faults: off"
	}
	s := fmt.Sprintf("faults: seed %d", c.Seed)
	for _, k := range Kinds() {
		if r := c.Rate(k); r > 0 {
			s += fmt.Sprintf(" %s=%g", k, r)
		}
	}
	if c.MaxFaults > 0 {
		s += fmt.Sprintf(" max=%d", c.MaxFaults)
	}
	return s
}

// String implements fmt.Stringer as Describe.
func (c Config) String() string { return c.Describe() }

// Enabled reports whether any fault kind can fire.
func (c Config) Enabled() bool {
	return c.DMARate > 0 || c.LaunchRate > 0 || c.HangRate > 0 || c.AllocRate > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DMARate", c.DMARate},
		{"LaunchRate", c.LaunchRate},
		{"HangRate", c.HangRate},
		{"AllocRate", c.AllocRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", r.name, r.v)
		}
	}
	if c.MaxFaults < 0 {
		return fmt.Errorf("fault: MaxFaults %d < 0", c.MaxFaults)
	}
	return nil
}

// Injector hands out fault decisions. One injector is shared by every sim
// component of a run so MaxFaults is a global budget; construct with New.
type Injector struct {
	cfg      Config
	rates    [numKinds]float64
	queries  [numKinds]int64
	injected [numKinds]int64
	total    int64
	tr       *engine.Trace
	now      func() engine.Time
}

// SetTrace attaches a span recorder and a clock; every injected fault is
// then recorded as an instant event on the "fault" pseudo-resource at the
// time the decision is handed out (issue time). Recording never influences
// the schedule: decisions stay a pure function of (seed, kind, N).
func (i *Injector) SetTrace(tr *engine.Trace, now func() engine.Time) {
	i.tr = tr
	i.now = now
}

// New creates an injector for the given schedule; it panics on an invalid
// config (matching the other sim constructors).
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	inj := &Injector{cfg: cfg}
	inj.rates[DMA] = cfg.DMARate
	inj.rates[Launch] = cfg.LaunchRate
	inj.rates[Hang] = cfg.HangRate
	inj.rates[Alloc] = cfg.AllocRate
	return inj
}

// Next decides whether the current attempt of the given kind fails. The
// decision for the Nth query of a kind depends only on (seed, kind, N), so
// kinds do not perturb each other and the schedule survives unrelated
// reordering of other kinds' queries.
func (i *Injector) Next(k Kind) bool {
	n := i.queries[k]
	i.queries[k]++
	if i.rates[k] <= 0 {
		return false
	}
	if i.cfg.MaxFaults > 0 && i.total >= i.cfg.MaxFaults {
		return false
	}
	if sample(i.cfg.Seed, k, n) >= i.rates[k] {
		return false
	}
	i.injected[k]++
	i.total++
	if i.tr != nil {
		i.tr.Instant("fault", "inject:"+k.String(), engine.CatFault, i.now(), map[string]any{
			"kind": k.String(), "query": n, "nth": i.total,
		})
	}
	return true
}

// Injected returns the total number of faults fired so far.
func (i *Injector) Injected() int64 { return i.total }

// InjectedKind returns the faults fired for one kind.
func (i *Injector) InjectedKind(k Kind) int64 { return i.injected[k] }

// Queries returns the number of decisions requested for one kind.
func (i *Injector) Queries(k Kind) int64 { return i.queries[k] }

// sample maps (seed, kind, n) to a uniform value in [0, 1) with a
// splitmix64-style finalizer. No mutable PRNG state: the Nth decision of a
// kind is a pure function of its inputs.
func sample(seed int64, k Kind, n int64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(k+1)*0xD1B54A32D192ED03 + uint64(n)*0x8CB92BA72F3D8DD7
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}
