package fault

import "testing"

func decisions(cfg Config, k Kind, n int) []bool {
	inj := New(cfg)
	out := make([]bool, n)
	for i := range out {
		out[i] = inj.Next(k)
	}
	return out
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Uniform(42, 0.3)
	a := decisions(cfg, DMA, 1000)
	b := decisions(cfg, DMA, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical injectors", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := decisions(Uniform(1, 0.3), DMA, 1000)
	b := decisions(Uniform(2, 0.3), DMA, 1000)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 1000-decision schedules")
	}
}

func TestKindsIndependent(t *testing.T) {
	// The Nth DMA decision must not depend on how many Launch decisions
	// happened in between.
	a := New(Uniform(7, 0.4))
	b := New(Uniform(7, 0.4))
	var seqA, seqB []bool
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.Next(DMA))
	}
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			b.Next(Launch)
			b.Next(Hang)
		}
		seqB = append(seqB, b.Next(DMA))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("DMA decision %d perturbed by interleaved Launch/Hang queries", i)
		}
	}
}

func TestRateZeroAndOne(t *testing.T) {
	for _, d := range decisions(Uniform(5, 0), Launch, 500) {
		if d {
			t.Fatal("rate 0 injected a fault")
		}
	}
	for i, d := range decisions(Uniform(5, 1), Launch, 500) {
		if !d {
			t.Fatalf("rate 1 skipped decision %d", i)
		}
	}
}

func TestRateRoughlyHonored(t *testing.T) {
	inj := New(Uniform(99, 0.25))
	n := 10000
	hits := 0
	for i := 0; i < n; i++ {
		if inj.Next(Alloc) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.2 || got > 0.3 {
		t.Fatalf("rate 0.25 fired at %.3f over %d samples", got, n)
	}
	if inj.Injected() != int64(hits) || inj.InjectedKind(Alloc) != int64(hits) {
		t.Fatalf("counters disagree: total=%d kind=%d hits=%d",
			inj.Injected(), inj.InjectedKind(Alloc), hits)
	}
	if inj.Queries(Alloc) != int64(n) {
		t.Fatalf("queries = %d, want %d", inj.Queries(Alloc), n)
	}
}

func TestMaxFaultsCapsBudget(t *testing.T) {
	cfg := Uniform(3, 1)
	cfg.MaxFaults = 5
	inj := New(cfg)
	for i := 0; i < 100; i++ {
		inj.Next(DMA)
		inj.Next(Hang)
	}
	if inj.Injected() != 5 {
		t.Fatalf("injected %d faults, budget was 5", inj.Injected())
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if err := (Config{DMARate: 1.5}).Validate(); err == nil {
		t.Fatal("DMARate 1.5 accepted")
	}
	if err := (Config{LaunchRate: -0.1}).Validate(); err == nil {
		t.Fatal("LaunchRate -0.1 accepted")
	}
	if err := (Config{MaxFaults: -1}).Validate(); err == nil {
		t.Fatal("MaxFaults -1 accepted")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	if !Uniform(0, 0.1).Enabled() {
		t.Fatal("uniform 0.1 config reports disabled")
	}
}

// TestFromRatesAndDescribe is the table test for the non-uniform
// constructor and the human-readable schedule description.
func TestFromRatesAndDescribe(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		want  string
		rates map[Kind]float64
	}{
		{"zero", Config{}, "faults: off", nil},
		{"uniform", Uniform(7, 0.25), "faults: seed 7 dma=0.25 launch=0.25 hang=0.25 alloc=0.25", nil},
		{
			"dma-only", FromRates(3, map[Kind]float64{DMA: 0.5}),
			"faults: seed 3 dma=0.5",
			map[Kind]float64{DMA: 0.5, Launch: 0, Hang: 0, Alloc: 0},
		},
		{
			"storm", FromRates(11, map[Kind]float64{Launch: 0.4, Hang: 0.2}),
			"faults: seed 11 launch=0.4 hang=0.2",
			map[Kind]float64{DMA: 0, Launch: 0.4, Hang: 0.2, Alloc: 0},
		},
		{
			"unknown-kind-ignored", FromRates(1, map[Kind]float64{Kind(99): 0.9, Alloc: 0.1}),
			"faults: seed 1 alloc=0.1",
			map[Kind]float64{DMA: 0, Launch: 0, Hang: 0, Alloc: 0.1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.cfg.Describe(); got != tc.want {
				t.Errorf("Describe() = %q, want %q", got, tc.want)
			}
			if got := tc.cfg.String(); got != tc.want {
				t.Errorf("String() = %q, want %q", got, tc.want)
			}
			for k, r := range tc.rates {
				if got := tc.cfg.Rate(k); got != r {
					t.Errorf("Rate(%s) = %v, want %v", k, got, r)
				}
			}
			if err := tc.cfg.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
	capped := Uniform(2, 0.5)
	capped.MaxFaults = 9
	if got, want := capped.Describe(), "faults: seed 2 dma=0.5 launch=0.5 hang=0.5 alloc=0.5 max=9"; got != want {
		t.Errorf("capped Describe() = %q, want %q", got, want)
	}
	if got := (Config{}).Rate(Kind(42)); got != 0 {
		t.Errorf("Rate(unknown) = %v, want 0", got)
	}
}

// TestFromRatesScheduleMatchesFieldConfig proves FromRates is only a
// constructor: an injector built from it behaves identically to one built
// from the equivalent field-set Config.
func TestFromRatesScheduleMatchesFieldConfig(t *testing.T) {
	a := New(FromRates(5, map[Kind]float64{DMA: 0.3, Hang: 0.7}))
	b := New(Config{Seed: 5, DMARate: 0.3, HangRate: 0.7})
	for i := 0; i < 500; i++ {
		for _, k := range Kinds() {
			if x, y := a.Next(k), b.Next(k); x != y {
				t.Fatalf("decision %d for %s diverged: FromRates=%v fields=%v", i, k, x, y)
			}
		}
	}
	if a.Injected() == 0 {
		t.Fatal("schedule injected nothing at rates 0.3/0.7 over 500 queries")
	}
}
