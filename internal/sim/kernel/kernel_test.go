package kernel

import (
	"testing"

	"comp/internal/sim/engine"
)

const ovh = 100 * engine.Microsecond

func TestLaunchPaysOverhead(t *testing.T) {
	s := engine.New()
	l := NewLauncher(s, ovh)
	done := l.Launch(nil, "k", engine.Millisecond)
	s.Run()
	want := engine.Time(ovh + engine.Millisecond)
	if done.Time() != want {
		t.Fatalf("kernel done at %v, want %v", done.Time(), want)
	}
	if l.Launches() != 1 {
		t.Fatalf("launches = %d, want 1", l.Launches())
	}
}

func TestKernelsSerialize(t *testing.T) {
	s := engine.New()
	l := NewLauncher(s, ovh)
	l.Launch(nil, "a", engine.Millisecond)
	d2 := l.Launch(nil, "b", engine.Millisecond)
	s.Run()
	want := engine.Time(2 * (ovh + engine.Millisecond))
	if d2.Time() != want {
		t.Fatalf("second kernel done at %v, want %v", d2.Time(), want)
	}
}

func TestLaunchAfterWaits(t *testing.T) {
	s := engine.New()
	l := NewLauncher(s, ovh)
	ready := s.NewEvent("data")
	done := l.Launch(ready, "k", engine.Millisecond)
	s.At(engine.Time(5*engine.Millisecond), func() { ready.Fire() })
	s.Run()
	want := engine.Time(5*engine.Millisecond + ovh + engine.Millisecond)
	if done.Time() != want {
		t.Fatalf("gated kernel done at %v, want %v", done.Time(), want)
	}
}

func TestPersistentPaysOverheadOnce(t *testing.T) {
	const n = 20
	blockDur := engine.Millisecond

	// Relaunching per block: n × (overhead + dur).
	s1 := engine.New()
	l1 := NewLauncher(s1, ovh)
	var last *engine.Event
	for i := 0; i < n; i++ {
		last = l1.Launch(nil, "k", blockDur)
	}
	s1.Run()
	relaunch := last.Time()
	if l1.Launches() != n {
		t.Fatalf("relaunch count = %d, want %d", l1.Launches(), n)
	}

	// Persistent kernel: overhead + n × dur.
	s2 := engine.New()
	l2 := NewLauncher(s2, ovh)
	p := l2.LaunchPersistent("k")
	for i := 0; i < n; i++ {
		p.RunBlock(nil, "blk", blockDur)
	}
	exit := p.Exit()
	s2.Run()
	persistent := exit.Time()
	if l2.Launches() != 1 {
		t.Fatalf("persistent launches = %d, want 1", l2.Launches())
	}
	if p.Blocks() != n {
		t.Fatalf("blocks = %d, want %d", p.Blocks(), n)
	}

	wantRelaunch := engine.Time(n * (ovh + blockDur))
	wantPersistent := engine.Time(ovh + n*blockDur)
	if relaunch != wantRelaunch {
		t.Fatalf("relaunch makespan %v, want %v", relaunch, wantRelaunch)
	}
	if persistent != wantPersistent {
		t.Fatalf("persistent makespan %v, want %v", persistent, wantPersistent)
	}
	saved := relaunch - persistent
	if saved != engine.Time((n-1)*ovh) {
		t.Fatalf("saved %v, want %v", saved, (n-1)*ovh)
	}
}

func TestPersistentBlockWaitsForSignal(t *testing.T) {
	s := engine.New()
	l := NewLauncher(s, ovh)
	p := l.LaunchPersistent("k")
	sig := s.NewEvent("block2-data")
	p.RunBlock(nil, "b1", engine.Millisecond)
	d2 := p.RunBlock(sig, "b2", engine.Millisecond)
	s.At(engine.Time(10*engine.Millisecond), func() { sig.Fire() })
	s.Run()
	want := engine.Time(10*engine.Millisecond + engine.Millisecond)
	if d2.Time() != want {
		t.Fatalf("signalled block done at %v, want %v", d2.Time(), want)
	}
}

func TestPersistentBlocksStayOrdered(t *testing.T) {
	// Even if a later block's data is ready first, blocks run in order.
	s := engine.New()
	l := NewLauncher(s, 0)
	p := l.LaunchPersistent("k")
	slow := s.NewEvent("slow")
	d1 := p.RunBlock(slow, "b1", engine.Millisecond)
	d2 := p.RunBlock(nil, "b2", engine.Millisecond)
	s.At(engine.Time(4*engine.Millisecond), func() { slow.Fire() })
	s.Run()
	if d2.Time() <= d1.Time() {
		t.Fatalf("block2 at %v before block1 at %v; persistent kernel must stay FIFO", d2.Time(), d1.Time())
	}
}

func TestRunBlockAfterExitPanics(t *testing.T) {
	s := engine.New()
	l := NewLauncher(s, 0)
	p := l.LaunchPersistent("k")
	p.Exit()
	defer func() {
		if recover() == nil {
			t.Error("RunBlock after Exit did not panic")
		}
	}()
	p.RunBlock(nil, "b", engine.Millisecond)
}

func TestComputeBusyAccounting(t *testing.T) {
	s := engine.New()
	l := NewLauncher(s, ovh)
	l.Launch(nil, "k", engine.Millisecond)
	s.Run()
	if got := l.ComputeBusy(); got != ovh+engine.Millisecond {
		t.Fatalf("compute busy %v, want %v", got, ovh+engine.Millisecond)
	}
	if l.Overhead() != ovh {
		t.Fatalf("Overhead() = %v, want %v", l.Overhead(), ovh)
	}
}
