// Package kernel models kernel execution on the coprocessor.
//
// A Launcher wraps the device's compute fabric as a single FIFO resource
// (offloaded kernels from one process serialize on the card) and charges a
// fixed launch overhead per kernel start. Persistent kernels — the paper's
// "reusing MIC threads" optimization (§III-C) — pay the overhead once and
// then process successive blocks on COI-style signals with no further
// launch cost.
package kernel

import (
	"comp/internal/sim/engine"
)

// Launcher schedules kernels on the device compute resource.
type Launcher struct {
	sim      *engine.Sim
	compute  *engine.Resource
	overhead engine.Duration
	launches int64
}

// NewLauncher creates a launcher with the given per-launch overhead.
func NewLauncher(sim *engine.Sim, overhead engine.Duration) *Launcher {
	return &Launcher{
		sim:      sim,
		compute:  sim.NewResource("mic-compute", 1),
		overhead: overhead,
	}
}

// Overhead returns the per-launch cost.
func (l *Launcher) Overhead() engine.Duration { return l.overhead }

// Launches returns the number of kernel launches performed so far. Offload
// merging and persistent kernels exist to shrink this number.
func (l *Launcher) Launches() int64 { return l.launches }

// ComputeBusy returns accumulated device compute busy time.
func (l *Launcher) ComputeBusy() engine.Duration { return l.compute.BusyTime() }

// Launch starts a kernel of the given duration once ready fires (nil means
// immediately), paying the launch overhead. It returns the completion event.
func (l *Launcher) Launch(ready *engine.Event, label string, dur engine.Duration) *engine.Event {
	l.launches++
	if ready == nil {
		return l.compute.Submit(label, l.overhead+dur)
	}
	return l.compute.SubmitAfter(ready, label, l.overhead+dur)
}

// Persistent is a kernel launched once whose threads stay resident,
// processing successive blocks as the host signals that their data is
// ready. Blocks run in submission order; each runs after both its ready
// event and the previous block have completed. Only the initial launch
// pays the overhead.
type Persistent struct {
	l       *Launcher
	label   string
	prev    *engine.Event
	blocks  int64
	started bool
}

// LaunchPersistent starts a persistent kernel. The launch overhead is paid
// before the first block runs.
func (l *Launcher) LaunchPersistent(label string) *Persistent {
	l.launches++
	// The launch itself occupies the device for the overhead period.
	startup := l.compute.Submit(label+":launch", l.overhead)
	return &Persistent{l: l, label: label, prev: startup, started: true}
}

// RunBlock schedules one computation block; it begins when both ready has
// fired and all earlier blocks are done. Returns the block's completion
// event.
func (p *Persistent) RunBlock(ready *engine.Event, label string, dur engine.Duration) *engine.Event {
	if !p.started {
		panic("kernel: RunBlock on exited persistent kernel " + p.label)
	}
	p.blocks++
	deps := p.prev
	if ready != nil {
		deps = engine.AllOf(p.l.sim, p.prev, ready)
	}
	done := p.l.compute.SubmitAfter(deps, label, dur)
	p.prev = done
	return done
}

// Exit marks the kernel finished; the returned event fires when the last
// block completes and the device threads are released.
func (p *Persistent) Exit() *engine.Event {
	p.started = false
	return p.prev
}

// Blocks returns the number of blocks processed.
func (p *Persistent) Blocks() int64 { return p.blocks }
