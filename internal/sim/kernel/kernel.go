// Package kernel models kernel execution on the coprocessor.
//
// A Launcher wraps the device's compute fabric as a single FIFO resource
// (offloaded kernels from one process serialize on the card) and charges a
// fixed launch overhead per kernel start. Persistent kernels — the paper's
// "reusing MIC threads" optimization (§III-C) — pay the overhead once and
// then process successive blocks on COI-style signals with no further
// launch cost.
package kernel

import (
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
)

// Outcome classifies one launch attempt under fault injection.
type Outcome int

// Launch attempt outcomes.
const (
	// OK: the kernel ran to completion.
	OK Outcome = iota
	// LaunchFail: the launch overhead was paid but the kernel never
	// started; the device is free again when the returned event fires.
	LaunchFail
	// Hang: the kernel started and wedged; it holds the device until the
	// watchdog occupancy elapses, then the returned event fires.
	Hang
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case LaunchFail:
		return "launch-fail"
	case Hang:
		return "hang"
	}
	return "outcome?"
}

// Launcher schedules kernels on the device compute resource.
type Launcher struct {
	sim      *engine.Sim
	compute  *engine.Resource
	overhead engine.Duration
	launches int64

	inj    *fault.Injector
	hangDt engine.Duration // device occupancy of a hung kernel until watchdog abort
	faults int64
}

// NewLauncher creates a launcher with the given per-launch overhead over
// the whole device compute fabric.
func NewLauncher(sim *engine.Sim, overhead engine.Duration) *Launcher {
	return NewLauncherOn(sim, "mic-compute", overhead)
}

// NewLauncherOn is NewLauncher with an explicit compute-resource name. The
// device-sharing scheduler creates one launcher per stream ("mic-s0",
// "mic-s1", ...), each modelling the core partition that stream owns;
// kernels on different streams then run concurrently while kernels within
// a stream keep their FIFO order.
func NewLauncherOn(sim *engine.Sim, resource string, overhead engine.Duration) *Launcher {
	compute := sim.NewResource(resource, 1)
	compute.SetCategory(engine.CatKernel)
	return &Launcher{
		sim:      sim,
		compute:  compute,
		overhead: overhead,
	}
}

// Resource exposes the device compute fabric; the runtime attaches
// engine.OverlapMeters to it so Stats.Overlap is trace-independent.
func (l *Launcher) Resource() *engine.Resource { return l.compute }

// Overhead returns the per-launch cost.
func (l *Launcher) Overhead() engine.Duration { return l.overhead }

// Launches returns the number of kernel launches performed so far. Offload
// merging and persistent kernels exist to shrink this number.
func (l *Launcher) Launches() int64 { return l.launches }

// ComputeBusy returns accumulated device compute busy time.
func (l *Launcher) ComputeBusy() engine.Duration { return l.compute.BusyTime() }

// SetFaults attaches a fault injector and sets how long a hung kernel
// occupies the device before the watchdog aborts it. A nil injector (the
// default) makes every TryLaunch succeed.
func (l *Launcher) SetFaults(inj *fault.Injector, hangOccupancy engine.Duration) {
	l.inj = inj
	l.hangDt = hangOccupancy
}

// FaultCount returns the number of injected launch failures and hangs.
func (l *Launcher) FaultCount() int64 { return l.faults }

// TryLaunch is Launch under fault injection. A failed launch occupies the
// device for the overhead only and does not count as a launch; a hang
// counts as a launch and holds the device for overhead plus the watchdog
// occupancy. In both cases the returned event fires when the device is
// released so the caller can chain a retry.
func (l *Launcher) TryLaunch(ready *engine.Event, label string, dur engine.Duration) (*engine.Event, Outcome) {
	if l.inj != nil && l.inj.Next(fault.Launch) {
		l.faults++
		args := map[string]any{"kind": "launch-fail"}
		return l.compute.SubmitTagged(ready, label+"!launchfail", engine.CatFault, l.overhead, args), LaunchFail
	}
	if l.inj != nil && l.inj.Next(fault.Hang) {
		l.faults++
		l.launches++
		// A hang counts as a launch, so its span carries the launch marker
		// the Stats↔Trace consistency suite counts.
		args := map[string]any{"kind": "hang", "launch": true}
		return l.compute.SubmitTagged(ready, label+"!hang", engine.CatFault, l.overhead+l.hangDt, args), Hang
	}
	return l.Launch(ready, label, dur), OK
}

// Launch starts a kernel of the given duration once ready fires (nil means
// immediately), paying the launch overhead. It returns the completion event.
func (l *Launcher) Launch(ready *engine.Event, label string, dur engine.Duration) *engine.Event {
	l.launches++
	args := map[string]any{"launch": true, "overhead": int64(l.overhead)}
	return l.compute.SubmitTagged(ready, label, engine.CatKernel, l.overhead+dur, args)
}

// Persistent is a kernel launched once whose threads stay resident,
// processing successive blocks as the host signals that their data is
// ready. Blocks run in submission order; each runs after both its ready
// event and the previous block have completed. Only the initial launch
// pays the overhead.
type Persistent struct {
	l       *Launcher
	label   string
	prev    *engine.Event
	blocks  int64
	started bool
}

// LaunchPersistent starts a persistent kernel. The launch overhead is paid
// before the first block runs.
func (l *Launcher) LaunchPersistent(label string) *Persistent {
	l.launches++
	// The launch itself occupies the device for the overhead period.
	args := map[string]any{"launch": true, "persistent": true}
	startup := l.compute.SubmitTagged(nil, label+":launch", engine.CatKernel, l.overhead, args)
	return &Persistent{l: l, label: label, prev: startup, started: true}
}

// RunBlock schedules one computation block; it begins when both ready has
// fired and all earlier blocks are done. Returns the block's completion
// event.
func (p *Persistent) RunBlock(ready *engine.Event, label string, dur engine.Duration) *engine.Event {
	if !p.started {
		panic("kernel: RunBlock on exited persistent kernel " + p.label)
	}
	p.blocks++
	deps := p.prev
	if ready != nil {
		deps = engine.AllOf(p.l.sim, p.prev, ready)
	}
	args := map[string]any{"persistent": true, "block": p.blocks}
	done := p.l.compute.SubmitTagged(deps, label, engine.CatKernel, dur, args)
	p.prev = done
	return done
}

// TryRunBlock is RunBlock under fault injection: the resident threads may
// wedge on a block (launch failures do not apply — there is no launch).
// A hang holds the device for the watchdog occupancy and becomes the new
// tail of the block chain, so a retried block naturally runs after the
// abort. The returned event fires when the device is released.
func (p *Persistent) TryRunBlock(ready *engine.Event, label string, dur engine.Duration) (*engine.Event, Outcome) {
	if !p.started {
		panic("kernel: TryRunBlock on exited persistent kernel " + p.label)
	}
	if p.l.inj != nil && p.l.inj.Next(fault.Hang) {
		p.l.faults++
		deps := p.prev
		if ready != nil {
			deps = engine.AllOf(p.l.sim, p.prev, ready)
		}
		args := map[string]any{"kind": "hang", "persistent": true}
		done := p.l.compute.SubmitTagged(deps, label+"!hang", engine.CatFault, p.l.hangDt, args)
		p.prev = done
		return done, Hang
	}
	return p.RunBlock(ready, label, dur), OK
}

// Exit marks the kernel finished; the returned event fires when the last
// block completes and the device threads are released.
func (p *Persistent) Exit() *engine.Event {
	p.started = false
	return p.prev
}

// Blocks returns the number of blocks processed.
func (p *Persistent) Blocks() int64 { return p.blocks }
