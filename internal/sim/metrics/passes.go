package metrics

import "comp/internal/pass"

// PassCount tallies one pass's decisions: how often its transformations
// fired versus declined (either skip verdict).
type PassCount struct {
	Applied int64 `json:"applied"`
	Skipped int64 `json:"skipped"`
}

// PassCounts tabulates per-pass applied/skipped counters from a remark
// trail, keyed by the pipeline stage name (Remark.Pass).
func PassCounts(rs pass.Remarks) map[string]PassCount {
	if len(rs) == 0 {
		return nil
	}
	out := map[string]PassCount{}
	for _, r := range rs {
		c := out[r.Pass]
		if r.Verdict.Applied() {
			c.Applied++
		} else {
			c.Skipped++
		}
		out[r.Pass] = c
	}
	return out
}

// MergePassCounts accumulates src into dst, returning dst (allocated when
// nil and src is not empty).
func MergePassCounts(dst, src map[string]PassCount) map[string]PassCount {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = map[string]PassCount{}
	}
	for name, c := range src {
		d := dst[name]
		d.Applied += c.Applied
		d.Skipped += c.Skipped
		dst[name] = d
	}
	return dst
}

// PlanReport explains one cached serving plan: the remark trail recorded
// when the plan was built, surfaced again on every cache hit without
// recompiling.
type PlanReport struct {
	Key        string       `json:"key"`
	Blocks     int          `json:"blocks"`
	TuneProbes int          `json:"tuneProbes"`
	Hits       int64        `json:"hits"`
	Remarks    pass.Remarks `json:"remarks,omitempty"`
	// Tuned carries the cost-model tuner's decision when the plan was
	// built by the unified pipeline search (predicted vs measured cost,
	// chosen spec, probe spend); nil for legacy block-only tuning.
	Tuned *pass.TuneDecision `json:"tuned,omitempty"`
}
