package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"comp/internal/sim/engine"
)

// ServerReport is the server-level metrics summary of an offload service
// (internal/serve): admission-control counters, plan-cache effectiveness,
// and the request-latency distributions. It rides the same report plumbing
// as the per-run Report — stable JSON field order, WriteJSON, Format — so
// cmd/compserve and compbench -serve dump it alongside the existing
// artifacts.
type ServerReport struct {
	// Admission-control counters. Every submitted request is accounted for
	// exactly once: Submitted = Completed + Failed + Shed + Expired +
	// (still queued or in flight at snapshot time).
	Submitted int64 `json:"submitted"`
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	// Failed counts requests that were admitted but errored (bad workload,
	// compile failure); they receive the error, never a silent drop.
	Failed int64 `json:"failed,omitempty"`
	// Shed counts requests rejected at admission with ErrOverloaded.
	Shed int64 `json:"shed"`
	// Expired counts admitted requests whose deadline passed while queued.
	Expired int64 `json:"expired,omitempty"`
	// Invalid counts submissions rejected before admission with
	// ErrInvalidJob (malformed jobs never reach the queue).
	Invalid int64 `json:"invalid,omitempty"`
	// Batches is how many scheduler runs the served requests were grouped
	// into; MaxBatch the largest single batch.
	Batches  int64 `json:"batches"`
	MaxBatch int   `json:"maxBatch,omitempty"`

	// Queue state: capacity, depth at snapshot time, high-water mark.
	QueueCapacity int `json:"queueCapacity"`
	QueueDepth    int `json:"queueDepth"`
	MaxQueueDepth int `json:"maxQueueDepth"`

	// Plan-cache effectiveness. A miss builds the plan (compile + tuning);
	// a hit reuses it. TuneProbes is the total measured tuning runs spent —
	// it stops growing once every key in the trace has been planned.
	PlanHits     int64   `json:"planHits"`
	PlanMisses   int64   `json:"planMisses"`
	PlanHitRatio float64 `json:"planHitRatio"`
	TuneProbes   int64   `json:"tuneProbes"`

	// Fault-recovery totals summed over every batch's scheduler run:
	// injected faults, reissued operations, watchdog aborts, and
	// degradation-ladder steps. They quantify how much of the served load
	// survived on the recovery path (all zero on fault-free traces).
	FaultsInjected int64 `json:"faultsInjected,omitempty"`
	Retries        int64 `json:"retries,omitempty"`
	WatchdogFires  int64 `json:"watchdogFires,omitempty"`
	Fallbacks      int64 `json:"fallbacks,omitempty"`

	// SimBusyNs is the summed simulated makespan of every batch the server
	// ran. Batches on one server are sequential, so this is the server's
	// simulated busy time — deterministic for a deterministic trace, which
	// makes it the makespan figure fleet scenarios regress against.
	SimBusyNs int64 `json:"simBusyNs,omitempty"`

	// Plans explains every successfully built plan in the cache: key,
	// tuned shape, per-plan hit count, and the remark trail the compiler
	// recorded when the plan was built. Hits surface the trail again
	// without recompiling.
	Plans []PlanReport `json:"plans,omitempty"`
	// Passes tallies per-pass applied/skipped decisions across all plan
	// builds (PassCounts over each plan's remarks, merged).
	Passes map[string]PassCount `json:"passCounts,omitempty"`

	// Latency is the wall-clock submit→response distribution over completed
	// requests; QueueWaitSim the simulated-time queue wait inside the
	// scheduler batches; BatchSizes the distribution of batch sizes (plain
	// counts, not nanoseconds).
	Latency      Histogram `json:"latencyNs"`
	QueueWaitSim Histogram `json:"queueWaitSimNs"`
	BatchSizes   Histogram `json:"batchSizes"`
}

// WriteJSON serializes the report with stable field order and indentation.
func (r ServerReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned, human-readable text.
func (r ServerReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve: %d submitted, %d admitted, %d completed, %d shed, %d expired, %d failed\n",
		r.Submitted, r.Admitted, r.Completed, r.Shed, r.Expired, r.Failed)
	if r.Invalid > 0 {
		fmt.Fprintf(&b, "invalid: %d submissions rejected before admission\n", r.Invalid)
	}
	fmt.Fprintf(&b, "queue: capacity %d, depth %d, high-water %d\n",
		r.QueueCapacity, r.QueueDepth, r.MaxQueueDepth)
	if r.FaultsInjected > 0 || r.Retries > 0 || r.WatchdogFires > 0 || r.Fallbacks > 0 {
		fmt.Fprintf(&b, "faults: %d injected, %d retries, %d watchdog fires, %d fallbacks\n",
			r.FaultsInjected, r.Retries, r.WatchdogFires, r.Fallbacks)
	}
	fmt.Fprintf(&b, "batches: %d (largest %d)\n", r.Batches, r.MaxBatch)
	if r.SimBusyNs > 0 {
		fmt.Fprintf(&b, "simulated busy: %v over all batches\n", engine.Duration(r.SimBusyNs))
	}
	fmt.Fprintf(&b, "plan cache: %d hits, %d misses (hit ratio %.1f%%), %d tuning probes\n",
		r.PlanHits, r.PlanMisses, 100*r.PlanHitRatio, r.TuneProbes)
	for _, p := range r.Plans {
		fmt.Fprintf(&b, "plan %s: blocks %d, probes %d, hits %d\n", p.Key, p.Blocks, p.TuneProbes, p.Hits)
		for _, rm := range p.Remarks {
			fmt.Fprintf(&b, "  %s\n", rm)
		}
	}
	if len(r.Passes) > 0 {
		names := make([]string, 0, len(r.Passes))
		for name := range r.Passes {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("passes:")
		for _, name := range names {
			c := r.Passes[name]
			fmt.Fprintf(&b, " %s %d applied/%d skipped", name, c.Applied, c.Skipped)
		}
		b.WriteByte('\n')
	}
	formatLatency := func(name string, h Histogram) {
		if h.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "%s: %d samples, min %v, mean %v, max %v\n", name, h.Count,
			time.Duration(h.MinNs), time.Duration(h.MeanNs), time.Duration(h.MaxNs))
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "  [%12v, %12v) %6d %s\n",
				time.Duration(bk.LoNs), time.Duration(bk.HiNs), bk.Count, strings.Repeat("#", scaleBar(bk.Count, h.Count)))
		}
	}
	formatLatency("wall latency", r.Latency)
	if r.QueueWaitSim.Count > 0 {
		fmt.Fprintf(&b, "sim queue wait: %d samples, min %v, mean %v, max %v\n",
			r.QueueWaitSim.Count, engine.Duration(r.QueueWaitSim.MinNs),
			engine.Duration(r.QueueWaitSim.MeanNs), engine.Duration(r.QueueWaitSim.MaxNs))
	}
	if r.BatchSizes.Count > 0 {
		fmt.Fprintf(&b, "batch sizes: %d batches, min %d, mean %d, max %d\n",
			r.BatchSizes.Count, r.BatchSizes.MinNs, r.BatchSizes.MeanNs, r.BatchSizes.MaxNs)
	}
	return b.String()
}
