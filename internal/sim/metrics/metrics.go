// Package metrics derives per-resource utilization, overlap, occupancy and
// duration-distribution metrics from a recorded execution timeline
// (engine.Trace). It is the analysis layer between the raw span stream and
// the human: cmd/compsim's -report flag, the bench harness's per-ablation
// dumps, and the Stats↔Trace consistency suite all consume a Report.
//
// Everything here is a pure function of the trace: computing a Report can
// never perturb a simulation, and the same trace always yields the same
// Report (maps are avoided in favour of sorted slices so the JSON
// serialization is byte-stable).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"comp/internal/sim/engine"
)

// ResourceMetrics summarizes one resource's timeline.
type ResourceMetrics struct {
	// Resource is the simulated resource name (pcie-h2d, mic-compute, ...).
	Resource string `json:"resource"`
	// Spans counts the completed (non-instant) spans.
	Spans int `json:"spans"`
	// Instants counts the point events recorded on the resource.
	Instants int `json:"instants,omitempty"`
	// BusyNs is the summed span time in nanoseconds.
	BusyNs int64 `json:"busyNs"`
	// Utilization is busy time over the makespan (0 when the makespan is 0).
	Utilization float64 `json:"utilization"`
}

// CategoryMetrics aggregates spans of one category across resources.
type CategoryMetrics struct {
	Category string `json:"category"`
	Spans    int    `json:"spans"`
	Instants int    `json:"instants,omitempty"`
	BusyNs   int64  `json:"busyNs"`
}

// HistBucket is one power-of-two duration bucket.
type HistBucket struct {
	// LoNs inclusive, HiNs exclusive; [0,1) holds zero-duration spans.
	LoNs  int64 `json:"loNs"`
	HiNs  int64 `json:"hiNs"`
	Count int   `json:"count"`
}

// Histogram is a log2-bucketed duration distribution.
type Histogram struct {
	Count   int          `json:"count"`
	MinNs   int64        `json:"minNs"`
	MaxNs   int64        `json:"maxNs"`
	MeanNs  int64        `json:"meanNs"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// OccupancyLevel reports how long exactly K pipeline stages were
// simultaneously busy.
type OccupancyLevel struct {
	Busy     int     `json:"busy"`
	TimeNs   int64   `json:"timeNs"`
	Fraction float64 `json:"fraction"`
}

// StreamMetrics summarizes one scheduler stream's timeline, derived from
// its per-stream resources ("mic-s<i>", "cpu-s<i>") and the stream ids the
// runtime stamps on DMA spans.
type StreamMetrics struct {
	Stream int `json:"stream"`
	// ComputeBusyNs and HostBusyNs are the stream's compute-fabric and host
	// thread busy times; Utilization normalizes compute by the makespan.
	ComputeBusyNs int64   `json:"computeBusyNs"`
	HostBusyNs    int64   `json:"hostBusyNs"`
	Utilization   float64 `json:"utilization"`
	// OverlapNs is DMA↔compute concurrency for this stream's kernels.
	OverlapNs int64 `json:"overlapNs"`
	// Transfers counts DMA spans tagged with this stream id; BytesIn and
	// BytesOut their payloads by direction.
	Transfers int   `json:"transfers"`
	BytesIn   int64 `json:"bytesIn"`
	BytesOut  int64 `json:"bytesOut"`
}

// Report is the derived-metrics summary of one run's timeline.
type Report struct {
	// MakespanNs is the end-to-end virtual time the metrics are normalized
	// against.
	MakespanNs int64 `json:"makespanNs"`
	// Resources, sorted by name.
	Resources []ResourceMetrics `json:"resources"`
	// Categories, sorted by name.
	Categories []CategoryMetrics `json:"categories"`
	// OverlapNs is the transfer↔compute concurrency: time a PCIe channel
	// span and a device-compute span were simultaneously active.
	OverlapNs int64 `json:"overlapNs"`
	// OverlapFraction normalizes the overlap by its upper bound — the
	// smaller of total transfer busy and device busy time — so 1.0 means
	// every possible byte of transfer was hidden behind compute.
	OverlapFraction float64 `json:"overlapFraction"`
	// Occupancy is the pipeline-stage occupancy distribution: for each K,
	// the share of the makespan during which exactly K resources were busy.
	Occupancy []OccupancyLevel `json:"occupancy"`
	// Transfers and Kernels are the duration distributions of DMA and
	// device-compute spans.
	Transfers Histogram `json:"transfers"`
	Kernels   Histogram `json:"kernels"`
	// Streams is populated only for scheduler traces (per-stream resources
	// "mic-s<i>" present). CrossStreamOverlapNs is the time during which at
	// least two streams' compute fabrics were simultaneously busy — the
	// quantity the multi-stream scheduler exists to maximize.
	Streams              []StreamMetrics `json:"streams,omitempty"`
	CrossStreamOverlapNs int64           `json:"crossStreamOverlapNs,omitempty"`
}

// Resource names of the standard platform, referenced for overlap math.
const (
	resH2D     = "pcie-h2d"
	resD2H     = "pcie-d2h"
	resCompute = "mic-compute"
)

// FromTrace computes a Report over the trace, normalizing against the given
// makespan. A makespan of zero normalizes against the latest span end.
func FromTrace(tr *engine.Trace, makespan engine.Duration) Report {
	spans := tr.Spans()
	if makespan == 0 {
		for _, sp := range spans {
			if d := engine.Duration(sp.End); d > makespan {
				makespan = d
			}
		}
	}

	type racc struct {
		spans, instants int
		busy            engine.Duration
	}
	byRes := map[string]*racc{}
	byCat := map[engine.Category]*racc{}
	var transferDurs, kernelDurs []engine.Duration
	for _, sp := range spans {
		r := byRes[sp.Resource]
		if r == nil {
			r = &racc{}
			byRes[sp.Resource] = r
		}
		c := byCat[sp.Cat]
		if c == nil {
			c = &racc{}
			byCat[sp.Cat] = c
		}
		if sp.Instant {
			r.instants++
			c.instants++
			continue
		}
		r.spans++
		c.spans++
		r.busy += sp.Duration()
		c.busy += sp.Duration()
		switch sp.Cat {
		case engine.CatDMAIn, engine.CatDMAOut:
			transferDurs = append(transferDurs, sp.Duration())
		case engine.CatKernel:
			kernelDurs = append(kernelDurs, sp.Duration())
		}
	}

	rep := Report{MakespanNs: int64(makespan)}
	for _, name := range sortedKeys(byRes) {
		r := byRes[name]
		m := ResourceMetrics{
			Resource: name,
			Spans:    r.spans,
			Instants: r.instants,
			BusyNs:   int64(r.busy),
		}
		if makespan > 0 {
			m.Utilization = float64(r.busy) / float64(makespan)
		}
		rep.Resources = append(rep.Resources, m)
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	for _, c := range cats {
		a := byCat[engine.Category(c)]
		name := c
		if name == "" {
			name = "(uncategorised)"
		}
		rep.Categories = append(rep.Categories, CategoryMetrics{
			Category: name,
			Spans:    a.spans,
			Instants: a.instants,
			BusyNs:   int64(a.busy),
		})
	}

	overlap := tr.Overlap(resH2D, resCompute) + tr.Overlap(resD2H, resCompute)
	rep.OverlapNs = int64(overlap)
	transferBusy := tr.BusyTime(resH2D) + tr.BusyTime(resD2H)
	bound := transferBusy
	if compute := tr.BusyTime(resCompute); compute < bound {
		bound = compute
	}
	if bound > 0 {
		rep.OverlapFraction = float64(overlap) / float64(bound)
	}

	rep.Occupancy = occupancy(spans, makespan)
	rep.Transfers = histogram(transferDurs)
	rep.Kernels = histogram(kernelDurs)
	rep.Streams, rep.CrossStreamOverlapNs = streamMetrics(tr, spans, makespan)
	return rep
}

// streamComputeRes and streamHostRes are the scheduler's per-stream resource
// naming scheme (see runtime.Scheduler).
const (
	streamComputePrefix = "mic-s"
	streamHostPrefix    = "cpu-s"
)

// streamID extracts the stream index from a per-stream compute resource name
// ("mic-s3" → 3, true).
func streamID(resource string) (int, bool) {
	rest, ok := strings.CutPrefix(resource, streamComputePrefix)
	if !ok || rest == "" {
		return 0, false
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// streamMetrics derives per-stream summaries and the cross-stream compute
// overlap. Returns (nil, 0) for single-stream traces, leaving the classic
// Report shape untouched.
func streamMetrics(tr *engine.Trace, spans []engine.Span, makespan engine.Duration) ([]StreamMetrics, int64) {
	ids := map[int]bool{}
	for _, name := range tr.Resources() {
		if id, ok := streamID(name); ok {
			ids[id] = true
		}
	}
	if len(ids) == 0 {
		return nil, 0
	}
	byID := map[int]*StreamMetrics{}
	order := make([]int, 0, len(ids))
	for id := range ids {
		order = append(order, id)
	}
	sort.Ints(order)
	for _, id := range order {
		compute := fmt.Sprintf("%s%d", streamComputePrefix, id)
		m := &StreamMetrics{
			Stream:        id,
			ComputeBusyNs: int64(tr.BusyTime(compute)),
			HostBusyNs:    int64(tr.BusyTime(fmt.Sprintf("%s%d", streamHostPrefix, id))),
			OverlapNs:     int64(tr.Overlap(resH2D, compute) + tr.Overlap(resD2H, compute)),
		}
		if makespan > 0 {
			m.Utilization = float64(m.ComputeBusyNs) / float64(makespan)
		}
		byID[id] = m
	}
	// DMA attribution: the runtime stamps each transfer span with the
	// submitting stream's id.
	for _, sp := range spans {
		if sp.Instant || (sp.Cat != engine.CatDMAIn && sp.Cat != engine.CatDMAOut) {
			continue
		}
		id, ok := sp.Args["stream"].(int64)
		if !ok {
			continue
		}
		m := byID[int(id)]
		if m == nil {
			continue
		}
		m.Transfers++
		bytes, _ := sp.Args["bytes"].(int64)
		if sp.Cat == engine.CatDMAIn {
			m.BytesIn += bytes
		} else {
			m.BytesOut += bytes
		}
	}
	out := make([]StreamMetrics, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, int64(crossStreamOverlap(spans))
}

// crossStreamOverlap sweeps the compute spans of all streams and sums the
// time during which two or more distinct stream compute resources were busy.
func crossStreamOverlap(spans []engine.Span) engine.Duration {
	type edge struct {
		at       engine.Time
		resource string
		delta    int
	}
	var edges []edge
	for _, sp := range spans {
		if sp.Instant || sp.End <= sp.Start {
			continue
		}
		if _, ok := streamID(sp.Resource); !ok {
			continue
		}
		edges = append(edges, edge{sp.Start, sp.Resource, +1}, edge{sp.End, sp.Resource, -1})
	}
	if len(edges) == 0 {
		return 0
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta
	})
	active := map[string]int{}
	busy := func() int {
		n := 0
		for _, c := range active {
			if c > 0 {
				n++
			}
		}
		return n
	}
	var total engine.Duration
	var cursor engine.Time
	for i := 0; i < len(edges); {
		at := edges[i].at
		if at > cursor {
			if busy() >= 2 {
				total += engine.Duration(at - cursor)
			}
			cursor = at
		}
		for i < len(edges) && edges[i].at == at {
			active[edges[i].resource] += edges[i].delta
			i++
		}
	}
	return total
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// occupancy sweeps the span boundaries and measures, for each K, the time
// during which exactly K distinct resources had an active span. Instants
// and zero-length spans contribute nothing.
func occupancy(spans []engine.Span, makespan engine.Duration) []OccupancyLevel {
	type edge struct {
		at       engine.Time
		resource string
		delta    int
	}
	var edges []edge
	resources := map[string]bool{}
	for _, sp := range spans {
		if sp.Instant || sp.End <= sp.Start {
			continue
		}
		resources[sp.Resource] = true
		edges = append(edges, edge{sp.Start, sp.Resource, +1}, edge{sp.End, sp.Resource, -1})
	}
	if len(edges) == 0 || makespan <= 0 {
		return nil
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		// Closings before openings at the same instant, so back-to-back
		// spans do not double-count the boundary point.
		return edges[i].delta < edges[j].delta
	})
	active := map[string]int{}
	busyCount := func() int {
		n := 0
		for _, c := range active {
			if c > 0 {
				n++
			}
		}
		return n
	}
	timeAt := make([]engine.Duration, len(resources)+1)
	var cursor engine.Time
	for i := 0; i < len(edges); {
		at := edges[i].at
		if at > cursor {
			k := busyCount()
			timeAt[k] += engine.Duration(at - cursor)
			cursor = at
		}
		for i < len(edges) && edges[i].at == at {
			active[edges[i].resource] += edges[i].delta
			i++
		}
	}
	if tail := engine.Time(makespan); tail > cursor {
		timeAt[0] += engine.Duration(tail - cursor)
	}
	var out []OccupancyLevel
	for k, t := range timeAt {
		if t == 0 && k > 0 {
			continue
		}
		out = append(out, OccupancyLevel{
			Busy:     k,
			TimeNs:   int64(t),
			Fraction: float64(t) / float64(makespan),
		})
	}
	return out
}

// histogram builds a log2-bucketed duration distribution.
func histogram(durs []engine.Duration) Histogram {
	ns := make([]int64, len(durs))
	for i, d := range durs {
		ns[i] = int64(d)
	}
	return HistogramOf(ns)
}

// HistogramOf builds a log2-bucketed distribution over raw int64 samples
// (nanoseconds for latency histograms, plain counts for size histograms).
// It is the plumbing the serving layer reuses for its server-level
// latency, queue-wait and batch-size distributions.
func HistogramOf(samples []int64) Histogram {
	h := Histogram{Count: len(samples)}
	if len(samples) == 0 {
		return h
	}
	var sum int64
	h.MinNs = samples[0]
	buckets := map[int]int{}
	for _, ns := range samples {
		sum += ns
		if ns < h.MinNs {
			h.MinNs = ns
		}
		if ns > h.MaxNs {
			h.MaxNs = ns
		}
		buckets[bucketOf(ns)]++
	}
	h.MeanNs = sum / int64(len(samples))
	idxs := make([]int, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		lo, hi := bucketBounds(i)
		h.Buckets = append(h.Buckets, HistBucket{LoNs: lo, HiNs: hi, Count: buckets[i]})
	}
	return h
}

// bucketOf maps a duration to its bucket index: 0 holds [0,1), index i>0
// holds [2^(i-1), 2^i).
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// WriteJSON serializes the report with stable field order and indentation.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as aligned, human-readable text.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %v\n", engine.Duration(r.MakespanNs))
	fmt.Fprintf(&b, "\n%-12s %8s %9s %14s %12s\n", "resource", "spans", "instants", "busy", "utilization")
	for _, m := range r.Resources {
		fmt.Fprintf(&b, "%-12s %8d %9d %14v %11.1f%%\n",
			m.Resource, m.Spans, m.Instants, engine.Duration(m.BusyNs), 100*m.Utilization)
	}
	fmt.Fprintf(&b, "\n%-16s %8s %9s %14s\n", "category", "spans", "instants", "busy")
	for _, m := range r.Categories {
		fmt.Fprintf(&b, "%-16s %8d %9d %14v\n",
			m.Category, m.Spans, m.Instants, engine.Duration(m.BusyNs))
	}
	fmt.Fprintf(&b, "\ntransfer/compute overlap %v (%.1f%% of the achievable bound)\n",
		engine.Duration(r.OverlapNs), 100*r.OverlapFraction)
	if len(r.Streams) > 0 {
		fmt.Fprintf(&b, "\n%-8s %14s %12s %14s %10s %12s %12s\n",
			"stream", "compute", "utilization", "dma-overlap", "transfers", "bytesIn", "bytesOut")
		for _, s := range r.Streams {
			fmt.Fprintf(&b, "s%-7d %14v %11.1f%% %14v %10d %12d %12d\n",
				s.Stream, engine.Duration(s.ComputeBusyNs), 100*s.Utilization,
				engine.Duration(s.OverlapNs), s.Transfers, s.BytesIn, s.BytesOut)
		}
		fmt.Fprintf(&b, "cross-stream compute overlap %v\n", engine.Duration(r.CrossStreamOverlapNs))
	}
	if len(r.Occupancy) > 0 {
		fmt.Fprintf(&b, "\npipeline-stage occupancy (share of makespan with K resources busy)\n")
		for _, o := range r.Occupancy {
			fmt.Fprintf(&b, "  K=%d %14v %6.1f%%\n", o.Busy, engine.Duration(o.TimeNs), 100*o.Fraction)
		}
	}
	formatHist := func(name string, h Histogram) {
		if h.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "\n%s: %d spans, min %v, mean %v, max %v\n",
			name, h.Count, engine.Duration(h.MinNs), engine.Duration(h.MeanNs), engine.Duration(h.MaxNs))
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "  [%12v, %12v) %6d %s\n",
				engine.Duration(bk.LoNs), engine.Duration(bk.HiNs), bk.Count, strings.Repeat("#", scaleBar(bk.Count, h.Count)))
		}
	}
	formatHist("transfer durations", r.Transfers)
	formatHist("kernel durations", r.Kernels)
	return b.String()
}

// scaleBar sizes a histogram bar to at most 40 columns.
func scaleBar(count, total int) int {
	if total == 0 {
		return 0
	}
	n := count * 40 / total
	if n == 0 && count > 0 {
		n = 1
	}
	return n
}
