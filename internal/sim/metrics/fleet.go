package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"comp/internal/sim/engine"
)

// FleetDeviceReport is one device's slice of a fleet rollup: its identity
// on the ring, its machine signature (the plan-affinity class work stealing
// respects), its health, and the full per-device ServerReport.
//
// Plan-cache counters inside the embedded ServerReport are registry-global
// when the fleet shares one compiled-plan registry across devices — a hit
// on any device counts for all of them. The per-device figures that stay
// truly per-device are the admission counters, batches, histograms, and
// SimBusyNs.
type FleetDeviceReport struct {
	ID        string `json:"id"`
	Signature string `json:"signature"`
	Lost      bool   `json:"lost,omitempty"`
	ServerReport
}

// FleetReport rolls a fleet of servers up into one document: per-device
// reports plus aggregate counters and the router's own accounting. It rides
// the same plumbing as ServerReport (stable JSON, WriteJSON, Format) so
// compserve -fleet and compbench -fleet dump it alongside the existing
// artifacts.
type FleetReport struct {
	// Router accounting. Routed counts placement decisions handed out;
	// Stolen the placements redirected off a healthy primary by queue
	// pressure; Rerouted the placements whose ring owner was a lost device
	// (consistent hashing moved them); NoDevice the submissions rejected
	// because no healthy device existed.
	Routed   int64 `json:"routed"`
	Stolen   int64 `json:"stolen,omitempty"`
	Rerouted int64 `json:"rerouted,omitempty"`
	NoDevice int64 `json:"noDevice,omitempty"`
	// LossEvents / RestoreEvents count device-loss drains and rebalances.
	LossEvents    int64 `json:"lossEvents,omitempty"`
	RestoreEvents int64 `json:"restoreEvents,omitempty"`

	// MakespanNs is the fleet makespan: the largest per-device SimBusyNs.
	// TotalSimNs sums them — the fleet's total simulated busy time.
	MakespanNs int64 `json:"makespanNs"`
	TotalSimNs int64 `json:"totalSimNs"`

	// Aggregate sums the per-device admission, batch, and fault-recovery
	// counters; its plan-cache counters are taken from the shared registry
	// once (not summed, which would multiply them by the device count).
	// Histograms are left empty — they do not sum.
	Aggregate ServerReport `json:"aggregate"`

	// Devices lists every device in ID order.
	Devices []FleetDeviceReport `json:"devices"`
}

// RollUp builds the aggregate section from the per-device reports: counter
// sums, the registry-global plan figures from the first device (the shared
// registry reports identically through every device), and the makespan
// figures. Call it after populating Devices.
func (r *FleetReport) RollUp() {
	agg := ServerReport{}
	r.MakespanNs, r.TotalSimNs = 0, 0
	for _, d := range r.Devices {
		agg.Submitted += d.Submitted
		agg.Admitted += d.Admitted
		agg.Completed += d.Completed
		agg.Failed += d.Failed
		agg.Shed += d.Shed
		agg.Expired += d.Expired
		agg.Invalid += d.Invalid
		agg.Batches += d.Batches
		if d.MaxBatch > agg.MaxBatch {
			agg.MaxBatch = d.MaxBatch
		}
		agg.QueueCapacity += d.QueueCapacity
		agg.QueueDepth += d.QueueDepth
		if d.MaxQueueDepth > agg.MaxQueueDepth {
			agg.MaxQueueDepth = d.MaxQueueDepth
		}
		agg.FaultsInjected += d.FaultsInjected
		agg.Retries += d.Retries
		agg.WatchdogFires += d.WatchdogFires
		agg.Fallbacks += d.Fallbacks
		agg.SimBusyNs += d.SimBusyNs
		r.TotalSimNs += d.SimBusyNs
		if d.SimBusyNs > r.MakespanNs {
			r.MakespanNs = d.SimBusyNs
		}
	}
	if len(r.Devices) > 0 {
		first := r.Devices[0]
		agg.PlanHits = first.PlanHits
		agg.PlanMisses = first.PlanMisses
		agg.PlanHitRatio = first.PlanHitRatio
		agg.TuneProbes = first.TuneProbes
		agg.Plans = first.Plans
		agg.Passes = first.Passes
	}
	r.Aggregate = agg
}

// WriteJSON serializes the report with stable field order and indentation.
func (r FleetReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the rollup as an aligned, human-readable table: one line
// per device, then the router and aggregate summary.
func (r FleetReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices, %d routed (%d stolen, %d rerouted, %d no-device), %d loss / %d restore events\n",
		len(r.Devices), r.Routed, r.Stolen, r.Rerouted, r.NoDevice, r.LossEvents, r.RestoreEvents)
	fmt.Fprintf(&b, "%-10s %-18s %5s %9s %9s %6s %7s %8s %12s\n",
		"device", "signature", "state", "submitted", "completed", "shed", "expired", "batches", "sim busy")
	for _, d := range r.Devices {
		state := "up"
		if d.Lost {
			state = "lost"
		}
		sig := d.Signature
		if i := strings.IndexByte(sig, '|'); i >= 0 {
			sig = sig[:i] // the device half identifies the class; keep the table narrow
		}
		fmt.Fprintf(&b, "%-10s %-18s %5s %9d %9d %6d %7d %8d %12v\n",
			d.ID, sig, state, d.Submitted, d.Completed, d.Shed, d.Expired, d.Batches, engine.Duration(d.SimBusyNs))
	}
	a := r.Aggregate
	fmt.Fprintf(&b, "aggregate: %d submitted, %d completed, %d shed, %d expired, %d failed, %d invalid\n",
		a.Submitted, a.Completed, a.Shed, a.Expired, a.Failed, a.Invalid)
	fmt.Fprintf(&b, "plan registry: %d hits, %d misses (hit ratio %.1f%%), %d tuning probes, %d plans\n",
		a.PlanHits, a.PlanMisses, 100*a.PlanHitRatio, a.TuneProbes, len(a.Plans))
	if a.FaultsInjected > 0 || a.Retries > 0 || a.WatchdogFires > 0 || a.Fallbacks > 0 {
		fmt.Fprintf(&b, "faults: %d injected, %d retries, %d watchdog fires, %d fallbacks\n",
			a.FaultsInjected, a.Retries, a.WatchdogFires, a.Fallbacks)
	}
	fmt.Fprintf(&b, "makespan: %v (total simulated busy %v across the fleet)\n",
		engine.Duration(r.MakespanNs), engine.Duration(r.TotalSimNs))
	return b.String()
}
