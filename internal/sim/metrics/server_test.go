package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleServerReport() ServerReport {
	return ServerReport{
		Submitted: 20, Admitted: 17, Completed: 15, Failed: 1, Shed: 3, Expired: 1,
		Batches: 4, MaxBatch: 6,
		QueueCapacity: 8, QueueDepth: 0, MaxQueueDepth: 8,
		PlanHits: 14, PlanMisses: 3, PlanHitRatio: 14.0 / 17.0, TuneProbes: 9,
		Latency:      HistogramOf([]int64{1_000_000, 2_000_000, 40_000_000}),
		QueueWaitSim: HistogramOf([]int64{0, 500, 1500}),
		BatchSizes:   HistogramOf([]int64{2, 6, 4, 3}),
	}
}

func TestServerReportFormat(t *testing.T) {
	out := sampleServerReport().Format()
	for _, want := range []string{
		"serve: 20 submitted, 17 admitted, 15 completed, 3 shed, 1 expired, 1 failed",
		"queue: capacity 8, depth 0, high-water 8",
		"batches: 4 (largest 6)",
		"plan cache: 14 hits, 3 misses (hit ratio 82.4%), 9 tuning probes",
		"wall latency: 3 samples",
		"sim queue wait: 3 samples",
		"batch sizes: 4 batches, min 2, mean 3, max 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	// Empty histograms are omitted entirely, not rendered as zero rows.
	empty := ServerReport{Submitted: 1, Shed: 1}.Format()
	for _, absent := range []string{"wall latency", "sim queue wait", "batch sizes"} {
		if strings.Contains(empty, absent) {
			t.Errorf("empty report renders %q:\n%s", absent, empty)
		}
	}
}

func TestServerReportWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleServerReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round ServerReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if round.Submitted != 20 || round.PlanHits != 14 || round.Latency.Count != 3 {
		t.Fatalf("round-trip lost fields: %+v", round)
	}
	for _, key := range []string{`"planHitRatio"`, `"latencyNs"`, `"queueCapacity"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing %s", key)
		}
	}
}
