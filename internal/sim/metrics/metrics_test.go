package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"comp/internal/sim/engine"
)

// sampleTrace builds a small pipelined timeline:
//
//	pcie-h2d    |<<<<....<<<<....|
//	mic-compute |....####....####|
//
// with one overlapping pair and one fault instant.
func sampleTrace() *engine.Trace {
	tr := engine.NewTrace()
	tr.Add(engine.Span{Resource: "pcie-h2d", Label: "in0", Cat: engine.CatDMAIn, Start: 0, End: 40,
		Args: map[string]any{"bytes": 1024}})
	tr.Add(engine.Span{Resource: "mic-compute", Label: "k0", Cat: engine.CatKernel, Start: 40, End: 80})
	tr.Add(engine.Span{Resource: "pcie-h2d", Label: "in1", Cat: engine.CatDMAIn, Start: 60, End: 100})
	tr.Add(engine.Span{Resource: "mic-compute", Label: "k1", Cat: engine.CatKernel, Start: 100, End: 140})
	tr.Instant("runtime", "inject:dma", engine.CatFault, 60, map[string]any{"kind": "dma"})
	return tr
}

func TestFromTraceResourceAggregation(t *testing.T) {
	rep := FromTrace(sampleTrace(), 160)
	if rep.MakespanNs != 160 {
		t.Fatalf("makespan = %d, want 160", rep.MakespanNs)
	}
	byName := map[string]ResourceMetrics{}
	for _, m := range rep.Resources {
		byName[m.Resource] = m
	}
	h2d := byName["pcie-h2d"]
	if h2d.Spans != 2 || h2d.BusyNs != 80 {
		t.Errorf("pcie-h2d = %+v, want 2 spans / 80ns busy", h2d)
	}
	if got, want := h2d.Utilization, 0.5; got != want {
		t.Errorf("pcie-h2d utilization = %v, want %v", got, want)
	}
	rt := byName["runtime"]
	if rt.Spans != 0 || rt.Instants != 1 {
		t.Errorf("runtime = %+v, want 0 spans / 1 instant", rt)
	}
	// Resources must be sorted by name for byte-stable JSON.
	for i := 1; i < len(rep.Resources); i++ {
		if rep.Resources[i-1].Resource > rep.Resources[i].Resource {
			t.Fatalf("resources not sorted: %v", rep.Resources)
		}
	}
}

func TestFromTraceOverlap(t *testing.T) {
	rep := FromTrace(sampleTrace(), 160)
	// in1 [60,100) overlaps k0 [40,80) for 20ns.
	if rep.OverlapNs != 20 {
		t.Errorf("overlap = %d, want 20", rep.OverlapNs)
	}
	// Bound = min(transfer busy 80, compute busy 80) = 80.
	if got, want := rep.OverlapFraction, 0.25; got != want {
		t.Errorf("overlap fraction = %v, want %v", got, want)
	}
}

func TestFromTraceOccupancy(t *testing.T) {
	rep := FromTrace(sampleTrace(), 160)
	// Busy intervals: [0,40) 1, [40,60) 1, [60,80) 2, [80,100) 1, [100,140) 1, [140,160) 0.
	want := map[int]int64{0: 20, 1: 120, 2: 20}
	got := map[int]int64{}
	var frac float64
	for _, o := range rep.Occupancy {
		got[o.Busy] = o.TimeNs
		frac += o.Fraction
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("occupancy K=%d = %d, want %d (all: %v)", k, got[k], w, rep.Occupancy)
		}
	}
	if frac < 0.999 || frac > 1.001 {
		t.Errorf("occupancy fractions sum to %v, want 1", frac)
	}
}

func TestFromTraceHistograms(t *testing.T) {
	rep := FromTrace(sampleTrace(), 160)
	if rep.Transfers.Count != 2 || rep.Transfers.MinNs != 40 || rep.Transfers.MaxNs != 40 || rep.Transfers.MeanNs != 40 {
		t.Errorf("transfers = %+v, want 2 spans of 40ns", rep.Transfers)
	}
	if rep.Kernels.Count != 2 {
		t.Errorf("kernels count = %d, want 2", rep.Kernels.Count)
	}
	// 40ns lands in bucket [32,64).
	if len(rep.Transfers.Buckets) != 1 || rep.Transfers.Buckets[0].LoNs != 32 || rep.Transfers.Buckets[0].HiNs != 64 {
		t.Errorf("transfer buckets = %v, want single [32,64)", rep.Transfers.Buckets)
	}
}

func TestFromTraceZeroMakespanFallsBackToSpanEnd(t *testing.T) {
	rep := FromTrace(sampleTrace(), 0)
	if rep.MakespanNs != 140 {
		t.Errorf("inferred makespan = %d, want 140 (latest span end)", rep.MakespanNs)
	}
}

func TestFromTraceEmpty(t *testing.T) {
	rep := FromTrace(engine.NewTrace(), 0)
	if len(rep.Resources) != 0 || rep.OverlapNs != 0 || rep.Transfers.Count != 0 {
		t.Errorf("empty trace report = %+v, want zero values", rep)
	}
	if rep.Occupancy != nil {
		t.Errorf("empty trace occupancy = %v, want nil", rep.Occupancy)
	}
}

func TestBucketOfBounds(t *testing.T) {
	cases := []struct {
		ns     int64
		wantLo int64
		wantHi int64
	}{
		{0, 0, 1},
		{1, 1, 2},
		{2, 2, 4},
		{3, 2, 4},
		{1023, 512, 1024},
		{1024, 1024, 2048},
	}
	for _, c := range cases {
		lo, hi := bucketBounds(bucketOf(c.ns))
		if lo != c.wantLo || hi != c.wantHi {
			t.Errorf("bucket of %d = [%d,%d), want [%d,%d)", c.ns, lo, hi, c.wantLo, c.wantHi)
		}
		if !(c.ns >= lo && c.ns < hi) {
			t.Errorf("%d not inside its own bucket [%d,%d)", c.ns, lo, hi)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := FromTrace(sampleTrace(), 160)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.MakespanNs != rep.MakespanNs || back.OverlapNs != rep.OverlapNs ||
		len(back.Resources) != len(rep.Resources) {
		t.Errorf("round-tripped report differs: %+v vs %+v", back, rep)
	}
	// Determinism: encoding twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := FromTrace(sampleTrace(), 160).WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("report JSON is not byte-stable")
	}
}

func TestFormatMentionsKeySections(t *testing.T) {
	out := FromTrace(sampleTrace(), 160).Format()
	for _, want := range []string{"makespan", "resource", "category", "overlap", "occupancy", "transfer durations", "kernel durations"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

// streamTrace builds a two-stream scheduler timeline:
//
//	mic-s0   |..####........|
//	mic-s1   |....####......|  → 20ns cross-stream overlap [40,60)
//	pcie-h2d |<<<<...<<<<...|  stream-tagged DMA
func streamTrace() *engine.Trace {
	tr := engine.NewTrace()
	tr.Add(engine.Span{Resource: "pcie-h2d", Label: "in0", Cat: engine.CatDMAIn, Start: 0, End: 20,
		Args: map[string]any{"bytes": int64(100), "stream": int64(0)}})
	tr.Add(engine.Span{Resource: "mic-s0", Label: "k0", Cat: engine.CatKernel, Start: 20, End: 60})
	tr.Add(engine.Span{Resource: "pcie-h2d", Label: "in1", Cat: engine.CatDMAIn, Start: 20, End: 40,
		Args: map[string]any{"bytes": int64(200), "stream": int64(1)}})
	tr.Add(engine.Span{Resource: "mic-s1", Label: "k1", Cat: engine.CatKernel, Start: 40, End: 80})
	tr.Add(engine.Span{Resource: "pcie-d2h", Label: "out1", Cat: engine.CatDMAOut, Start: 80, End: 90,
		Args: map[string]any{"bytes": int64(50), "stream": int64(1)}})
	tr.Add(engine.Span{Resource: "cpu-s0", Label: "host", Cat: engine.CatHost, Start: 0, End: 10})
	return tr
}

func TestFromTraceStreamMetrics(t *testing.T) {
	rep := FromTrace(streamTrace(), 100)
	if len(rep.Streams) != 2 {
		t.Fatalf("streams = %+v, want 2 entries", rep.Streams)
	}
	s0, s1 := rep.Streams[0], rep.Streams[1]
	if s0.Stream != 0 || s1.Stream != 1 {
		t.Fatalf("streams out of order: %+v", rep.Streams)
	}
	if s0.ComputeBusyNs != 40 || s1.ComputeBusyNs != 40 {
		t.Errorf("compute busy = %d/%d, want 40/40", s0.ComputeBusyNs, s1.ComputeBusyNs)
	}
	if s0.HostBusyNs != 10 || s1.HostBusyNs != 0 {
		t.Errorf("host busy = %d/%d, want 10/0", s0.HostBusyNs, s1.HostBusyNs)
	}
	if got, want := s0.Utilization, 0.4; got != want {
		t.Errorf("s0 utilization = %v, want %v", got, want)
	}
	// in1 [20,40) overlaps k0 [20,60) for 20ns on stream 0's compute.
	if s0.OverlapNs != 20 {
		t.Errorf("s0 dma overlap = %d, want 20", s0.OverlapNs)
	}
	if s0.Transfers != 1 || s0.BytesIn != 100 || s0.BytesOut != 0 {
		t.Errorf("s0 dma books = %+v, want 1 transfer / 100 in / 0 out", s0)
	}
	if s1.Transfers != 2 || s1.BytesIn != 200 || s1.BytesOut != 50 {
		t.Errorf("s1 dma books = %+v, want 2 transfers / 200 in / 50 out", s1)
	}
	// k0 [20,60) and k1 [40,80) are both busy over [40,60).
	if rep.CrossStreamOverlapNs != 20 {
		t.Errorf("cross-stream overlap = %d, want 20", rep.CrossStreamOverlapNs)
	}
}

func TestStreamMetricsAbsentForSingleStreamTraces(t *testing.T) {
	rep := FromTrace(sampleTrace(), 160)
	if rep.Streams != nil || rep.CrossStreamOverlapNs != 0 {
		t.Errorf("classic trace grew stream metrics: %+v", rep.Streams)
	}
}

func TestStreamFormatSection(t *testing.T) {
	out := FromTrace(streamTrace(), 100).Format()
	for _, want := range []string{"stream", "cross-stream compute overlap"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestStreamID(t *testing.T) {
	cases := []struct {
		in string
		id int
		ok bool
	}{
		{"mic-s0", 0, true},
		{"mic-s12", 12, true},
		{"mic-compute", 0, false},
		{"mic-s", 0, false},
		{"mic-sx", 0, false},
		{"cpu-s1", 0, false},
	}
	for _, c := range cases {
		id, ok := streamID(c.in)
		if id != c.id || ok != c.ok {
			t.Errorf("streamID(%q) = %d,%v want %d,%v", c.in, id, ok, c.id, c.ok)
		}
	}
}

func TestScaleBar(t *testing.T) {
	if scaleBar(0, 10) != 0 {
		t.Error("zero count should give zero bar")
	}
	if scaleBar(1, 1000) != 1 {
		t.Error("nonzero count should give at least one column")
	}
	if scaleBar(10, 10) != 40 {
		t.Error("full share should give 40 columns")
	}
	if scaleBar(5, 0) != 0 {
		t.Error("zero total should give zero bar")
	}
}
