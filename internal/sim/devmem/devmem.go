// Package devmem models the coprocessor's on-board memory.
//
// The Xeon Phi in the paper has 8 GB of GDDR5, no disk, and no swap: an
// offload whose working set does not fit simply fails at runtime (§III-B).
// This allocator reproduces that behaviour — a hard capacity, first-fit
// allocation with coalescing frees, and peak-usage tracking so experiments
// can report the memory-reduction results of Figure 13.
package devmem

import (
	"errors"
	"fmt"
	"sort"

	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied. It
// corresponds to the runtime error the MIC raises when offloaded data does
// not fit in device memory.
var ErrOutOfMemory = errors.New("devmem: out of device memory")

// ErrFaultInjected is returned when an allocation fails by fault injection
// rather than capacity: the simulated driver error that occurs even with
// free memory (fragmentation races, COI handle exhaustion).
var ErrFaultInjected = errors.New("devmem: injected allocation failure")

// Block is an allocated region of device memory.
type Block struct {
	Base  uint64
	Size  uint64
	Label string
	freed bool
}

// End returns the first address past the block.
func (b *Block) End() uint64 { return b.Base + b.Size }

type hole struct{ base, size uint64 }

// Allocator is a first-fit device-memory allocator with a hard capacity.
// The zero value is unusable; construct with New.
type Allocator struct {
	capacity uint64
	holes    []hole // sorted by base, non-adjacent
	inUse    uint64
	peak     uint64
	reserved uint64 // OS-reserved portion, unavailable to applications
	nAllocs  int64
	nFrees   int64
	inj      *fault.Injector
	faults   int64
	tr       *engine.Trace
	now      func() engine.Time
}

// New creates an allocator with the given total capacity and an OS-reserved
// region carved off the top (the paper notes part of the 8 GB is reserved
// for the card's OS).
func New(capacity, osReserved uint64) *Allocator {
	if osReserved >= capacity {
		panic(fmt.Sprintf("devmem: reserved %d >= capacity %d", osReserved, capacity))
	}
	usable := capacity - osReserved
	return &Allocator{
		capacity: usable,
		reserved: osReserved,
		holes:    []hole{{base: 0, size: usable}},
	}
}

// Capacity returns the application-usable capacity in bytes.
func (a *Allocator) Capacity() uint64 { return a.capacity }

// InUse returns the bytes currently allocated.
func (a *Allocator) InUse() uint64 { return a.inUse }

// Peak returns the high-water mark of allocated bytes.
func (a *Allocator) Peak() uint64 { return a.peak }

// ResetPeak sets the high-water mark to the current usage, for measuring a
// phase in isolation.
func (a *Allocator) ResetPeak() { a.peak = a.inUse }

// Available returns the free space in bytes (possibly fragmented).
func (a *Allocator) Available() uint64 { return a.capacity - a.inUse }

// AllocCount returns the number of successful allocations performed.
func (a *Allocator) AllocCount() int64 { return a.nAllocs }

// SetInjector attaches a fault injector; subsequent Alloc calls may fail
// with ErrFaultInjected. A nil injector (the default) never fails this way.
func (a *Allocator) SetInjector(inj *fault.Injector) { a.inj = inj }

// FaultCount returns the number of injected allocation failures so far.
func (a *Allocator) FaultCount() int64 { return a.faults }

// SetTrace attaches a span recorder and a clock. Allocations, frees, and
// allocation failures are then recorded as instant events on the "devmem"
// pseudo-resource. Because allocation happens while the host issues
// operations (not on a simulated server), the instants carry issue-order
// time — typically the host's current virtual time — rather than a span.
func (a *Allocator) SetTrace(tr *engine.Trace, now func() engine.Time) {
	a.tr = tr
	a.now = now
}

func (a *Allocator) traceInstant(label string, cat engine.Category, args map[string]any) {
	if a.tr == nil {
		return
	}
	a.tr.Instant("devmem", label, cat, a.now(), args)
}

// Alloc carves size bytes out of the first hole that fits. A zero-size
// request is rejected: it always indicates a footprint-computation bug in
// the caller.
func (a *Allocator) Alloc(size uint64, label string) (*Block, error) {
	if size == 0 {
		return nil, fmt.Errorf("devmem: zero-size allocation for %q", label)
	}
	if a.inj != nil && a.inj.Next(fault.Alloc) {
		a.faults++
		a.traceInstant("alloc:"+label, engine.CatFault, map[string]any{"kind": "alloc", "bytes": size})
		return nil, fmt.Errorf("%w: %d bytes for %q", ErrFaultInjected, size, label)
	}
	for i, h := range a.holes {
		if h.size < size {
			continue
		}
		b := &Block{Base: h.base, Size: size, Label: label}
		if h.size == size {
			a.holes = append(a.holes[:i], a.holes[i+1:]...)
		} else {
			a.holes[i] = hole{base: h.base + size, size: h.size - size}
		}
		a.inUse += size
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		a.nAllocs++
		a.traceInstant("alloc:"+label, engine.CatAlloc, map[string]any{
			"bytes": size, "base": b.Base, "inUse": a.inUse, "peak": a.peak,
		})
		return b, nil
	}
	a.traceInstant("alloc:"+label, engine.CatFault, map[string]any{
		"kind": "oom", "bytes": size, "free": a.Available(),
	})
	if size <= a.Available() {
		return nil, fmt.Errorf("devmem: %w: %d bytes for %q (free %d, fragmented)", ErrOutOfMemory, size, label, a.Available())
	}
	return nil, fmt.Errorf("devmem: %w: %d bytes for %q (free %d of %d)", ErrOutOfMemory, size, label, a.Available(), a.capacity)
}

// MustAlloc is Alloc for callers that have already verified the footprint
// fits; it panics on failure.
func (a *Allocator) MustAlloc(size uint64, label string) *Block {
	b, err := a.Alloc(size, label)
	if err != nil {
		panic(err)
	}
	return b
}

// Free returns a block to the allocator, coalescing with adjacent holes.
// Double frees panic: they always indicate a lifetime bug in a transform.
func (a *Allocator) Free(b *Block) {
	if b.freed {
		panic(fmt.Sprintf("devmem: double free of %q [%d,%d)", b.Label, b.Base, b.End()))
	}
	b.freed = true
	a.inUse -= b.Size
	a.nFrees++
	a.traceInstant("free:"+b.Label, engine.CatAlloc, map[string]any{"bytes": b.Size, "inUse": a.inUse})
	i := sort.Search(len(a.holes), func(i int) bool { return a.holes[i].base >= b.Base })
	a.holes = append(a.holes, hole{})
	copy(a.holes[i+1:], a.holes[i:])
	a.holes[i] = hole{base: b.Base, size: b.Size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.holes) && a.holes[i].base+a.holes[i].size == a.holes[i+1].base {
		a.holes[i].size += a.holes[i+1].size
		a.holes = append(a.holes[:i+1], a.holes[i+2:]...)
	}
	if i > 0 && a.holes[i-1].base+a.holes[i-1].size == a.holes[i].base {
		a.holes[i-1].size += a.holes[i].size
		a.holes = append(a.holes[:i], a.holes[i+1:]...)
	}
}

// LargestHole returns the size of the biggest contiguous free region. The
// paper's §V-A motivates segmented buffers by the OS bounding the largest
// contiguous chunk; experiments use this to set that bound.
func (a *Allocator) LargestHole() uint64 {
	var max uint64
	for _, h := range a.holes {
		if h.size > max {
			max = h.size
		}
	}
	return max
}

// CheckInvariants verifies internal consistency: holes sorted, non-empty,
// non-overlapping, non-adjacent, and accounting matches. Used by tests.
func (a *Allocator) CheckInvariants() error {
	var free uint64
	for i, h := range a.holes {
		if h.size == 0 {
			return fmt.Errorf("hole %d empty", i)
		}
		if i > 0 {
			prev := a.holes[i-1]
			if prev.base+prev.size > h.base {
				return fmt.Errorf("holes %d,%d overlap", i-1, i)
			}
			if prev.base+prev.size == h.base {
				return fmt.Errorf("holes %d,%d not coalesced", i-1, i)
			}
		}
		free += h.size
	}
	if free+a.inUse != a.capacity {
		return fmt.Errorf("accounting: free %d + inUse %d != capacity %d", free, a.inUse, a.capacity)
	}
	return nil
}
