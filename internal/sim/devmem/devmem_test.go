package devmem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

const MiB = 1 << 20
const GiB = 1 << 30

func TestNewReservesOSMemory(t *testing.T) {
	a := New(8*GiB, 1*GiB)
	if a.Capacity() != 7*GiB {
		t.Fatalf("usable capacity = %d, want 7 GiB", a.Capacity())
	}
	if a.Available() != 7*GiB {
		t.Fatalf("free = %d, want 7 GiB", a.Available())
	}
}

func TestReservedAtLeastCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with reserved >= capacity did not panic")
		}
	}()
	New(GiB, GiB)
}

func TestAllocAndFree(t *testing.T) {
	a := New(GiB, 0)
	b, err := a.Alloc(100*MiB, "sptprice")
	if err != nil {
		t.Fatal(err)
	}
	if b.Size != 100*MiB || b.Label != "sptprice" {
		t.Fatalf("block = %+v", b)
	}
	if a.InUse() != 100*MiB {
		t.Fatalf("InUse = %d", a.InUse())
	}
	a.Free(b)
	if a.InUse() != 0 || a.Available() != GiB {
		t.Fatalf("after free: inUse=%d free=%d", a.InUse(), a.Available())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSizeAllocRejected(t *testing.T) {
	a := New(GiB, 0)
	if _, err := a.Alloc(0, "empty"); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
}

func TestOutOfMemory(t *testing.T) {
	a := New(GiB, 0)
	_, err := a.Alloc(2*GiB, "big")
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestOOMAfterFill(t *testing.T) {
	a := New(GiB, 0)
	if _, err := a.Alloc(GiB, "all"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1, "one"); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestPeakTracking(t *testing.T) {
	a := New(GiB, 0)
	b1 := a.MustAlloc(300*MiB, "x")
	b2 := a.MustAlloc(200*MiB, "y")
	a.Free(b1)
	a.MustAlloc(100*MiB, "z")
	if a.Peak() != 500*MiB {
		t.Fatalf("peak = %d, want 500 MiB", a.Peak())
	}
	a.ResetPeak()
	if a.Peak() != a.InUse() {
		t.Fatalf("after ResetPeak, peak=%d inUse=%d", a.Peak(), a.InUse())
	}
	_ = b2
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(GiB, 0)
	b := a.MustAlloc(MiB, "x")
	a.Free(b)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(b)
}

func TestCoalescingBothSides(t *testing.T) {
	a := New(3*MiB, 0)
	b1 := a.MustAlloc(MiB, "a")
	b2 := a.MustAlloc(MiB, "b")
	b3 := a.MustAlloc(MiB, "c")
	// Free outer blocks first, then the middle: must coalesce into one hole.
	a.Free(b1)
	a.Free(b3)
	a.Free(b2)
	if a.LargestHole() != 3*MiB {
		t.Fatalf("largest hole = %d, want 3 MiB (coalescing failed)", a.LargestHole())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentationBlocksLargeAlloc(t *testing.T) {
	a := New(4*MiB, 0)
	blocks := make([]*Block, 4)
	for i := range blocks {
		blocks[i] = a.MustAlloc(MiB, "x")
	}
	a.Free(blocks[0])
	a.Free(blocks[2])
	// 2 MiB free but split into two 1 MiB holes.
	if _, err := a.Alloc(2*MiB, "big"); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected fragmentation OOM, got %v", err)
	}
	if a.LargestHole() != MiB {
		t.Fatalf("largest hole = %d, want 1 MiB", a.LargestHole())
	}
}

func TestFirstFitReusesFreedBlock(t *testing.T) {
	a := New(10*MiB, 0)
	b1 := a.MustAlloc(2*MiB, "a")
	a.MustAlloc(MiB, "b")
	a.Free(b1)
	b3 := a.MustAlloc(MiB, "c")
	if b3.Base != 0 {
		t.Fatalf("first-fit should reuse hole at 0, got base %d", b3.Base)
	}
}

func TestAllocCount(t *testing.T) {
	a := New(GiB, 0)
	for i := 0; i < 5; i++ {
		a.MustAlloc(MiB, "x")
	}
	if a.AllocCount() != 5 {
		t.Fatalf("AllocCount = %d, want 5", a.AllocCount())
	}
}

func TestMustAllocPanicsOnOOM(t *testing.T) {
	a := New(MiB, 0)
	defer func() {
		if recover() == nil {
			t.Error("MustAlloc OOM did not panic")
		}
	}()
	a.MustAlloc(2*MiB, "big")
}

// Property: blocks returned by a random alloc/free workload never overlap,
// and invariants hold after every operation.
func TestRandomWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(64*MiB, 0)
	var live []*Block
	for op := 0; op < 3000; op++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := uint64(rng.Intn(4*MiB) + 1)
			b, err := a.Alloc(size, "r")
			if err == nil {
				for _, o := range live {
					if b.Base < o.End() && o.Base < b.End() {
						t.Fatalf("overlap: [%d,%d) and [%d,%d)", b.Base, b.End(), o.Base, o.End())
					}
				}
				live = append(live, b)
			}
		} else {
			i := rng.Intn(len(live))
			a.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
}

// Property: after freeing everything, the allocator returns to one hole
// covering the whole capacity.
func TestFreeAllRestoresFullCapacity(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := New(1<<24, 0)
		var live []*Block
		for _, s := range sizes {
			if b, err := a.Alloc(uint64(s)+1, "x"); err == nil {
				live = append(live, b)
			}
		}
		for _, b := range live {
			a.Free(b)
		}
		return a.InUse() == 0 && a.LargestHole() == a.Capacity() && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
