// Package pcie models the PCIe link between the host and the coprocessor.
//
// The link is full duplex: host-to-device and device-to-host transfers use
// independent DMA channels and can proceed concurrently (asynchronous
// offload_transfer in LEO). Each DMA transfer pays a fixed setup latency
// plus bytes/bandwidth. The fixed latency is what makes page-granularity
// shared memory (MYO) slow — millions of tiny transfers each pay it — and
// what the data-streaming block-size model trades against pipeline depth.
package pcie

import (
	"fmt"

	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
)

// Direction selects a DMA channel.
type Direction int

// Transfer directions.
const (
	HostToDevice Direction = iota
	DeviceToHost
)

func (d Direction) String() string {
	if d == HostToDevice {
		return "h2d"
	}
	return "d2h"
}

// Config holds the link parameters.
type Config struct {
	// BandwidthGBs is the sustained per-direction DMA bandwidth in GB/s.
	BandwidthGBs float64
	// SetupLatency is the fixed cost of initiating one DMA transfer
	// (driver call, descriptor setup, doorbell, completion interrupt).
	SetupLatency engine.Duration
	// FaultLatency is the extra channel occupancy of a failed DMA attempt
	// (error interrupt, driver cleanup) beyond the setup cost. Only used
	// when a fault injector is attached.
	FaultLatency engine.Duration
}

// Default returns the calibrated PCIe gen2 x16 parameters used in the
// paper's evaluation platform. The setup latency is scaled down with the
// workload sizes (see the note in internal/sim/machine/params.go) so that
// the DMA-count effects — MYO's page-fault storm, per-offload descriptor
// costs — keep their paper-scale ratios.
func Default() Config {
	return Config{
		BandwidthGBs: 6.0,
		SetupLatency: 100 * engine.Nanosecond,
		FaultLatency: 2 * engine.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BandwidthGBs <= 0 {
		return fmt.Errorf("pcie: bandwidth %v <= 0", c.BandwidthGBs)
	}
	if c.SetupLatency < 0 {
		return fmt.Errorf("pcie: negative setup latency %v", c.SetupLatency)
	}
	if c.FaultLatency < 0 {
		return fmt.Errorf("pcie: negative fault latency %v", c.FaultLatency)
	}
	return nil
}

// Bus is the simulated link. Construct with New.
type Bus struct {
	cfg    Config
	chans  [2]*engine.Resource
	bytes  [2]int64
	count  [2]int64
	inj    *fault.Injector
	faults int64
}

// New attaches a bus to the simulation.
func New(sim *engine.Sim, cfg Config) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h2d := sim.NewResource("pcie-h2d", 1)
	h2d.SetCategory(engine.CatDMAIn)
	d2h := sim.NewResource("pcie-d2h", 1)
	d2h.SetCategory(engine.CatDMAOut)
	return &Bus{
		cfg:   cfg,
		chans: [2]*engine.Resource{h2d, d2h},
	}
}

// Resource exposes the DMA channel for one direction; the runtime attaches
// engine.OverlapMeters to it so Stats.Overlap is trace-independent.
func (b *Bus) Resource(dir Direction) *engine.Resource { return b.chans[dir] }

// Config returns the bus parameters.
func (b *Bus) Config() Config { return b.cfg }

// TransferTime returns the duration of a single DMA of the given size.
func (b *Bus) TransferTime(bytes int64) engine.Duration {
	if bytes < 0 {
		panic(fmt.Sprintf("pcie: negative transfer size %d", bytes))
	}
	wire := engine.DurationOf(float64(bytes) / (b.cfg.BandwidthGBs * 1e9))
	return b.cfg.SetupLatency + wire
}

// Transfer starts a DMA in the given direction as soon as the channel is
// free, returning the completion event.
func (b *Bus) Transfer(dir Direction, label string, bytes int64) *engine.Event {
	return b.TransferAfter(nil, dir, label, bytes)
}

// TransferAfter starts a DMA once ready has fired (nil means immediately).
// Transfers in the same direction serialize on the channel FIFO; opposite
// directions overlap freely.
func (b *Bus) TransferAfter(ready *engine.Event, dir Direction, label string, bytes int64) *engine.Event {
	return b.TransferAfterArgs(ready, dir, label, bytes, nil)
}

// TransferAfterArgs is TransferAfter with extra structured args merged onto
// the transfer's trace span. The stream scheduler tags each DMA with its
// stream id this way, so per-stream transfer accounting can be re-derived
// from the trace; the link itself stays shared — streams arbitrate for the
// same two channel FIFOs.
func (b *Bus) TransferAfterArgs(ready *engine.Event, dir Direction, label string, bytes int64, extra map[string]any) *engine.Event {
	ch := b.chans[dir]
	b.bytes[dir] += bytes
	b.count[dir]++
	d := b.TransferTime(bytes)
	return ch.SubmitTagged(ready, label, ch.Category(), d, mergeArgs(map[string]any{"bytes": bytes}, extra))
}

func mergeArgs(base, extra map[string]any) map[string]any {
	for k, v := range extra {
		base[k] = v
	}
	return base
}

// SetInjector attaches a fault injector; subsequent TryTransferAfter calls
// consult it. A nil injector (the default) never fails.
func (b *Bus) SetInjector(inj *fault.Injector) { b.inj = inj }

// TryTransferAfter is TransferAfter under fault injection: the attempt may
// fail transiently. A failed attempt occupies the channel for the setup
// plus fault latency (error interrupt, driver cleanup) and moves no data;
// the returned event fires when the channel is released and ok is false.
// With no injector attached it is exactly TransferAfter.
func (b *Bus) TryTransferAfter(ready *engine.Event, dir Direction, label string, bytes int64) (done *engine.Event, ok bool) {
	return b.TryTransferAfterArgs(ready, dir, label, bytes, nil)
}

// TryTransferAfterArgs is TryTransferAfter with extra span args, the
// fault-injected counterpart of TransferAfterArgs. Failed attempts carry the
// extra args too, so chaos-schedule traces keep their stream attribution.
func (b *Bus) TryTransferAfterArgs(ready *engine.Event, dir Direction, label string, bytes int64, extra map[string]any) (done *engine.Event, ok bool) {
	if b.inj == nil || !b.inj.Next(fault.DMA) {
		return b.TransferAfterArgs(ready, dir, label, bytes, extra), true
	}
	b.faults++
	ch := b.chans[dir]
	d := b.cfg.SetupLatency + b.cfg.FaultLatency
	args := mergeArgs(map[string]any{"bytes": bytes, "kind": "dma", "dir": dir.String()}, extra)
	return ch.SubmitTagged(ready, label+"!fault", engine.CatFault, d, args), false
}

// FaultCount returns the number of injected DMA failures so far.
func (b *Bus) FaultCount() int64 { return b.faults }

// BytesMoved returns the total bytes queued in the given direction.
func (b *Bus) BytesMoved(dir Direction) int64 { return b.bytes[dir] }

// TotalBytes returns bytes moved in both directions.
func (b *Bus) TotalBytes() int64 { return b.bytes[0] + b.bytes[1] }

// TransferCount returns the number of DMA operations in the direction.
func (b *Bus) TransferCount(dir Direction) int64 { return b.count[dir] }

// TotalTransfers returns the number of DMA operations in both directions.
func (b *Bus) TotalTransfers() int64 { return b.count[0] + b.count[1] }

// BusyTime returns accumulated busy time of the given channel.
func (b *Bus) BusyTime(dir Direction) engine.Duration { return b.chans[dir].BusyTime() }
