package pcie

import (
	"testing"
	"testing/quick"

	"comp/internal/sim/engine"
)

func cfg() Config {
	return Config{BandwidthGBs: 1.0, SetupLatency: 10 * engine.Microsecond}
}

func TestTransferTime(t *testing.T) {
	s := engine.New()
	b := New(s, cfg())
	// 1 GB at 1 GB/s = 1 s + 10 us setup.
	got := b.TransferTime(1e9)
	want := engine.Second + 10*engine.Microsecond
	if got != want {
		t.Fatalf("TransferTime(1e9) = %v, want %v", got, want)
	}
}

func TestZeroByteTransferPaysSetupOnly(t *testing.T) {
	s := engine.New()
	b := New(s, cfg())
	if got := b.TransferTime(0); got != 10*engine.Microsecond {
		t.Fatalf("zero-byte transfer = %v, want setup latency only", got)
	}
}

func TestNegativeTransferPanics(t *testing.T) {
	s := engine.New()
	b := New(s, cfg())
	defer func() {
		if recover() == nil {
			t.Error("negative transfer size did not panic")
		}
	}()
	b.TransferTime(-1)
}

func TestSameDirectionSerializes(t *testing.T) {
	s := engine.New()
	b := New(s, cfg())
	e1 := b.Transfer(HostToDevice, "a", 1e9)
	e2 := b.Transfer(HostToDevice, "b", 1e9)
	s.Run()
	if e2.Time() <= e1.Time() {
		t.Fatalf("second h2d transfer finished at %v, first at %v; must serialize", e2.Time(), e1.Time())
	}
	per := engine.Second + 10*engine.Microsecond
	if e2.Time() != engine.Time(2*per) {
		t.Fatalf("second transfer done at %v, want %v", e2.Time(), 2*per)
	}
}

func TestOppositeDirectionsOverlap(t *testing.T) {
	s := engine.New()
	b := New(s, cfg())
	e1 := b.Transfer(HostToDevice, "in", 1e9)
	e2 := b.Transfer(DeviceToHost, "out", 1e9)
	s.Run()
	if e1.Time() != e2.Time() {
		t.Fatalf("full-duplex transfers finished at %v and %v, want equal", e1.Time(), e2.Time())
	}
}

func TestTransferAfterWaits(t *testing.T) {
	s := engine.New()
	b := New(s, cfg())
	ready := s.NewEvent("ready")
	done := b.TransferAfter(ready, HostToDevice, "x", 0)
	s.At(engine.Time(engine.Millisecond), func() { ready.Fire() })
	s.Run()
	want := engine.Time(engine.Millisecond + 10*engine.Microsecond)
	if done.Time() != want {
		t.Fatalf("gated transfer done at %v, want %v", done.Time(), want)
	}
}

func TestAccounting(t *testing.T) {
	s := engine.New()
	b := New(s, cfg())
	b.Transfer(HostToDevice, "a", 100)
	b.Transfer(HostToDevice, "b", 200)
	b.Transfer(DeviceToHost, "c", 50)
	s.Run()
	if b.BytesMoved(HostToDevice) != 300 || b.BytesMoved(DeviceToHost) != 50 {
		t.Fatalf("bytes h2d=%d d2h=%d, want 300/50", b.BytesMoved(HostToDevice), b.BytesMoved(DeviceToHost))
	}
	if b.TotalBytes() != 350 || b.TotalTransfers() != 3 {
		t.Fatalf("total bytes=%d transfers=%d, want 350/3", b.TotalBytes(), b.TotalTransfers())
	}
	if b.TransferCount(HostToDevice) != 2 {
		t.Fatalf("h2d count = %d, want 2", b.TransferCount(HostToDevice))
	}
}

func TestManySmallTransfersSlowerThanOneBig(t *testing.T) {
	// The MYO pathology: the same bytes in page-sized pieces pay the setup
	// latency per piece.
	total := int64(1 << 28)
	page := int64(4096)
	s1 := engine.New()
	b1 := New(s1, Default())
	big := b1.Transfer(HostToDevice, "bulk", total)
	s1.Run()

	s2 := engine.New()
	b2 := New(s2, Default())
	var last *engine.Event
	for off := int64(0); off < total; off += page {
		last = b2.Transfer(HostToDevice, "page", page)
	}
	s2.Run()
	ratio := float64(last.Time()) / float64(big.Time())
	// The scaled setup latency alone costs each 4 KiB page ~15% of its
	// wire time; MYO's much larger fault-handling overhead sits on top of
	// this (covered in internal/myo's tests).
	if ratio < 1.1 {
		t.Fatalf("paged/bulk transfer ratio %.2f, want >= 1.1", ratio)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero bandwidth did not panic")
		}
	}()
	New(engine.New(), Config{BandwidthGBs: 0})
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{BandwidthGBs: 1, SetupLatency: -1}).Validate(); err == nil {
		t.Error("negative latency passed Validate")
	}
}

func TestDirectionString(t *testing.T) {
	if HostToDevice.String() != "h2d" || DeviceToHost.String() != "d2h" {
		t.Fatal("direction strings wrong")
	}
}

// Property: transfer time is additive in splits up to per-piece setup cost:
// time(a+b) + setup == time(a) + time(b).
func TestTransferTimeAdditiveProperty(t *testing.T) {
	s := engine.New()
	b := New(s, cfg())
	f := func(a, bb uint32) bool {
		whole := b.TransferTime(int64(a) + int64(bb))
		split := b.TransferTime(int64(a)) + b.TransferTime(int64(bb))
		diff := split - whole - cfg().SetupLatency
		return diff >= -1 && diff <= 1 // nanosecond rounding
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
