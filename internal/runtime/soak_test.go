package runtime

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"comp/internal/interp"
	"comp/internal/sim/fault"
)

// soakSource is a small double-buffer-free offload program; the soak cares
// about submission concurrency and fault recovery, not pipeline shape.
const soakSource = `
float a[16384];
float b[16384];
int n;
int main(void) {
    int i;
    n = 16384;
    for (i = 0; i < n; i++) {
        a[i] = i * 0.25 + 1.0;
    }
    #pragma offload target(mic:0) in(a : length(n)) out(b : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        b[i] = sqrt(a[i]) * 2.0 + exp(a[i] * 0.0001);
    }
    return 0;
}
`

// soakRun submits 32 submitters × perEach requests from concurrent
// goroutines (or serially when parallelSubmit is false) and runs the batch
// under chaos faults.
func soakRun(t *testing.T, parallelSubmit bool, perEach int) (SchedStats, [][]float64) {
	t.Helper()
	const submitters = 32
	cfg := DefaultConfig()
	cfg.DisableTrace = true
	cfg.Faults = fault.Uniform(11, 0.3)
	sched, err := NewScheduler(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*interp.Program, submitters*perEach)
	submit := func(c int) {
		for j := 0; j < perEach; j++ {
			idx := c*perEach + j
			p, err := interp.Compile(soakSource)
			if err != nil {
				t.Error(err)
				return
			}
			progs[idx] = p
			sched.Submit(Request{Label: fmt.Sprintf("soak-%03d", idx), Program: p})
		}
	}
	if parallelSubmit {
		var wg sync.WaitGroup
		for c := 0; c < submitters; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				submit(c)
			}(c)
		}
		wg.Wait()
	} else {
		for c := 0; c < submitters; c++ {
			submit(c)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	res, err := sched.Run()
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]float64, len(progs))
	for i, p := range progs {
		data, err := p.ArrayData("b")
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = append([]float64(nil), data...)
	}
	return res.Stats, outs
}

// TestSoakScheduler32SubmittersChaos is the scheduler half of the CI race
// job: 32 goroutines racing Submit against a chaos-faulted platform, then
// the whole batch executed. The schedule must be a pure function of the
// submitted set: a serially-submitted run of the same set must produce the
// identical stats and identical per-request outputs.
func TestSoakScheduler32SubmittersChaos(t *testing.T) {
	concurrent, outsA := soakRun(t, true, 2)
	serial, outsB := soakRun(t, false, 2)
	if !reflect.DeepEqual(concurrent, serial) {
		t.Fatalf("stats differ between concurrent and serial submission:\n%+v\nvs\n%+v", concurrent, serial)
	}
	for i := range outsA {
		if !reflect.DeepEqual(outsA[i], outsB[i]) {
			t.Fatalf("request %d outputs differ between submission interleavings", i)
		}
	}
	if concurrent.FaultsInjected == 0 {
		t.Fatal("chaos soak injected no faults; the schedule exercised nothing")
	}
	if len(concurrent.Requests) != 64 {
		t.Fatalf("requests executed %d, want 64", len(concurrent.Requests))
	}
	for _, rq := range concurrent.Requests {
		if len(rq.DeadlockWarnings) != 0 {
			t.Fatalf("request %s deadlocked: %v", rq.Label, rq.DeadlockWarnings)
		}
	}
}
