package runtime

import (
	"strings"
	"testing"

	"comp/internal/interp"
)

// racySingleBuffer is a broken hand-written pipeline: it prefetches the
// next block into the SAME device buffer the current kernel reads. The
// interpreter's sequential execution still computes correct values, but
// on real hardware the DMA would overwrite data mid-kernel; the runtime's
// timing-domain race detector must flag it.
const racySingleBuffer = `
float src[65536];
float dst[65536];
float *buf;
float *outb;
int sig;
int n;

int main(void) {
    int i;
    int blk;
    n = 65536;
    int bs = n / 8;
    #pragma offload_transfer target(mic:0) nocopy(buf : length(bs) alloc_if(1) free_if(0)) nocopy(outb : length(bs) alloc_if(1) free_if(0))
    #pragma offload_transfer target(mic:0) in(src[0 : bs] : into(buf) alloc_if(0) free_if(0)) signal(&sig)
    for (blk = 0; blk < 8; blk++) {
        if (blk + 1 < 8) {
            // BUG: prefetch into the buffer the kernel is about to read.
            #pragma offload_transfer target(mic:0) in(src[(blk + 1) * bs : bs] : into(buf) alloc_if(0) free_if(0)) signal(&sig)
        }
        #pragma offload target(mic:0) out(outb[0 : bs] : into(dst[blk * bs : bs]) alloc_if(0) free_if(0))
        #pragma omp parallel for
        for (i = 0; i < bs; i++) {
            outb[i] = sqrt(buf[i] + 1.0) * 2.0 + exp(buf[i] * 0.0001);
        }
    }
    return 0;
}
`

func TestRaceDetectorFlagsSingleBufferPipeline(t *testing.T) {
	p, err := interp.Compile(racySingleBuffer)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.RaceWarnings) == 0 {
		t.Fatal("single-buffer pipeline produced no race warnings")
	}
	w := res.Stats.RaceWarnings[0]
	if !strings.Contains(w, `device buffer "buf"`) {
		t.Fatalf("warning does not name the racy buffer: %s", w)
	}
}

func TestRaceDetectorCleanOnCorrectPipeline(t *testing.T) {
	// The correctly double-buffered pipeline from the streaming tests.
	p, err := interp.Compile(streamedSource(1<<17, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.RaceWarnings) != 0 {
		t.Fatalf("correct pipeline flagged: %v", res.Stats.RaceWarnings)
	}
}

func TestRaceDetectorCleanOnSynchronousOffload(t *testing.T) {
	p, err := interp.Compile(simpleOffload)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.RaceWarnings) != 0 {
		t.Fatalf("synchronous offload flagged: %v", res.Stats.RaceWarnings)
	}
}

func TestRaceWarningsCapped(t *testing.T) {
	p, err := interp.Compile(strings.ReplaceAll(racySingleBuffer, "n / 8", "n / 64"))
	if err != nil {
		t.Fatal(err)
	}
	src2 := strings.ReplaceAll(racySingleBuffer, "blk < 8", "blk < 64")
	src2 = strings.ReplaceAll(src2, "blk + 1 < 8", "blk + 1 < 64")
	src2 = strings.ReplaceAll(src2, "n / 8", "n / 64")
	p, err = interp.Compile(src2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	warns := res.Stats.RaceWarnings
	if len(warns) == 0 || len(warns) > maxRaceWarnings+1 {
		t.Fatalf("warnings = %d, want in (0, %d]", len(warns), maxRaceWarnings+1)
	}
	// Truncation must say how much it dropped rather than dropping silently.
	if len(warns) == maxRaceWarnings+1 && !strings.Contains(warns[len(warns)-1], "more") {
		t.Fatalf("truncated list lacks the '... and N more' sentinel: %q", warns[len(warns)-1])
	}
}
