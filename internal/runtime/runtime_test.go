package runtime

import (
	"fmt"
	"strings"
	"testing"

	"comp/internal/interp"
	"comp/internal/sim/engine"
	"comp/internal/sim/pcie"
)

func mustRun(t *testing.T, src string, cfg Config) Result {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestHostOnlyProgram(t *testing.T) {
	res := mustRun(t, `
float a[1000];
int main(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < 1000; i++) {
        a[i] = i * 2.0;
    }
    return 0;
}
`, DefaultConfig())
	if res.Stats.KernelLaunches != 0 || res.Stats.Transfers != 0 {
		t.Fatalf("host-only run touched the device: %+v", res.Stats)
	}
	if res.Stats.Time <= 0 {
		t.Fatal("host-only run took no time")
	}
	if res.Stats.HostBusy != res.Stats.Time {
		t.Fatalf("host busy %v != makespan %v for host-only run", res.Stats.HostBusy, res.Stats.Time)
	}
}

const simpleOffload = `
float a[65536];
float b[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        a[i] = i;
    }
    #pragma offload target(mic:0) in(a : length(n)) out(b : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        b[i] = sqrt(a[i]) * 2.0;
    }
    return 0;
}
`

func TestSimpleOffloadAccounting(t *testing.T) {
	res := mustRun(t, simpleOffload, DefaultConfig())
	st := res.Stats
	if st.KernelLaunches != 1 {
		t.Fatalf("launches = %d, want 1", st.KernelLaunches)
	}
	if st.BytesIn != 65536*4 {
		t.Fatalf("bytes in = %d, want %d", st.BytesIn, 65536*4)
	}
	if st.BytesOut != 65536*4 {
		t.Fatalf("bytes out = %d, want %d", st.BytesOut, 65536*4)
	}
	// Default lifetimes: both buffers resident simultaneously.
	if st.PeakDeviceBytes != 2*65536*4 {
		t.Fatalf("peak device bytes = %d, want %d", st.PeakDeviceBytes, 2*65536*4)
	}
	// Synchronous offload: no overlap between transfer and compute.
	if st.Overlap != 0 {
		t.Fatalf("overlap = %v, want 0 for synchronous offload", st.Overlap)
	}
	// Makespan covers host + transfer + kernel.
	min := st.DeviceBusy + st.TransferBusy
	if st.Time < min {
		t.Fatalf("makespan %v < device+transfer %v", st.Time, min)
	}
}

func TestOffloadOOM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MIC.MemBytes = 1 << 20 // 1 MiB device
	cfg.MIC.OSReservedBytes = 0
	p, err := interp.Compile(simpleOffload) // needs 512 KiB -- fits
	if err != nil {
		t.Fatal(err)
	}
	if res, errRun := Run(p, cfg); errRun != nil {
		t.Fatalf("512 KiB footprint should fit in 1 MiB: %v", errRun)
	} else if len(res.Stats.Fallbacks) != 0 {
		t.Fatalf("fitting run degraded: %v", res.Stats.Fallbacks)
	}

	// 256 KiB: the working set no longer fits. With recovery disabled the
	// run fails hard, exactly as the old runtime did.
	cfg.MIC.MemBytes = 1 << 18
	cfg.Recovery.Disabled = true
	p2, _ := interp.Compile(simpleOffload)
	_, err = Run(p2, cfg)
	if err == nil || !strings.Contains(err.Error(), "out of device memory") {
		t.Fatalf("err = %v, want device OOM", err)
	}

	// With recovery (the default) the runtime degrades to the synchronous
	// staging plan and the run completes with correct outputs.
	cfg.Recovery.Disabled = false
	p3, _ := interp.Compile(simpleOffload)
	res, err := Run(p3, cfg)
	if err != nil {
		t.Fatalf("recovery should survive OOM: %v", err)
	}
	if len(res.Stats.Fallbacks) == 0 {
		t.Fatal("OOM recovery recorded no Fallbacks entry")
	}
	if !strings.Contains(res.Stats.Fallbacks[0], "synchronous") {
		t.Fatalf("fallback does not name the sync rung: %q", res.Stats.Fallbacks[0])
	}
	b, err := res.Program.ArrayData("b")
	if err != nil {
		t.Fatal(err)
	}
	if b[9] != 6 { // sqrt(9) * 2
		t.Fatalf("degraded run corrupted outputs: b[9] = %v, want 6", b[9])
	}
}

// streamedSource builds a double-buffered streamed version of a simple
// kernel over nblocks blocks, the shape Figure 5(c) describes.
func streamedSource(n, nblocks int, persist bool) string {
	bs := n / nblocks
	persistClause := ""
	if persist {
		persistClause = " persist(1)"
	}
	return fmt.Sprintf(`
float a[%d];
float b[%d];
float *a1;
float *a2;
float *b1;
int sig0;
int sig1;
int main(void) {
    int n = %d;
    int bs = %d;
    int nblocks = %d;
    int i;
    int blk;
    for (i = 0; i < n; i++) {
        a[i] = i;
    }
    #pragma offload_transfer target(mic:0) nocopy(a1 : length(bs) alloc_if(1) free_if(0)) nocopy(a2 : length(bs) alloc_if(1) free_if(0)) nocopy(b1 : length(bs) alloc_if(1) free_if(0))
    #pragma offload_transfer target(mic:0) in(a[0 : bs] : into(a1) alloc_if(0) free_if(0)) signal(&sig0)
    for (blk = 0; blk < nblocks; blk++) {
        if (blk %% 2 == 0) {
            if (blk + 1 < nblocks) {
                #pragma offload_transfer target(mic:0) in(a[(blk + 1) * bs : bs] : into(a2) alloc_if(0) free_if(0)) signal(&sig1)
                sig1 = sig1;
            }
            #pragma offload target(mic:0) nocopy(a1 : length(bs) alloc_if(0) free_if(0)) out(b1[0 : bs] : into(b[blk * bs : bs]) alloc_if(0) free_if(0)) wait(&sig0)%s
            #pragma omp parallel for
            for (i = 0; i < bs; i++) {
                b1[i] = sqrt(a1[i]) * 2.0;
            }
        } else {
            if (blk + 1 < nblocks) {
                #pragma offload_transfer target(mic:0) in(a[(blk + 1) * bs : bs] : into(a1) alloc_if(0) free_if(0)) signal(&sig0)
                sig0 = sig0;
            }
            #pragma offload target(mic:0) nocopy(a2 : length(bs) alloc_if(0) free_if(0)) out(b1[0 : bs] : into(b[blk * bs : bs]) alloc_if(0) free_if(0)) wait(&sig1)%s
            #pragma omp parallel for
            for (i = 0; i < bs; i++) {
                b1[i] = sqrt(a2[i]) * 2.0;
            }
        }
    }
    return 0;
}
`, n, n, n, bs, nblocks, persistClause, persistClause)
}

// unstreamedSource is the equivalent single offload.
func unstreamedSource(n int) string {
	return fmt.Sprintf(`
float a[%d];
float b[%d];
int main(void) {
    int n = %d;
    int i;
    for (i = 0; i < n; i++) {
        a[i] = i;
    }
    #pragma offload target(mic:0) in(a : length(n)) out(b : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        b[i] = sqrt(a[i]) * 2.0;
    }
    return 0;
}
`, n, n, n)
}

func TestStreamingOverlapsAndWins(t *testing.T) {
	const n = 1 << 18
	cfg := DefaultConfig()

	base := mustRun(t, unstreamedSource(n), cfg)
	streamed := mustRun(t, streamedSource(n, 16, false), cfg)

	// Value equivalence.
	b1, err := base.Program.ArrayData("b")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := streamed.Program.ArrayData("b")
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("b[%d]: streamed %v != base %v", i, b2[i], b1[i])
		}
	}

	// Streaming must overlap transfer with compute.
	if streamed.Stats.Overlap <= 0 {
		t.Fatal("streamed run shows no transfer/compute overlap")
	}
	if base.Stats.Overlap != 0 {
		t.Fatalf("baseline overlap = %v, want 0", base.Stats.Overlap)
	}
	// Device memory shrinks: 3 block buffers vs 2 full arrays.
	if streamed.Stats.PeakDeviceBytes >= base.Stats.PeakDeviceBytes/4 {
		t.Fatalf("streamed peak %d not <= base peak %d / 4",
			streamed.Stats.PeakDeviceBytes, base.Stats.PeakDeviceBytes)
	}
	t.Logf("base %v streamed %v (launches %d vs %d)",
		base.Stats.Time, streamed.Stats.Time, base.Stats.KernelLaunches, streamed.Stats.KernelLaunches)
}

func TestPersistentKernelReducesLaunches(t *testing.T) {
	const n = 1 << 18
	cfg := DefaultConfig()
	relaunch := mustRun(t, streamedSource(n, 16, false), cfg)
	persist := mustRun(t, streamedSource(n, 16, true), cfg)
	if relaunch.Stats.KernelLaunches != 16 {
		t.Fatalf("relaunch launches = %d, want 16", relaunch.Stats.KernelLaunches)
	}
	// The two block pragmas (even/odd branches) each keep one persistent
	// kernel resident.
	if persist.Stats.KernelLaunches != 2 {
		t.Fatalf("persistent launches = %d, want 2", persist.Stats.KernelLaunches)
	}
	if persist.Stats.Time >= relaunch.Stats.Time {
		t.Fatalf("persistent kernel %v not faster than relaunching %v",
			persist.Stats.Time, relaunch.Stats.Time)
	}
}

func TestAsyncTransferOverlapsHostCompute(t *testing.T) {
	src := `
float a[262144];
float big[262144];
int tag;
int main(void) {
    int i;
    for (i = 0; i < 262144; i++) {
        a[i] = i;
    }
    #pragma offload_transfer target(mic:0) in(a : length(262144) free_if(0)) signal(&tag)
    // Host keeps computing while the DMA runs.
    #pragma omp parallel for
    for (i = 0; i < 262144; i++) {
        big[i] = sqrt(a[i]) + exp(a[i] / 262144.0);
    }
    #pragma offload_wait target(mic:0) wait(&tag)
    return 0;
}
`
	res := mustRun(t, src, DefaultConfig())
	st := res.Stats
	sum := st.HostBusy + st.TransferBusy
	if st.Time >= sum {
		t.Fatalf("makespan %v >= host+transfer %v: no async overlap", st.Time, sum)
	}
}

func TestOffloadWaitBlocksHost(t *testing.T) {
	// Without the wait, host finishes before the transfer drains; with it,
	// makespan includes the DMA.
	mk := func(withWait bool) Result {
		wait := ""
		if withWait {
			wait = "#pragma offload_wait target(mic:0) wait(&tag)"
		}
		return mustRun(t, fmt.Sprintf(`
float a[1048576];
int tag;
int main(void) {
    a[0] = 1.0;
    #pragma offload_transfer target(mic:0) in(a : length(1048576) free_if(0)) signal(&tag)
    %s
    return 0;
}
`, wait), DefaultConfig())
	}
	withWait := mk(true)
	tt := New(DefaultConfig()).bus.TransferTime(1048576 * 4)
	if withWait.Stats.Time < tt {
		t.Fatalf("waited makespan %v < transfer time %v", withWait.Stats.Time, tt)
	}
}

func TestRepeatedOffloadsPayLaunchEachTime(t *testing.T) {
	src := `
float a[1024];
int main(void) {
    int r;
    int i;
    for (r = 0; r < 10; r++) {
        #pragma offload target(mic:0) inout(a : length(1024))
        #pragma omp parallel for
        for (i = 0; i < 1024; i++) {
            a[i] = a[i] + 1.0;
        }
    }
    return 0;
}
`
	res := mustRun(t, src, DefaultConfig())
	if res.Stats.KernelLaunches != 10 {
		t.Fatalf("launches = %d, want 10", res.Stats.KernelLaunches)
	}
	// inout transfers both ways, 10 times, plus no leaks: peak is one array.
	if res.Stats.PeakDeviceBytes != 1024*4 {
		t.Fatalf("peak = %d, want %d", res.Stats.PeakDeviceBytes, 1024*4)
	}
	av, _ := res.Program.ArrayData("a")
	if av[7] != 10 {
		t.Fatalf("a[7] = %v, want 10", av[7])
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.CPUThreads = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero CPU threads passed validation")
	}
	bad2 := cfg
	bad2.MIC.ClockGHz = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("invalid MIC config passed validation")
	}
	bad3 := cfg
	bad3.PCIe = pcie.Config{}
	err := bad3.Validate()
	if err == nil {
		t.Fatal("zero-value PCIe config passed validation")
	}
	if !strings.Contains(err.Error(), "Config.PCIe") {
		t.Fatalf("PCIe error does not name the field: %v", err)
	}
	bad4 := cfg
	bad4.CPUThreads = cfg.CPU.MaxThreads() + 1
	err = bad4.Validate()
	if err == nil {
		t.Fatal("CPUThreads beyond the machine maximum passed validation")
	}
	if !strings.Contains(err.Error(), "Config.CPUThreads") {
		t.Fatalf("CPUThreads error does not name the field: %v", err)
	}
	bad5 := cfg
	bad5.MICThreads = cfg.MIC.MaxThreads() + 1
	err = bad5.Validate()
	if err == nil {
		t.Fatal("MICThreads beyond the device maximum passed validation")
	}
	if !strings.Contains(err.Error(), "Config.MICThreads") {
		t.Fatalf("MICThreads error does not name the field: %v", err)
	}
	bad6 := cfg
	bad6.Faults.DMARate = 2
	if err := bad6.Validate(); err == nil {
		t.Fatal("out-of-range fault rate passed validation")
	}
	bad7 := cfg
	bad7.Recovery.MaxRetries = -1
	if err := bad7.Validate(); err == nil {
		t.Fatal("negative MaxRetries passed validation")
	}
}

func TestFinishTwicePanics(t *testing.T) {
	r := New(DefaultConfig())
	r.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("second Finish did not panic")
		}
	}()
	r.Finish()
}

func TestRunWithSetupInjectsInputs(t *testing.T) {
	p, err := interp.Compile(`
float data[8];
float total;
int main(void) {
    int i;
    total = 0.0;
    for (i = 0; i < 8; i++) {
        total += data[i];
    }
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithSetup(p, DefaultConfig(), func(pp *interp.Program) error {
		return pp.SetArray("data", []float64{1, 1, 1, 1, 2, 2, 2, 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Program.Scalar("total")
	if v != 12 {
		t.Fatalf("total = %v, want 12", v)
	}
}

func TestDeviceFasterThanHostOnParallelKernel(t *testing.T) {
	// A compute-heavy vectorizable kernel: 200 MIC threads should beat 4
	// CPU threads even after paying for transfers.
	hostSrc := `
float a[262144];
float b[262144];
int main(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < 262144; i++) {
        float acc = a[i];
        int k;
        for (k = 0; k < 8; k++) {
            acc = exp(log(sqrt(acc + 2.0) + 1.0)) * 3.0 + pow(acc + 1.0, 0.5);
        }
        b[i] = acc;
    }
    return 0;
}
`
	micSrc := `
float a[262144];
float b[262144];
int main(void) {
    int i;
    #pragma offload target(mic:0) in(a : length(262144)) out(b : length(262144))
    #pragma omp parallel for
    for (i = 0; i < 262144; i++) {
        float acc = a[i];
        int k;
        for (k = 0; k < 8; k++) {
            acc = exp(log(sqrt(acc + 2.0) + 1.0)) * 3.0 + pow(acc + 1.0, 0.5);
        }
        b[i] = acc;
    }
    return 0;
}
`
	cfg := DefaultConfig()
	host := mustRun(t, hostSrc, cfg)
	mic := mustRun(t, micSrc, cfg)
	if mic.Stats.Time >= host.Stats.Time {
		t.Fatalf("MIC %v not faster than CPU %v on compute-bound kernel", mic.Stats.Time, host.Stats.Time)
	}
}

func TestStatsDurationsNonNegative(t *testing.T) {
	res := mustRun(t, simpleOffload, DefaultConfig())
	st := res.Stats
	for name, d := range map[string]engine.Duration{
		"time": st.Time, "host": st.HostBusy, "device": st.DeviceBusy,
		"transfer": st.TransferBusy, "overlap": st.Overlap,
	} {
		if d < 0 {
			t.Errorf("%s = %v, want >= 0", name, d)
		}
	}
}
