// Package runtime is the offload runtime: it implements interp.Backend by
// mapping the interpreter's operation stream (host compute segments,
// offloads, asynchronous transfers, waits) onto the discrete-event machine
// — PCIe DMA channels, the device compute fabric with launch overhead and
// persistent kernels, and the capacity-limited device memory.
//
// It is the analogue of Intel's LEO runtime plus the lower-level COI layer
// the paper drops to for signal-based kernel reuse (§III-C).
package runtime

import (
	"fmt"

	"comp/internal/interp"
	"comp/internal/minic"
	"comp/internal/sim/devmem"
	"comp/internal/sim/engine"
	"comp/internal/sim/kernel"
	"comp/internal/sim/machine"
	"comp/internal/sim/pcie"
)

// Config assembles the simulated platform.
type Config struct {
	CPU        machine.Config
	MIC        machine.Config
	PCIe       pcie.Config
	CPUThreads int
	MICThreads int
}

// DefaultConfig returns the calibrated evaluation platform (§VI): a Xeon
// E5-2660 host with 4 worker threads and a Xeon Phi with 200 threads.
func DefaultConfig() Config {
	return Config{
		CPU:        machine.XeonE5(),
		MIC:        machine.XeonPhi(),
		PCIe:       pcie.Default(),
		CPUThreads: machine.DefaultCPUThreads,
		MICThreads: machine.DefaultMICThreads,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.MIC.Validate(); err != nil {
		return err
	}
	if err := c.PCIe.Validate(); err != nil {
		return err
	}
	if c.CPUThreads < 1 || c.MICThreads < 1 {
		return fmt.Errorf("runtime: thread counts must be positive")
	}
	return nil
}

// Stats summarizes one simulated run.
type Stats struct {
	// Time is the end-to-end makespan.
	Time engine.Duration
	// HostBusy, DeviceBusy are busy times of the compute resources.
	HostBusy   engine.Duration
	DeviceBusy engine.Duration
	// TransferBusy is total DMA channel busy time (both directions).
	TransferBusy engine.Duration
	// Overlap is the time transfers and device compute proceeded
	// concurrently — the quantity data streaming maximizes.
	Overlap engine.Duration
	// KernelLaunches counts kernel starts (persistent kernels count once).
	KernelLaunches int64
	// Transfers counts DMA operations; BytesIn/BytesOut their payloads.
	Transfers int64
	BytesIn   int64
	BytesOut  int64
	// PeakDeviceBytes is the device memory high-water mark.
	PeakDeviceBytes uint64
	// RaceWarnings lists pipelining races detected after the run: DMAs
	// that overwrote a device buffer while a kernel using that buffer was
	// still in flight. The interpreter's sequential value execution hides
	// such races, so a non-empty list means the (possibly hand-written)
	// pipelined code is incorrect on real hardware even though its
	// simulated outputs look right.
	RaceWarnings []string
	// DeadlockWarnings lists operations that never completed because a
	// signal tag they waited on never fired. On real hardware the program
	// hangs; in the simulator the stalled work silently drops out of the
	// makespan, so it is surfaced here instead.
	DeadlockWarnings []string
}

// Runtime implements interp.Backend over the discrete-event simulator.
type Runtime struct {
	cfg      Config
	sim      *engine.Sim
	bus      *pcie.Bus
	launcher *kernel.Launcher
	mem      *devmem.Allocator
	host     *engine.Resource

	// hostTail is the event after which the host thread is free again.
	hostTail *engine.Event
	// tags maps signal names to their completion events.
	tags map[string]*engine.Event
	// persistent kernels keyed by offload pragma identity.
	persist map[*minic.Pragma]*kernel.Persistent
	// device buffer blocks by name.
	bufs map[string]*devmem.Block

	// Intervals for post-run race detection.
	bufWrites  []interval // DMA writes into device buffers
	kernelUses []interval // kernel executions touching device buffers

	// kernelDone tracks every kernel completion event for deadlock checks.
	kernelDone []*engine.Event

	finished bool
}

// interval is a resource occupation tied to a buffer, resolved after the
// simulation runs (the event fires at the interval's end; the duration is
// known at submission).
type interval struct {
	buf    string
	label  string
	done   *engine.Event
	dur    engine.Duration
	loByte int64
	hiByte int64 // exclusive
}

func (iv interval) bounds() (engine.Time, engine.Time) {
	end := iv.done.Time()
	return end - engine.Time(iv.dur), end
}

// New builds a runtime over a fresh simulation.
func New(cfg Config) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sim := engine.New()
	memBytes := cfg.MIC.MemBytes
	if memBytes == 0 {
		memBytes = 8 << 30
	}
	r := &Runtime{
		cfg:      cfg,
		sim:      sim,
		bus:      pcie.New(sim, cfg.PCIe),
		launcher: kernel.NewLauncher(sim, cfg.MIC.LaunchOverhead),
		mem:      devmem.New(memBytes, cfg.MIC.OSReservedBytes),
		host:     sim.NewResource("cpu", 1),
		tags:     map[string]*engine.Event{},
		persist:  map[*minic.Pragma]*kernel.Persistent{},
		bufs:     map[string]*devmem.Block{},
	}
	r.hostTail = sim.FiredEvent()
	return r
}

// Sim exposes the simulation (tests inspect the trace).
func (r *Runtime) Sim() *engine.Sim { return r.sim }

// Memory exposes the device allocator.
func (r *Runtime) Memory() *devmem.Allocator { return r.mem }

// regionTime converts a measured Work into wall time on a machine.
func regionTime(m machine.Config, w interp.Work, threads int) engine.Duration {
	d := m.SerialTime(w.Serial.Flops)
	d += m.WorkTime(w.Vec.Flops, w.Vec.Bytes, w.Vec.IrregularFrac(), true, threads)
	d += m.WorkTime(w.Scalar.Flops, w.Scalar.Bytes, w.Scalar.IrregularFrac(), false, threads)
	return d
}

// HostCompute implements interp.Backend.
func (r *Runtime) HostCompute(w interp.Work) {
	d := regionTime(r.cfg.CPU, w, r.cfg.CPUThreads)
	r.hostTail = r.host.SubmitAfter(r.hostTail, "compute", d)
}

// tag returns the event for a signal tag, creating an unfired placeholder
// if the tag has not been signalled yet (waiting on a never-signalled tag
// deadlocks on real hardware; here it simply never gates anything, and
// Finish reports it).
func (r *Runtime) tag(name string) *engine.Event {
	if ev, ok := r.tags[name]; ok {
		return ev
	}
	ev := r.sim.NewEvent("tag:" + name)
	r.tags[name] = ev
	return ev
}

// allocSpecs performs device allocations for an op's specs in program
// order, returning an OOM error if capacity is exceeded. Each allocation
// costs AllocOverhead of host time — the §III-A overhead the streaming
// transform hoists out of the loop.
func (r *Runtime) allocSpecs(specs []interp.TransferSpec) error {
	allocs := 0
	for _, sp := range specs {
		if sp.Scalar || !sp.Alloc {
			continue
		}
		if old := r.bufs[sp.Dest]; old != nil {
			r.mem.Free(old)
			delete(r.bufs, sp.Dest)
		}
		if sp.AllocBytes == 0 {
			continue
		}
		b, err := r.mem.Alloc(uint64(sp.AllocBytes), sp.Dest)
		if err != nil {
			return err
		}
		r.bufs[sp.Dest] = b
		allocs++
	}
	if allocs > 0 && r.cfg.MIC.AllocOverhead > 0 {
		d := engine.Duration(allocs) * r.cfg.MIC.AllocOverhead
		r.hostTail = r.host.SubmitAfter(r.hostTail, "alloc", d)
	}
	return nil
}

// freeSpecs releases buffers whose specs request freeing.
func (r *Runtime) freeSpecs(specs []interp.TransferSpec) {
	for _, sp := range specs {
		if sp.Scalar || !sp.Free {
			continue
		}
		if b := r.bufs[sp.Dest]; b != nil {
			r.mem.Free(b)
			delete(r.bufs, sp.Dest)
		}
	}
}

// submitInputs schedules the host-to-device DMAs of an op. Scalar items
// are batched into one descriptor; each array item is its own DMA.
func (r *Runtime) submitInputs(specs []interp.TransferSpec, after *engine.Event) []*engine.Event {
	var events []*engine.Event
	var scalarBytes int64
	for _, sp := range specs {
		if sp.Dir != interp.DirIn {
			continue
		}
		if sp.Scalar {
			scalarBytes += sp.Bytes
			continue
		}
		ev := r.bus.TransferAfter(after, pcie.HostToDevice, sp.Item.Name+"->"+sp.Dest, sp.Bytes)
		r.bufWrites = append(r.bufWrites, interval{
			buf:    sp.Dest,
			label:  sp.Item.Name + "->" + sp.Dest,
			done:   ev,
			dur:    r.bus.TransferTime(sp.Bytes),
			loByte: sp.DestOffsetBytes,
			hiByte: sp.DestOffsetBytes + sp.Bytes,
		})
		events = append(events, ev)
	}
	if scalarBytes > 0 {
		events = append(events, r.bus.TransferAfter(after, pcie.HostToDevice, "scalars", scalarBytes))
	}
	return events
}

// submitOutputs schedules the device-to-host DMAs of an op.
func (r *Runtime) submitOutputs(specs []interp.TransferSpec, after *engine.Event) []*engine.Event {
	var events []*engine.Event
	var scalarBytes int64
	for _, sp := range specs {
		if sp.Dir != interp.DirOut {
			continue
		}
		if sp.Scalar {
			scalarBytes += sp.Bytes
			continue
		}
		events = append(events, r.bus.TransferAfter(after, pcie.DeviceToHost, sp.Dest+"->host", sp.Bytes))
	}
	if scalarBytes > 0 {
		events = append(events, r.bus.TransferAfter(after, pcie.DeviceToHost, "scalars", scalarBytes))
	}
	return events
}

// Offload implements interp.Backend: allocate, move inputs, run the
// kernel (gated on the wait tag and input DMAs), move outputs, free.
func (r *Runtime) Offload(op *interp.OffloadOp) error {
	if err := r.allocSpecs(op.Specs); err != nil {
		return err
	}
	inputs := r.submitInputs(op.Specs, r.hostTail)
	deps := append([]*engine.Event{r.hostTail}, inputs...)
	if op.Wait != "" {
		deps = append(deps, r.tag(op.Wait))
	}
	ready := engine.AllOf(r.sim, deps...)

	dur := regionTime(r.cfg.MIC, op.Work, r.cfg.MICThreads)
	var done *engine.Event
	if op.Persist {
		p := r.persist[op.Pragma]
		if p == nil {
			p = r.launcher.LaunchPersistent(pragmaLabel(op.Pragma))
			r.persist[op.Pragma] = p
		}
		done = p.RunBlock(ready, "block", dur)
	} else {
		done = r.launcher.Launch(ready, pragmaLabel(op.Pragma), dur)
	}
	for _, br := range op.DevTouched {
		r.kernelUses = append(r.kernelUses, interval{
			buf:    br.Name,
			label:  pragmaLabel(op.Pragma),
			done:   done,
			dur:    dur,
			loByte: br.StartByte,
			hiByte: br.EndByte,
		})
	}

	r.kernelDone = append(r.kernelDone, done)
	outputs := r.submitOutputs(op.Specs, done)
	all := engine.AllOf(r.sim, append([]*engine.Event{done}, outputs...)...)
	if op.Signal != "" {
		// Asynchronous offload: the host continues; completion fires the tag.
		r.tags[op.Signal] = all
	} else {
		r.hostTail = all
	}
	r.freeSpecs(op.Specs)
	return nil
}

// Transfer implements interp.Backend: asynchronous DMA issue.
func (r *Runtime) Transfer(op *interp.TransferOp) error {
	if err := r.allocSpecs(op.Specs); err != nil {
		return err
	}
	after := r.hostTail
	if op.Wait != "" {
		after = engine.AllOf(r.sim, r.hostTail, r.tag(op.Wait))
	}
	events := r.submitInputs(op.Specs, after)
	events = append(events, r.submitOutputs(op.Specs, after)...)
	if op.Signal != "" {
		if len(events) == 0 {
			r.tags[op.Signal] = after
		} else {
			r.tags[op.Signal] = engine.AllOf(r.sim, events...)
		}
	}
	// offload_transfer returns immediately on the host; the DMA proceeds
	// in the background. Freeing (free_if(1)) applies once the DMAs drain.
	r.freeSpecs(op.Specs)
	return nil
}

// OffloadWait implements interp.Backend: block the host on a tag.
func (r *Runtime) OffloadWait(tagName string) {
	r.hostTail = engine.AllOf(r.sim, r.hostTail, r.tag(tagName))
}

func pragmaLabel(p *minic.Pragma) string {
	return fmt.Sprintf("offload@%s", p.Pos)
}

// Finish exits persistent kernels, drains the simulation, and returns the
// run's statistics. It must be called exactly once.
func (r *Runtime) Finish() Stats {
	if r.finished {
		panic("runtime: Finish called twice")
	}
	r.finished = true
	for _, p := range r.persist {
		p.Exit()
	}
	end := r.sim.Run()
	// The makespan also covers the host reaching its final point.
	if r.hostTail.Fired() && r.hostTail.Time() > end {
		end = r.hostTail.Time()
	}
	tr := r.sim.Trace()
	return Stats{
		RaceWarnings:     r.detectRaces(),
		DeadlockWarnings: r.detectDeadlocks(),
		Time:             engine.Duration(end),
		HostBusy:         r.host.BusyTime(),
		DeviceBusy:       r.launcher.ComputeBusy(),
		TransferBusy:     r.bus.BusyTime(pcie.HostToDevice) + r.bus.BusyTime(pcie.DeviceToHost),
		Overlap:          tr.Overlap("pcie-h2d", "mic-compute") + tr.Overlap("pcie-d2h", "mic-compute"),
		KernelLaunches:   r.launcher.Launches(),
		Transfers:        r.bus.TotalTransfers(),
		BytesIn:          r.bus.BytesMoved(pcie.HostToDevice),
		BytesOut:         r.bus.BytesMoved(pcie.DeviceToHost),
		PeakDeviceBytes:  r.mem.Peak(),
	}
}

// maxRaceWarnings caps the reported races; one real pipelining bug
// typically races on every block.
const maxRaceWarnings = 16

// detectDeadlocks reports, after the simulation drained, any kernel or
// signal tag that never completed — the signature of a wait on a tag no
// transfer or offload ever signals.
func (r *Runtime) detectDeadlocks() []string {
	var warns []string
	for i, done := range r.kernelDone {
		if !done.Fired() {
			warns = append(warns, fmt.Sprintf("kernel %d never ran (waiting on a signal that never fires?)", i))
		}
	}
	for name, ev := range r.tags {
		if !ev.Fired() {
			warns = append(warns, fmt.Sprintf("signal tag %q was waited on but never signalled", name))
		}
	}
	if !r.hostTail.Fired() {
		warns = append(warns, "host never reached the end of the program")
	}
	return warns
}

// detectRaces scans, after the simulation has run, for DMA writes into a
// device buffer that overlap in simulated time with a kernel that touched
// the same buffer. A correctly double-buffered pipeline never triggers
// this: the prefetch always targets the buffer the kernel is NOT using.
func (r *Runtime) detectRaces() []string {
	var warns []string
	for _, w := range r.bufWrites {
		if !w.done.Fired() {
			continue
		}
		ws, we := w.bounds()
		for _, k := range r.kernelUses {
			if k.buf != w.buf || !k.done.Fired() {
				continue
			}
			// Disjoint byte ranges (Figure 5(b): prefetch into a different
			// section of the same device array) are not a race.
			if w.hiByte <= k.loByte || k.hiByte <= w.loByte {
				continue
			}
			ks, ke := k.bounds()
			if ws < ke && ks < we {
				warns = append(warns, fmt.Sprintf(
					"race on device buffer %q: transfer %s [%v,%v) overlaps kernel %s [%v,%v)",
					w.buf, w.label, ws, we, k.label, ks, ke))
				if len(warns) >= maxRaceWarnings {
					return warns
				}
			}
		}
	}
	return warns
}

// Result bundles a program execution with its simulated statistics.
type Result struct {
	Stats   Stats
	Program *interp.Program
}

// Run executes a compiled program on a fresh runtime and returns the
// statistics. The program is Reset first so repeated Runs are independent.
func Run(p *interp.Program, cfg Config) (Result, error) {
	if err := p.Reset(); err != nil {
		return Result{}, err
	}
	rt := New(cfg)
	if err := p.Run(rt); err != nil {
		return Result{}, err
	}
	return Result{Stats: rt.Finish(), Program: p}, nil
}

// RunWithSetup executes a compiled program after applying an input-
// injection hook (workloads use it to load generated data between Reset
// and execution).
func RunWithSetup(p *interp.Program, cfg Config, setup func(*interp.Program) error) (Result, error) {
	if err := p.Reset(); err != nil {
		return Result{}, err
	}
	if setup != nil {
		if err := setup(p); err != nil {
			return Result{}, err
		}
	}
	rt := New(cfg)
	if err := p.Run(rt); err != nil {
		return Result{}, err
	}
	return Result{Stats: rt.Finish(), Program: p}, nil
}
