// Package runtime is the offload runtime: it implements interp.Backend by
// mapping the interpreter's operation stream (host compute segments,
// offloads, asynchronous transfers, waits) onto the discrete-event machine
// — PCIe DMA channels, the device compute fabric with launch overhead and
// persistent kernels, and the capacity-limited device memory.
//
// It is the analogue of Intel's LEO runtime plus the lower-level COI layer
// the paper drops to for signal-based kernel reuse (§III-C).
package runtime

import (
	"errors"
	"fmt"
	"sort"

	"comp/internal/interp"
	"comp/internal/minic"
	"comp/internal/sim/devmem"
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
	"comp/internal/sim/kernel"
	"comp/internal/sim/machine"
	"comp/internal/sim/pcie"
)

// Config assembles the simulated platform.
type Config struct {
	CPU        machine.Config
	MIC        machine.Config
	PCIe       pcie.Config
	CPUThreads int
	MICThreads int
	// Faults is the injected-failure schedule; the zero value injects
	// nothing.
	Faults fault.Config
	// Recovery controls the resilience layer; the zero value enables
	// recovery with the default policy.
	Recovery RecoveryConfig
	// DisableTrace turns off span recording. Stats and program outputs are
	// identical either way — the observability layer is strictly read-only
	// with respect to the simulation; disabling only saves the span
	// allocations on hot benchmarking loops.
	DisableTrace bool
}

// RecoveryConfig tunes the runtime's fault-recovery policy.
type RecoveryConfig struct {
	// Disabled turns recovery off entirely: any injected fault aborts the
	// run with an error. Used by the resilience ablation as the baseline.
	Disabled bool
	// MaxRetries bounds reissues of a failed DMA or kernel launch before
	// the runtime escalates to a blocking driver reset (0 = default).
	MaxRetries int
	// Backoff is the delay before the first retry; it doubles on each
	// subsequent attempt (0 = default).
	Backoff engine.Duration
	// Watchdog is how long a hung kernel or stalled wait may hold on
	// before it is aborted (0 = default).
	Watchdog engine.Duration
}

// Default recovery policy.
const (
	DefaultMaxRetries                 = 4
	DefaultBackoff    engine.Duration = 2 * engine.Microsecond
	DefaultWatchdog   engine.Duration = 100 * engine.Microsecond
)

// recoveryParams is RecoveryConfig with defaults resolved.
type recoveryParams struct {
	disabled   bool
	maxRetries int
	backoff    engine.Duration
	watchdog   engine.Duration
}

func (c RecoveryConfig) resolve() recoveryParams {
	p := recoveryParams{
		disabled:   c.Disabled,
		maxRetries: c.MaxRetries,
		backoff:    c.Backoff,
		watchdog:   c.Watchdog,
	}
	if p.maxRetries == 0 {
		p.maxRetries = DefaultMaxRetries
	}
	if p.backoff == 0 {
		p.backoff = DefaultBackoff
	}
	if p.watchdog == 0 {
		p.watchdog = DefaultWatchdog
	}
	return p
}

// DefaultConfig returns the calibrated evaluation platform (§VI): a Xeon
// E5-2660 host with 4 worker threads and a Xeon Phi with 200 threads.
func DefaultConfig() Config {
	return Config{
		CPU:        machine.XeonE5(),
		MIC:        machine.XeonPhi(),
		PCIe:       pcie.Default(),
		CPUThreads: machine.DefaultCPUThreads,
		MICThreads: machine.DefaultMICThreads,
	}
}

// Validate reports configuration errors, naming the offending field.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.MIC.Validate(); err != nil {
		return err
	}
	if c.PCIe == (pcie.Config{}) {
		return fmt.Errorf("runtime: Config.PCIe is zero-valued; start from pcie.Default()")
	}
	if err := c.PCIe.Validate(); err != nil {
		return err
	}
	if c.CPUThreads < 1 {
		return fmt.Errorf("runtime: Config.CPUThreads %d must be positive", c.CPUThreads)
	}
	if c.MICThreads < 1 {
		return fmt.Errorf("runtime: Config.MICThreads %d must be positive", c.MICThreads)
	}
	if max := c.CPU.MaxThreads(); c.CPUThreads > max {
		return fmt.Errorf("runtime: Config.CPUThreads %d exceeds the host machine's maximum %d", c.CPUThreads, max)
	}
	if max := c.MIC.MaxThreads(); c.MICThreads > max {
		return fmt.Errorf("runtime: Config.MICThreads %d exceeds the device's maximum %d", c.MICThreads, max)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("runtime: Config.Faults: %w", err)
	}
	if c.Recovery.MaxRetries < 0 {
		return fmt.Errorf("runtime: Config.Recovery.MaxRetries %d < 0", c.Recovery.MaxRetries)
	}
	if c.Recovery.Backoff < 0 {
		return fmt.Errorf("runtime: Config.Recovery.Backoff %v < 0", c.Recovery.Backoff)
	}
	if c.Recovery.Watchdog < 0 {
		return fmt.Errorf("runtime: Config.Recovery.Watchdog %v < 0", c.Recovery.Watchdog)
	}
	return nil
}

// Stats summarizes one simulated run.
type Stats struct {
	// Time is the end-to-end makespan.
	Time engine.Duration
	// HostBusy, DeviceBusy are busy times of the compute resources.
	HostBusy   engine.Duration
	DeviceBusy engine.Duration
	// TransferBusy is total DMA channel busy time (both directions).
	TransferBusy engine.Duration
	// Overlap is the time transfers and device compute proceeded
	// concurrently — the quantity data streaming maximizes.
	Overlap engine.Duration
	// KernelLaunches counts kernel starts (persistent kernels count once).
	KernelLaunches int64
	// Transfers counts DMA operations; BytesIn/BytesOut their payloads.
	Transfers int64
	BytesIn   int64
	BytesOut  int64
	// PeakDeviceBytes is the device memory high-water mark.
	PeakDeviceBytes uint64
	// RaceWarnings lists pipelining races detected after the run: DMAs
	// that overwrote a device buffer while a kernel using that buffer was
	// still in flight. The interpreter's sequential value execution hides
	// such races, so a non-empty list means the (possibly hand-written)
	// pipelined code is incorrect on real hardware even though its
	// simulated outputs look right.
	RaceWarnings []string
	// DeadlockWarnings lists operations that never completed because a
	// signal tag they waited on never fired. On real hardware the program
	// hangs; in the simulator the stalled work silently drops out of the
	// makespan, so it is surfaced here instead.
	DeadlockWarnings []string
	// FaultsInjected counts failures the fault schedule fired this run.
	FaultsInjected int64
	// Retries counts reissued DMAs, kernel launches and allocations.
	Retries int64
	// WatchdogFires counts hung kernels and stalled waits the watchdog
	// aborted.
	WatchdogFires int64
	// Fallbacks records each step taken down the degradation ladder
	// (pipelined streaming -> synchronous single-buffer -> host-only).
	Fallbacks []string
	// FaultWarnings records recovery escalations: exhausted retry budgets
	// and watchdog aborts.
	FaultWarnings []string
}

// Runtime implements interp.Backend over the discrete-event simulator.
//
// A Runtime normally owns the whole simulated platform (New). Under the
// stream Scheduler, several Runtimes share one simulation: each executes one
// request on its stream's slice of the device — a partitioned machine
// config, a per-stream launcher and host resource, a shared PCIe bus and
// shared device memory (see newOnStream).
type Runtime struct {
	cfg      Config
	sim      *engine.Sim
	bus      *pcie.Bus
	launcher *kernel.Launcher
	mem      *devmem.Allocator
	host     *engine.Resource

	// mic and micThreads are the device model this runtime computes with:
	// the full card for a standalone runtime, the stream's core share under
	// the scheduler.
	mic        machine.Config
	micThreads int
	// dmaArgs is merged onto every DMA span this runtime issues (the
	// scheduler tags transfers with their stream id); nil for standalone.
	dmaArgs map[string]any

	// hostTail is the event after which the host thread is free again.
	hostTail *engine.Event
	// tags maps signal names to their completion events.
	tags map[string]*engine.Event
	// persistent kernels keyed by offload pragma identity.
	persist map[*minic.Pragma]*kernel.Persistent
	// device buffer blocks by name.
	bufs map[string]*devmem.Block

	// Intervals for post-run race detection.
	bufWrites  []interval // DMA writes into device buffers
	kernelUses []interval // kernel executions touching device buffers

	// kernels tracks every kernel for deadlock checks and watchdog
	// recovery of end-of-run stalls.
	kernels []kernelRec

	// Overlap meters: transfer↔compute concurrency measured online from
	// resource busy counters, so Stats.Overlap does not depend on whether
	// trace recording is enabled.
	ovIn  *engine.OverlapMeter
	ovOut *engine.OverlapMeter

	// Resilience state.
	inj           *fault.Injector // nil when no faults are configured
	rec           recoveryParams
	mode          offloadMode
	staging       *devmem.Block // single bounce buffer of the sync mode
	retries       int64
	watchdogFires int64
	fallbacks     []string
	faultWarns    []string

	finished bool
}

// offloadMode is the rung of the degradation ladder the runtime is on.
// Degradation is sticky: once device memory has proven too small (or too
// broken) for the resident plan, later offloads do not climb back up.
type offloadMode int

const (
	// modeNormal is the full plan: resident device buffers, pipelined
	// transfers, persistent kernels.
	modeNormal offloadMode = iota
	// modeSync bounces every transfer through one staging buffer and
	// serializes DMA-kernel-DMA per offload: slower, but it survives
	// device memory that cannot hold the working set.
	modeSync
	// modeHost runs offload regions on the host CPU; the device is not
	// used at all.
	modeHost
)

// kernelRec ties a kernel completion event to what the watchdog needs for
// recovery: a label for diagnostics and the region's work so a stalled
// kernel can be re-run on the host.
type kernelRec struct {
	done  *engine.Event
	label string
	work  interp.Work
}

// interval is a resource occupation tied to a buffer, resolved after the
// simulation runs (the event fires at the interval's end; the duration is
// known at submission).
type interval struct {
	buf    string
	label  string
	done   *engine.Event
	dur    engine.Duration
	loByte int64
	hiByte int64 // exclusive
}

func (iv interval) bounds() (engine.Time, engine.Time) {
	end := iv.done.Time()
	return end - engine.Time(iv.dur), end
}

// New builds a runtime over a fresh simulation it owns outright.
func New(cfg Config) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sim := engine.New()
	if cfg.DisableTrace {
		sim.Trace().SetEnabled(false)
	}
	memBytes := cfg.MIC.MemBytes
	if memBytes == 0 {
		memBytes = 8 << 30
	}
	host := sim.NewResource("cpu", 1)
	host.SetCategory(engine.CatHost)
	bus := pcie.New(sim, cfg.PCIe)
	launcher := kernel.NewLauncher(sim, cfg.MIC.LaunchOverhead)
	mem := devmem.New(memBytes, cfg.MIC.OSReservedBytes)
	r := newOnStream(cfg, streamParts{
		sim:        sim,
		bus:        bus,
		mem:        mem,
		launcher:   launcher,
		host:       host,
		mic:        cfg.MIC,
		micThreads: cfg.MICThreads,
	})
	r.ovIn = sim.MeterOverlap(bus.Resource(pcie.HostToDevice), launcher.Resource())
	r.ovOut = sim.MeterOverlap(bus.Resource(pcie.DeviceToHost), launcher.Resource())
	mem.SetTrace(sim.Trace(), sim.Now)
	if cfg.Faults.Enabled() {
		r.inj = fault.New(cfg.Faults)
		r.inj.SetTrace(sim.Trace(), sim.Now)
		bus.SetInjector(r.inj)
		launcher.SetFaults(r.inj, r.rec.watchdog)
		mem.SetInjector(r.inj)
	}
	return r
}

// streamParts is the slice of a (possibly shared) simulated platform one
// Runtime executes on. New fills it with a whole fresh platform; the
// Scheduler fills it with shared sim/bus/memory plus the per-stream
// launcher, host resource, device share and fault injector.
type streamParts struct {
	sim        *engine.Sim
	bus        *pcie.Bus
	mem        *devmem.Allocator
	launcher   *kernel.Launcher
	host       *engine.Resource
	mic        machine.Config
	micThreads int
	// inj, dmaArgs, after are optional: the request's fault injector, the
	// extra args stamped on its DMA spans, and the event gating its first
	// operation (nil means start immediately).
	inj     *fault.Injector
	dmaArgs map[string]any
	after   *engine.Event
}

// newOnStream builds a runtime over pre-built platform parts. The caller is
// responsible for any overlap meters (they must exist before the first
// submission) and for pointing the shared bus/memory injector at parts.inj
// while this runtime's operations are being recorded.
func newOnStream(cfg Config, p streamParts) *Runtime {
	r := &Runtime{
		cfg:        cfg,
		sim:        p.sim,
		bus:        p.bus,
		launcher:   p.launcher,
		mem:        p.mem,
		host:       p.host,
		mic:        p.mic,
		micThreads: p.micThreads,
		inj:        p.inj,
		dmaArgs:    p.dmaArgs,
		tags:       map[string]*engine.Event{},
		persist:    map[*minic.Pragma]*kernel.Persistent{},
		bufs:       map[string]*devmem.Block{},
		rec:        cfg.Recovery.resolve(),
	}
	if p.after != nil {
		r.hostTail = p.after
	} else {
		r.hostTail = p.sim.FiredEvent()
	}
	return r
}

// Sim exposes the simulation (tests inspect the trace).
func (r *Runtime) Sim() *engine.Sim { return r.sim }

// Trace exposes the span recorder of the underlying simulation.
func (r *Runtime) Trace() *engine.Trace { return r.sim.Trace() }

// Memory exposes the device allocator.
func (r *Runtime) Memory() *devmem.Allocator { return r.mem }

// regionTime converts a measured Work into wall time on a machine.
func regionTime(m machine.Config, w interp.Work, threads int) engine.Duration {
	d := m.SerialTime(w.Serial.Flops)
	d += m.WorkTime(w.Vec.Flops, w.Vec.Bytes, w.Vec.IrregularFrac(), true, threads)
	d += m.WorkTime(w.Scalar.Flops, w.Scalar.Bytes, w.Scalar.IrregularFrac(), false, threads)
	return d
}

// HostCompute implements interp.Backend.
func (r *Runtime) HostCompute(w interp.Work) {
	d := regionTime(r.cfg.CPU, w, r.cfg.CPUThreads)
	r.hostTail = r.host.SubmitAfter(r.hostTail, "compute", d)
}

// tag returns the event for a signal tag, creating an unfired placeholder
// if the tag has not been signalled yet (waiting on a never-signalled tag
// deadlocks on real hardware; here it simply never gates anything, and
// Finish reports it).
func (r *Runtime) tag(name string) *engine.Event {
	if ev, ok := r.tags[name]; ok {
		return ev
	}
	ev := r.sim.NewEvent("tag:" + name)
	r.tags[name] = ev
	return ev
}

// backoffDur returns the exponential backoff before retry `attempt`
// (1-based): backoff, 2·backoff, 4·backoff, ...
func (r *Runtime) backoffDur(attempt int) engine.Duration {
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	return r.rec.backoff << shift
}

// traceRecovery records a recovery instant on the "runtime" pseudo-resource
// at the moment the triggering event fires — the simulated time the failed
// attempt released its resource — so retries and watchdog aborts appear
// where they happen on the timeline rather than at issue time. Recording is
// observation only; it never alters scheduling.
func (r *Runtime) traceRecovery(trigger *engine.Event, label string, cat engine.Category, args map[string]any) {
	tr := r.sim.Trace()
	if !tr.Enabled() {
		return
	}
	trigger.OnFire(func(t engine.Time) {
		tr.Instant("runtime", label, cat, t, args)
	})
}

// dma issues one DMA under the fault schedule, retrying failed attempts
// with exponential backoff. After the retry budget it models a blocking
// driver-level channel reset that always succeeds, so a DMA never fails
// permanently unless recovery is disabled.
func (r *Runtime) dma(after *engine.Event, dir pcie.Direction, label string, bytes int64) (*engine.Event, error) {
	if r.inj == nil {
		return r.bus.TransferAfterArgs(after, dir, label, bytes, r.dmaArgs), nil
	}
	ev, ok := r.bus.TryTransferAfterArgs(after, dir, label, bytes, r.dmaArgs)
	if ok {
		return ev, nil
	}
	if r.rec.disabled {
		return nil, fmt.Errorf("runtime: DMA %q failed (injected fault, recovery disabled)", label)
	}
	for attempt := 1; attempt <= r.rec.maxRetries; attempt++ {
		r.retries++
		r.traceRecovery(ev, "retry:"+label, engine.CatRetry,
			map[string]any{"op": "dma", "attempt": attempt, "bytes": bytes})
		ready := engine.Delay(r.sim, ev, r.backoffDur(attempt))
		if ev, ok = r.bus.TryTransferAfterArgs(ready, dir, label, bytes, r.dmaArgs); ok {
			return ev, nil
		}
	}
	r.retries++
	r.traceRecovery(ev, "reset:"+label, engine.CatRetry,
		map[string]any{"op": "dma-channel-reset", "bytes": bytes})
	r.faultWarns = append(r.faultWarns, fmt.Sprintf(
		"DMA %q failed %d retries; escalated to a blocking channel reset", label, r.rec.maxRetries))
	ready := engine.Delay(r.sim, ev, r.backoffDur(r.rec.maxRetries+1))
	return r.bus.TransferAfterArgs(ready, dir, label, bytes, r.dmaArgs), nil
}

// launchKernel starts a kernel under the fault schedule. Failed launches
// retry after backoff; hangs hold the device until the watchdog aborts
// them, then relaunch. After the retry budget a blocking device reset
// guarantees the final launch.
func (r *Runtime) launchKernel(ready *engine.Event, label string, dur engine.Duration) (*engine.Event, error) {
	if r.inj == nil {
		return r.launcher.Launch(ready, label, dur), nil
	}
	ev, out := r.launcher.TryLaunch(ready, label, dur)
	for attempt := 1; out != kernel.OK; attempt++ {
		if r.rec.disabled {
			return nil, fmt.Errorf("runtime: kernel %q did not run (injected %v, recovery disabled)", label, out)
		}
		if out == kernel.Hang {
			r.watchdogFires++
			r.traceRecovery(ev, "watchdog:"+label, engine.CatFault,
				map[string]any{"op": "kernel-hang-abort", "watchdog": int64(r.rec.watchdog)})
			r.faultWarns = append(r.faultWarns, fmt.Sprintf(
				"watchdog: kernel %q hung; aborted after %v", label, r.rec.watchdog))
		}
		r.retries++
		r.traceRecovery(ev, "retry:"+label, engine.CatRetry,
			map[string]any{"op": "launch", "attempt": attempt})
		next := engine.Delay(r.sim, ev, r.backoffDur(attempt))
		if attempt > r.rec.maxRetries {
			r.traceRecovery(ev, "reset:"+label, engine.CatRetry,
				map[string]any{"op": "device-reset"})
			r.faultWarns = append(r.faultWarns, fmt.Sprintf(
				"kernel %q failed %d retries; escalated to a blocking device reset", label, r.rec.maxRetries))
			return r.launcher.Launch(next, label, dur), nil
		}
		ev, out = r.launcher.TryLaunch(next, label, dur)
	}
	return ev, nil
}

// runBlock is launchKernel for a block on a persistent kernel; resident
// threads cannot fail to launch, but they can hang.
func (r *Runtime) runBlock(p *kernel.Persistent, ready *engine.Event, label string, dur engine.Duration) (*engine.Event, error) {
	if r.inj == nil {
		return p.RunBlock(ready, label, dur), nil
	}
	ev, out := p.TryRunBlock(ready, label, dur)
	for attempt := 1; out != kernel.OK; attempt++ {
		if r.rec.disabled {
			return nil, fmt.Errorf("runtime: persistent block %q did not run (injected %v, recovery disabled)", label, out)
		}
		r.watchdogFires++
		r.traceRecovery(ev, "watchdog:"+label, engine.CatFault,
			map[string]any{"op": "block-hang-abort", "watchdog": int64(r.rec.watchdog)})
		r.faultWarns = append(r.faultWarns, fmt.Sprintf(
			"watchdog: persistent block %q hung; aborted after %v", label, r.rec.watchdog))
		r.retries++
		r.traceRecovery(ev, "retry:"+label, engine.CatRetry,
			map[string]any{"op": "block", "attempt": attempt})
		next := engine.Delay(r.sim, ev, r.backoffDur(attempt))
		if attempt > r.rec.maxRetries {
			r.faultWarns = append(r.faultWarns, fmt.Sprintf(
				"block %q failed %d retries; escalated to a blocking re-signal", label, r.rec.maxRetries))
			return p.RunBlock(next, label, dur), nil
		}
		ev, out = p.TryRunBlock(next, label, dur)
	}
	return ev, nil
}

// allocBlock allocates device memory, retrying injected transient failures
// (capacity exhaustion is not retried — it cannot succeed).
func (r *Runtime) allocBlock(size uint64, label string) (*devmem.Block, error) {
	b, err := r.mem.Alloc(size, label)
	if err == nil || r.rec.disabled || !errors.Is(err, devmem.ErrFaultInjected) {
		return b, err
	}
	for attempt := 1; attempt <= r.rec.maxRetries; attempt++ {
		r.retries++
		if b, err = r.mem.Alloc(size, label); err == nil || !errors.Is(err, devmem.ErrFaultInjected) {
			return b, err
		}
	}
	return nil, err
}

// allocFailure reports whether err means device memory could not be had —
// the trigger for stepping down the degradation ladder.
func allocFailure(err error) bool {
	return errors.Is(err, devmem.ErrOutOfMemory) || errors.Is(err, devmem.ErrFaultInjected)
}

// degrade steps down one rung after an allocation failure: the resident
// buffer plan is abandoned for the staging-buffer sync mode, and the sync
// mode for host-only execution. Already-submitted device work still
// drains; only future offloads use the new mode.
func (r *Runtime) degrade(cause error) {
	switch r.mode {
	case modeNormal:
		r.mode = modeSync
		for _, p := range r.persist {
			p.Exit()
		}
		r.persist = map[*minic.Pragma]*kernel.Persistent{}
		r.freeAllBufs()
		r.sim.Trace().Instant("runtime", "fallback:sync", engine.CatFallback, r.sim.Now(),
			map[string]any{"from": "pipelined", "to": "sync", "cause": cause.Error()})
		r.fallbacks = append(r.fallbacks, fmt.Sprintf(
			"device allocation failed (%v); pipelined streaming -> synchronous single-buffer offload", cause))
	case modeSync:
		r.mode = modeHost
		if r.staging != nil {
			r.mem.Free(r.staging)
			r.staging = nil
		}
		r.sim.Trace().Instant("runtime", "fallback:host", engine.CatFallback, r.sim.Now(),
			map[string]any{"from": "sync", "to": "host", "cause": cause.Error()})
		r.fallbacks = append(r.fallbacks, fmt.Sprintf(
			"staging allocation failed (%v); synchronous offload -> host-only execution", cause))
	}
}

// freeAllBufs releases every resident device buffer, in sorted name order
// so the allocator's hole layout stays deterministic.
func (r *Runtime) freeAllBufs() {
	names := make([]string, 0, len(r.bufs))
	for n := range r.bufs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.mem.Free(r.bufs[n])
		delete(r.bufs, n)
	}
}

// ensureStaging guarantees the sync-mode bounce buffer holds at least size
// bytes, growing it by reallocation.
func (r *Runtime) ensureStaging(size uint64) error {
	if r.staging != nil && r.staging.Size >= size {
		return nil
	}
	if r.staging != nil {
		r.mem.Free(r.staging)
		r.staging = nil
	}
	b, err := r.allocBlock(size, "staging")
	if err != nil {
		return err
	}
	r.staging = b
	if r.mic.AllocOverhead > 0 {
		r.hostTail = r.host.SubmitTagged(r.hostTail, "alloc", engine.CatAlloc,
			r.mic.AllocOverhead, map[string]any{"bytes": size, "buf": "staging"})
	}
	return nil
}

// allocSpecs performs device allocations for an op's specs in program
// order, returning an OOM error if capacity is exceeded. Each allocation
// costs AllocOverhead of host time — the §III-A overhead the streaming
// transform hoists out of the loop.
func (r *Runtime) allocSpecs(specs []interp.TransferSpec) error {
	allocs := 0
	for _, sp := range specs {
		if sp.Scalar || !sp.Alloc {
			continue
		}
		if old := r.bufs[sp.Dest]; old != nil {
			r.mem.Free(old)
			delete(r.bufs, sp.Dest)
		}
		if sp.AllocBytes == 0 {
			continue
		}
		b, err := r.allocBlock(uint64(sp.AllocBytes), sp.Dest)
		if err != nil {
			return err
		}
		r.bufs[sp.Dest] = b
		allocs++
	}
	if allocs > 0 && r.mic.AllocOverhead > 0 {
		d := engine.Duration(allocs) * r.mic.AllocOverhead
		r.hostTail = r.host.SubmitTagged(r.hostTail, "alloc", engine.CatAlloc,
			d, map[string]any{"allocs": allocs})
	}
	return nil
}

// freeSpecs releases buffers whose specs request freeing.
func (r *Runtime) freeSpecs(specs []interp.TransferSpec) {
	for _, sp := range specs {
		if sp.Scalar || !sp.Free {
			continue
		}
		if b := r.bufs[sp.Dest]; b != nil {
			r.mem.Free(b)
			delete(r.bufs, sp.Dest)
		}
	}
}

// submitInputs schedules the host-to-device DMAs of an op. Scalar items
// are batched into one descriptor; each array item is its own DMA.
func (r *Runtime) submitInputs(specs []interp.TransferSpec, after *engine.Event) ([]*engine.Event, error) {
	var events []*engine.Event
	var scalarBytes int64
	for _, sp := range specs {
		if sp.Dir != interp.DirIn {
			continue
		}
		if sp.Scalar {
			scalarBytes += sp.Bytes
			continue
		}
		ev, err := r.dma(after, pcie.HostToDevice, sp.Item.Name+"->"+sp.Dest, sp.Bytes)
		if err != nil {
			return nil, err
		}
		r.bufWrites = append(r.bufWrites, interval{
			buf:    sp.Dest,
			label:  sp.Item.Name + "->" + sp.Dest,
			done:   ev,
			dur:    r.bus.TransferTime(sp.Bytes),
			loByte: sp.DestOffsetBytes,
			hiByte: sp.DestOffsetBytes + sp.Bytes,
		})
		events = append(events, ev)
	}
	if scalarBytes > 0 {
		ev, err := r.dma(after, pcie.HostToDevice, "scalars", scalarBytes)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// submitOutputs schedules the device-to-host DMAs of an op.
func (r *Runtime) submitOutputs(specs []interp.TransferSpec, after *engine.Event) ([]*engine.Event, error) {
	var events []*engine.Event
	var scalarBytes int64
	for _, sp := range specs {
		if sp.Dir != interp.DirOut {
			continue
		}
		if sp.Scalar {
			scalarBytes += sp.Bytes
			continue
		}
		ev, err := r.dma(after, pcie.DeviceToHost, sp.Dest+"->host", sp.Bytes)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	if scalarBytes > 0 {
		ev, err := r.dma(after, pcie.DeviceToHost, "scalars", scalarBytes)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// Offload implements interp.Backend. On the normal rung it allocates,
// moves inputs, runs the kernel (gated on the wait tag and input DMAs),
// moves outputs, and frees. An allocation failure steps down the
// degradation ladder and re-dispatches the op on the new rung, so an
// offload only errors when recovery is disabled.
func (r *Runtime) Offload(op *interp.OffloadOp) error {
	for {
		var err error
		switch r.mode {
		case modeNormal:
			err = r.offloadPipelined(op)
		case modeSync:
			err = r.offloadSync(op)
		default:
			r.offloadHost(op)
			return nil
		}
		if err == nil {
			return nil
		}
		if r.rec.disabled || !allocFailure(err) {
			return err
		}
		r.degrade(err)
	}
}

// offloadPipelined is the full plan: resident buffers, overlap-friendly
// DMA issue, persistent kernels.
func (r *Runtime) offloadPipelined(op *interp.OffloadOp) error {
	if err := r.allocSpecs(op.Specs); err != nil {
		return err
	}
	inputs, err := r.submitInputs(op.Specs, r.hostTail)
	if err != nil {
		return err
	}
	deps := append([]*engine.Event{r.hostTail}, inputs...)
	if op.Wait != "" {
		deps = append(deps, r.tag(op.Wait))
	}
	ready := engine.AllOf(r.sim, deps...)

	dur := regionTime(r.mic, op.Work, r.micThreads)
	var done *engine.Event
	if op.Persist {
		p := r.persist[op.Pragma]
		if p == nil {
			p = r.launcher.LaunchPersistent(pragmaLabel(op.Pragma))
			r.persist[op.Pragma] = p
		}
		if done, err = r.runBlock(p, ready, "block", dur); err != nil {
			return err
		}
	} else {
		if done, err = r.launchKernel(ready, pragmaLabel(op.Pragma), dur); err != nil {
			return err
		}
	}
	for _, br := range op.DevTouched {
		r.kernelUses = append(r.kernelUses, interval{
			buf:    br.Name,
			label:  pragmaLabel(op.Pragma),
			done:   done,
			dur:    dur,
			loByte: br.StartByte,
			hiByte: br.EndByte,
		})
	}

	r.kernels = append(r.kernels, kernelRec{done: done, label: pragmaLabel(op.Pragma), work: op.Work})
	outputs, err := r.submitOutputs(op.Specs, done)
	if err != nil {
		return err
	}
	all := engine.AllOf(r.sim, append([]*engine.Event{done}, outputs...)...)
	if op.Signal != "" {
		// Asynchronous offload: the host continues; completion fires the tag.
		r.tags[op.Signal] = all
	} else {
		r.hostTail = all
	}
	r.freeSpecs(op.Specs)
	return nil
}

// offloadSync is the first fallback rung: every array bounces through one
// staging buffer, and the op runs strictly DMA-in, kernel, DMA-out with no
// overlap with other work. Per-buffer alloc/free requests are ignored —
// the staging buffer is the only resident allocation — so working sets far
// beyond device capacity still run, just slowly. Race intervals are not
// recorded: the serial chain cannot overlap by construction.
func (r *Runtime) offloadSync(op *interp.OffloadOp) error {
	var need int64
	for _, sp := range op.Specs {
		if !sp.Scalar && sp.Bytes > need {
			need = sp.Bytes
		}
	}
	if need > 0 {
		if err := r.ensureStaging(uint64(need)); err != nil {
			return err
		}
	}
	tail := r.hostTail
	if op.Wait != "" {
		tail = engine.AllOf(r.sim, tail, r.tag(op.Wait))
	}
	tail, err := r.syncDMAs(op.Specs, interp.DirIn, pcie.HostToDevice, tail)
	if err != nil {
		return err
	}
	dur := regionTime(r.mic, op.Work, r.micThreads)
	done, err := r.launchKernel(tail, pragmaLabel(op.Pragma)+"!sync", dur)
	if err != nil {
		return err
	}
	r.kernels = append(r.kernels, kernelRec{done: done, label: pragmaLabel(op.Pragma), work: op.Work})
	tail, err = r.syncDMAs(op.Specs, interp.DirOut, pcie.DeviceToHost, done)
	if err != nil {
		return err
	}
	if op.Signal != "" {
		r.tags[op.Signal] = tail
	} else {
		r.hostTail = tail
	}
	return nil
}

// syncDMAs issues the specs of one direction as a serial chain through the
// staging buffer, returning the chain's tail.
func (r *Runtime) syncDMAs(specs []interp.TransferSpec, want interp.Direction, dir pcie.Direction, tail *engine.Event) (*engine.Event, error) {
	var scalarBytes int64
	for _, sp := range specs {
		if sp.Dir != want {
			continue
		}
		if sp.Scalar {
			scalarBytes += sp.Bytes
			continue
		}
		ev, err := r.dma(tail, dir, sp.Dest+"!staged", sp.Bytes)
		if err != nil {
			return nil, err
		}
		tail = ev
	}
	if scalarBytes > 0 {
		ev, err := r.dma(tail, dir, "scalars", scalarBytes)
		if err != nil {
			return nil, err
		}
		tail = ev
	}
	return tail, nil
}

// offloadHost is the last rung: the offload region runs on the host CPU.
// Signal tags still fire — downstream waits must not deadlock just because
// the device is gone.
func (r *Runtime) offloadHost(op *interp.OffloadOp) {
	after := r.hostTail
	if op.Wait != "" {
		after = engine.AllOf(r.sim, after, r.tag(op.Wait))
	}
	d := regionTime(r.cfg.CPU, op.Work, r.cfg.CPUThreads)
	done := r.host.SubmitAfter(after, "offload-host", d)
	if op.Signal != "" {
		r.tags[op.Signal] = done
	} else {
		r.hostTail = done
	}
}

// Transfer implements interp.Backend: asynchronous DMA issue. On degraded
// rungs prefetch transfers lose their purpose (sync mode serializes, host
// mode has no device) but their signal tags must still fire.
func (r *Runtime) Transfer(op *interp.TransferOp) error {
	for {
		var err error
		switch r.mode {
		case modeNormal:
			err = r.transferPipelined(op)
		case modeSync:
			err = r.transferSync(op)
		default:
			after := r.hostTail
			if op.Wait != "" {
				after = engine.AllOf(r.sim, r.hostTail, r.tag(op.Wait))
			}
			if op.Signal != "" {
				r.tags[op.Signal] = after
			}
			return nil
		}
		if err == nil {
			return nil
		}
		if r.rec.disabled || !allocFailure(err) {
			return err
		}
		r.degrade(err)
	}
}

func (r *Runtime) transferPipelined(op *interp.TransferOp) error {
	if err := r.allocSpecs(op.Specs); err != nil {
		return err
	}
	after := r.hostTail
	if op.Wait != "" {
		after = engine.AllOf(r.sim, r.hostTail, r.tag(op.Wait))
	}
	events, err := r.submitInputs(op.Specs, after)
	if err != nil {
		return err
	}
	outs, err := r.submitOutputs(op.Specs, after)
	if err != nil {
		return err
	}
	events = append(events, outs...)
	if op.Signal != "" {
		if len(events) == 0 {
			r.tags[op.Signal] = after
		} else {
			r.tags[op.Signal] = engine.AllOf(r.sim, events...)
		}
	}
	// offload_transfer returns immediately on the host; the DMA proceeds
	// in the background. Freeing (free_if(1)) applies once the DMAs drain.
	r.freeSpecs(op.Specs)
	return nil
}

// transferSync bounces the op's DMAs through the staging buffer as one
// serial chain.
func (r *Runtime) transferSync(op *interp.TransferOp) error {
	var need int64
	for _, sp := range op.Specs {
		if !sp.Scalar && sp.Bytes > need {
			need = sp.Bytes
		}
	}
	if need > 0 {
		if err := r.ensureStaging(uint64(need)); err != nil {
			return err
		}
	}
	tail := r.hostTail
	if op.Wait != "" {
		tail = engine.AllOf(r.sim, r.hostTail, r.tag(op.Wait))
	}
	tail, err := r.syncDMAs(op.Specs, interp.DirIn, pcie.HostToDevice, tail)
	if err != nil {
		return err
	}
	tail, err = r.syncDMAs(op.Specs, interp.DirOut, pcie.DeviceToHost, tail)
	if err != nil {
		return err
	}
	if op.Signal != "" {
		r.tags[op.Signal] = tail
	}
	return nil
}

// OffloadWait implements interp.Backend: block the host on a tag.
func (r *Runtime) OffloadWait(tagName string) {
	r.hostTail = engine.AllOf(r.sim, r.hostTail, r.tag(tagName))
}

func pragmaLabel(p *minic.Pragma) string {
	return fmt.Sprintf("offload@%s", p.Pos)
}

// Finish exits persistent kernels, drains the simulation, and returns the
// run's statistics. It must be called exactly once. (Scheduler-managed
// runtimes never call Finish — the scheduler closes every request's graph,
// runs the shared simulation once, and collects per-request stats itself.)
func (r *Runtime) Finish() Stats {
	if r.finished {
		panic("runtime: Finish called twice")
	}
	r.finished = true
	r.closeGraph()
	end := r.sim.Run()
	end = r.settle(end)
	var injected int64
	if r.inj != nil {
		injected = r.inj.Injected()
	}
	var overlap engine.Duration
	if r.ovIn != nil {
		overlap = r.ovIn.Total() + r.ovOut.Total()
	}
	return Stats{
		RaceWarnings:     r.detectRaces(),
		DeadlockWarnings: r.detectDeadlocks(),
		Time:             engine.Duration(end),
		HostBusy:         r.host.BusyTime(),
		DeviceBusy:       r.launcher.ComputeBusy(),
		TransferBusy:     r.bus.BusyTime(pcie.HostToDevice) + r.bus.BusyTime(pcie.DeviceToHost),
		Overlap:          overlap,
		KernelLaunches:   r.launcher.Launches(),
		Transfers:        r.bus.TotalTransfers(),
		BytesIn:          r.bus.BytesMoved(pcie.HostToDevice),
		BytesOut:         r.bus.BytesMoved(pcie.DeviceToHost),
		PeakDeviceBytes:  r.mem.Peak(),
		FaultsInjected:   injected,
		Retries:          r.retries,
		WatchdogFires:    r.watchdogFires,
		Fallbacks:        truncateWarnings(r.fallbacks),
		FaultWarnings:    truncateWarnings(r.faultWarns),
	}
}

// closeGraph exits this runtime's persistent kernels so their device
// occupancy ends; the event graph is complete afterwards. Exit submits no
// new work, so map iteration order does not affect the simulation.
func (r *Runtime) closeGraph() {
	for _, p := range r.persist {
		p.Exit()
	}
}

// settle extends a drained simulation's end time to cover this runtime's
// host tail and any end-of-run stall recovery.
func (r *Runtime) settle(end engine.Time) engine.Time {
	// The makespan also covers the host reaching its final point.
	if r.hostTail.Fired() && r.hostTail.Time() > end {
		end = r.hostTail.Time()
	}
	return r.recoverStalls(end)
}

// recoverStalls is the end-of-run watchdog: work that never completed
// because a signal never fired would hang real hardware forever. With
// recovery enabled, each stalled kernel is aborted after the watchdog
// period and re-run on the host, and a stalled final wait is abandoned;
// the returned makespan includes that recovery time. The stalls are still
// reported as DeadlockWarnings — recovery does not make the program
// correct, it makes the run finish.
func (r *Runtime) recoverStalls(end engine.Time) engine.Time {
	if r.rec.disabled {
		return end
	}
	for _, k := range r.kernels {
		if k.done.Fired() {
			continue
		}
		r.watchdogFires++
		rerun := regionTime(r.cfg.CPU, k.work, r.cfg.CPUThreads)
		end += engine.Time(r.rec.watchdog + rerun)
		r.sim.Trace().Instant("runtime", "watchdog:"+k.label, engine.CatFault, end,
			map[string]any{"op": "stall-rerun-on-host", "rerun": int64(rerun)})
		r.faultWarns = append(r.faultWarns, fmt.Sprintf(
			"watchdog: kernel %s stalled on a signal that never fired; aborted after %v and re-run on the host (%v)",
			k.label, r.rec.watchdog, rerun))
	}
	if !r.hostTail.Fired() {
		r.watchdogFires++
		end += engine.Time(r.rec.watchdog)
		r.sim.Trace().Instant("runtime", "watchdog:host-wait", engine.CatFault, end,
			map[string]any{"op": "stall-abandoned"})
		r.faultWarns = append(r.faultWarns, fmt.Sprintf(
			"watchdog: host wait stalled; abandoned after %v", r.rec.watchdog))
	}
	return end
}

// maxRaceWarnings caps each reported warning list; one real pipelining bug
// typically races on every block.
const maxRaceWarnings = 16

// truncateWarnings caps a warning list at maxRaceWarnings entries,
// appending a final "... and N more" entry in place of the dropped ones.
func truncateWarnings(warns []string) []string {
	if len(warns) <= maxRaceWarnings {
		return warns
	}
	out := append([]string(nil), warns[:maxRaceWarnings]...)
	return append(out, fmt.Sprintf("... and %d more", len(warns)-maxRaceWarnings))
}

// detectDeadlocks reports, after the simulation drained, any kernel or
// signal tag that never completed — the signature of a wait on a tag no
// transfer or offload ever signals.
func (r *Runtime) detectDeadlocks() []string {
	var warns []string
	for i, k := range r.kernels {
		if !k.done.Fired() {
			warns = append(warns, fmt.Sprintf("kernel %d never ran (waiting on a signal that never fires?)", i))
		}
	}
	names := make([]string, 0, len(r.tags))
	for name := range r.tags {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !r.tags[name].Fired() {
			warns = append(warns, fmt.Sprintf("signal tag %q was waited on but never signalled", name))
		}
	}
	if !r.hostTail.Fired() {
		warns = append(warns, "host never reached the end of the program")
	}
	return truncateWarnings(warns)
}

// detectRaces scans, after the simulation has run, for DMA writes into a
// device buffer that overlap in simulated time with a kernel that touched
// the same buffer. A correctly double-buffered pipeline never triggers
// this: the prefetch always targets the buffer the kernel is NOT using.
func (r *Runtime) detectRaces() []string {
	var warns []string
	for _, w := range r.bufWrites {
		if !w.done.Fired() {
			continue
		}
		ws, we := w.bounds()
		for _, k := range r.kernelUses {
			if k.buf != w.buf || !k.done.Fired() {
				continue
			}
			// Disjoint byte ranges (Figure 5(b): prefetch into a different
			// section of the same device array) are not a race.
			if w.hiByte <= k.loByte || k.hiByte <= w.loByte {
				continue
			}
			ks, ke := k.bounds()
			if ws < ke && ks < we {
				warns = append(warns, fmt.Sprintf(
					"race on device buffer %q: transfer %s [%v,%v) overlaps kernel %s [%v,%v)",
					w.buf, w.label, ws, we, k.label, ks, ke))
			}
		}
	}
	return truncateWarnings(warns)
}

// Result bundles a program execution with its simulated statistics and the
// recorded execution timeline (empty when Config.DisableTrace is set).
type Result struct {
	Stats   Stats
	Program *interp.Program
	Trace   *engine.Trace
}

// Run executes a compiled program on a fresh runtime and returns the
// statistics. The program is Reset first so repeated Runs are independent.
func Run(p *interp.Program, cfg Config) (Result, error) {
	return RunWithSetup(p, cfg, nil)
}

// RunWithSetup executes a compiled program after applying an input-
// injection hook (workloads use it to load generated data between Reset
// and execution).
func RunWithSetup(p *interp.Program, cfg Config, setup func(*interp.Program) error) (Result, error) {
	if err := p.Reset(); err != nil {
		return Result{}, err
	}
	if setup != nil {
		if err := setup(p); err != nil {
			return Result{}, err
		}
	}
	rt := New(cfg)
	if err := p.Run(rt); err != nil {
		return Result{}, err
	}
	return Result{Stats: rt.Finish(), Program: p, Trace: rt.Trace()}, nil
}
