package runtime

import (
	"testing"

	"comp/internal/interp"
)

// TestRunsAreDeterministic: the entire stack — input generation,
// interpretation, event scheduling — is deterministic, so two runs of the
// same program must agree on every statistic bit-for-bit. This is the
// property that makes the paper's figures reproducible from `go test`.
func TestRunsAreDeterministic(t *testing.T) {
	run := func() Stats {
		p, err := interp.Compile(streamedSource(1<<16, 8, true))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	a, b := run(), run()
	if a.Time != b.Time || a.HostBusy != b.HostBusy || a.DeviceBusy != b.DeviceBusy ||
		a.TransferBusy != b.TransferBusy || a.Overlap != b.Overlap ||
		a.KernelLaunches != b.KernelLaunches || a.Transfers != b.Transfers ||
		a.BytesIn != b.BytesIn || a.BytesOut != b.BytesOut ||
		a.PeakDeviceBytes != b.PeakDeviceBytes {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

// TestResetIsolation: rerunning one compiled program after Reset is
// equivalent to a fresh compile — no state leaks across runs.
func TestResetIsolation(t *testing.T) {
	p, err := interp.Compile(simpleOffload)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Time != r2.Stats.Time || r1.Stats.PeakDeviceBytes != r2.Stats.PeakDeviceBytes {
		t.Fatalf("rerun differs: %+v vs %+v", r1.Stats, r2.Stats)
	}
	b1, _ := r1.Program.ArrayData("b")
	p2, _ := interp.Compile(simpleOffload)
	r3, err := Run(p2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := r3.Program.ArrayData("b")
	for i := range b1 {
		if b1[i] != b3[i] {
			t.Fatalf("reused program diverges from fresh compile at %d", i)
		}
	}
}

// TestScaledPlatformSanity pins the calibration constants the evaluation
// depends on; changing them silently would invalidate EXPERIMENTS.md.
func TestScaledPlatformSanity(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MIC.Cores != 60 || cfg.MIC.ThreadsPerCore != 4 {
		t.Errorf("MIC core config changed: %d x %d", cfg.MIC.Cores, cfg.MIC.ThreadsPerCore)
	}
	if cfg.MICThreads != 200 || cfg.CPUThreads != 4 {
		t.Errorf("thread counts changed: %d/%d", cfg.MICThreads, cfg.CPUThreads)
	}
	if cfg.MIC.MemBytes != 8<<30 {
		t.Errorf("device memory changed: %d", cfg.MIC.MemBytes)
	}
	if cfg.PCIe.BandwidthGBs != 6.0 {
		t.Errorf("PCIe bandwidth changed: %v", cfg.PCIe.BandwidthGBs)
	}
	// D/K regime: a full-array blackscholes-sized transfer must cost a few
	// hundred launch overheads (the paper's regime; see params.go).
	d := New(cfg).bus.TransferTime(32768 * 20)
	ratio := float64(d) / float64(cfg.MIC.LaunchOverhead)
	if ratio < 50 || ratio > 1000 {
		t.Errorf("D/K ratio %.0f outside the calibrated regime [50,1000]", ratio)
	}
}
