package runtime

import (
	"strings"
	"testing"

	"comp/internal/interp"
)

func TestDeadlockDetectedOnUnsignalledWait(t *testing.T) {
	// The kernel waits on `ghost`, which nothing ever signals: on real
	// hardware this hangs forever. The simulator must surface it.
	src := `
float a[64];
float b[64];
int ghost;
int main(void) {
    int i;
    #pragma offload target(mic:0) in(a : length(64)) out(b : length(64)) wait(&ghost)
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        b[i] = a[i] + 1.0;
    }
    return 0;
}
`
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.DeadlockWarnings) == 0 {
		t.Fatal("unsignalled wait produced no deadlock warning")
	}
	joined := strings.Join(res.Stats.DeadlockWarnings, "; ")
	if !strings.Contains(joined, "ghost") && !strings.Contains(joined, "kernel") {
		t.Fatalf("warnings do not identify the stall: %v", res.Stats.DeadlockWarnings)
	}
}

func TestNoDeadlockOnCorrectPrograms(t *testing.T) {
	for _, src := range []string{simpleOffload, streamedSource(1<<15, 4, true)} {
		p, err := interp.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Stats.DeadlockWarnings) != 0 {
			t.Fatalf("correct program flagged: %v", res.Stats.DeadlockWarnings)
		}
	}
}

func TestDeadlockOnOffloadWaitWithoutSignal(t *testing.T) {
	src := `
float a[64];
int tag;
int main(void) {
    a[0] = 1.0;
    #pragma offload_wait target(mic:0) wait(&tag)
    return 0;
}
`
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.DeadlockWarnings) == 0 {
		t.Fatal("offload_wait on unsignalled tag not flagged")
	}
}
