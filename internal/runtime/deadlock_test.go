package runtime

import (
	"strings"
	"testing"

	"comp/internal/interp"
)

func TestDeadlockDetectedOnUnsignalledWait(t *testing.T) {
	// The kernel waits on `ghost`, which nothing ever signals: on real
	// hardware this hangs forever. The simulator must surface it.
	src := `
float a[64];
float b[64];
int ghost;
int main(void) {
    int i;
    #pragma offload target(mic:0) in(a : length(64)) out(b : length(64)) wait(&ghost)
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        b[i] = a[i] + 1.0;
    }
    return 0;
}
`
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.DeadlockWarnings) == 0 {
		t.Fatal("unsignalled wait produced no deadlock warning")
	}
	joined := strings.Join(res.Stats.DeadlockWarnings, "; ")
	if !strings.Contains(joined, "ghost") && !strings.Contains(joined, "kernel") {
		t.Fatalf("warnings do not identify the stall: %v", res.Stats.DeadlockWarnings)
	}
}

func TestNoDeadlockOnCorrectPrograms(t *testing.T) {
	for _, src := range []string{simpleOffload, streamedSource(1<<15, 4, true)} {
		p, err := interp.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Stats.DeadlockWarnings) != 0 {
			t.Fatalf("correct program flagged: %v", res.Stats.DeadlockWarnings)
		}
	}
}

// TestWatchdogRecoversUnsignalledWait: a hand-written pipeline whose wait
// tag never fires is a deadlock on real hardware. With recovery enabled
// (the default) the watchdog must abort the stalled kernel, re-run it on
// the host, and produce a finite makespan that includes that recovery —
// while still reporting the program bug as a deadlock warning.
func TestWatchdogRecoversUnsignalledWait(t *testing.T) {
	src := `
float src[4096];
float dst[4096];
float *buf;
float *outb;
int never;
int main(void) {
    int i;
    #pragma offload_transfer target(mic:0) nocopy(buf : length(4096) alloc_if(1) free_if(0)) nocopy(outb : length(4096) alloc_if(1) free_if(0))
    #pragma offload_transfer target(mic:0) in(src[0 : 4096] : into(buf) alloc_if(0) free_if(0))
    #pragma offload target(mic:0) out(outb[0 : 4096] : into(dst[0 : 4096]) alloc_if(0) free_if(0)) wait(&never)
    #pragma omp parallel for
    for (i = 0; i < 4096; i++) {
        outb[i] = buf[i] * 2.0;
    }
    return 0;
}
`
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatalf("watchdog run errored instead of completing: %v", err)
	}
	st := res.Stats
	if st.WatchdogFires == 0 {
		t.Fatal("stalled wait fired no watchdog")
	}
	if len(st.FaultWarnings) == 0 || !strings.Contains(strings.Join(st.FaultWarnings, "; "), "watchdog") {
		t.Fatalf("no watchdog fault warning recorded: %v", st.FaultWarnings)
	}
	if len(st.DeadlockWarnings) == 0 {
		t.Fatal("recovery must not hide the deadlock diagnosis")
	}
	// The recovered makespan covers the watchdog period plus the host
	// re-run of the stalled kernel.
	if st.Time < DefaultWatchdog {
		t.Fatalf("makespan %v does not include the watchdog period %v", st.Time, DefaultWatchdog)
	}

	// With recovery disabled the stall is only diagnosed, not recovered.
	cfg := DefaultConfig()
	cfg.Recovery.Disabled = true
	p2, _ := interp.Compile(src)
	res2, err := Run(p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.WatchdogFires != 0 {
		t.Fatalf("disabled recovery still fired the watchdog %d times", res2.Stats.WatchdogFires)
	}
}

func TestDeadlockOnOffloadWaitWithoutSignal(t *testing.T) {
	src := `
float a[64];
int tag;
int main(void) {
    a[0] = 1.0;
    #pragma offload_wait target(mic:0) wait(&tag)
    return 0;
}
`
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.DeadlockWarnings) == 0 {
		t.Fatal("offload_wait on unsignalled tag not flagged")
	}
}
