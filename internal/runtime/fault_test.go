package runtime

import (
	"reflect"
	"strings"
	"testing"

	"comp/internal/interp"
	"comp/internal/sim/fault"
)

// ladderSource runs three offloads with growing working sets: 32 KiB
// (fits), 64 KiB (forces the sync fallback on a 40 KiB device), and one
// 64 KiB inout buffer (too big even for the staging buffer, forcing the
// host fallback).
const ladderSource = `
float a[4096];
float b[4096];
float c[8192];
float d[8192];
float e[16384];
int main(void) {
    int i;
    for (i = 0; i < 4096; i++) {
        a[i] = i;
    }
    for (i = 0; i < 8192; i++) {
        c[i] = i;
    }
    for (i = 0; i < 16384; i++) {
        e[i] = i;
    }
    #pragma offload target(mic:0) in(a : length(4096)) out(b : length(4096))
    #pragma omp parallel for
    for (i = 0; i < 4096; i++) {
        b[i] = a[i] * 2.0;
    }
    #pragma offload target(mic:0) in(c : length(8192)) out(d : length(8192))
    #pragma omp parallel for
    for (i = 0; i < 8192; i++) {
        d[i] = c[i] + 1.0;
    }
    #pragma offload target(mic:0) inout(e : length(16384))
    #pragma omp parallel for
    for (i = 0; i < 16384; i++) {
        e[i] = e[i] * 3.0;
    }
    return 0;
}
`

// TestDegradationLadderEndToEnd is the acceptance test for the graceful
// degradation ladder: one run walks pipelined -> synchronous single-buffer
// -> host-only, each step visible in Stats.Fallbacks, with outputs intact.
func TestDegradationLadderEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MIC.MemBytes = 40 << 10 // 40 KiB device
	cfg.MIC.OSReservedBytes = 0

	p, err := interp.Compile(ladderSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("ladder run failed instead of degrading: %v", err)
	}
	st := res.Stats

	if len(st.Fallbacks) != 2 {
		t.Fatalf("fallbacks = %d, want 2 (sync then host):\n%s",
			len(st.Fallbacks), strings.Join(st.Fallbacks, "\n"))
	}
	if !strings.Contains(st.Fallbacks[0], "synchronous") {
		t.Errorf("first fallback is not the sync rung: %q", st.Fallbacks[0])
	}
	if !strings.Contains(st.Fallbacks[1], "host-only") {
		t.Errorf("second fallback is not the host rung: %q", st.Fallbacks[1])
	}
	// Offload 1 launches normally, offload 2 launches on the sync rung,
	// offload 3 runs on the host: two launches total.
	if st.KernelLaunches != 2 {
		t.Errorf("launches = %d, want 2", st.KernelLaunches)
	}
	if len(st.DeadlockWarnings) != 0 {
		t.Errorf("degraded run flagged deadlocks: %v", st.DeadlockWarnings)
	}

	// Values survive every rung: the interpreter computes them regardless
	// of where the timing model ran the region.
	b, _ := res.Program.ArrayData("b")
	d, _ := res.Program.ArrayData("d")
	e, _ := res.Program.ArrayData("e")
	if b[7] != 14 || d[9] != 10 || e[11] != 33 {
		t.Errorf("outputs corrupted: b[7]=%v d[9]=%v e[11]=%v, want 14 10 33", b[7], d[9], e[11])
	}

	// Without recovery the same platform fails hard at the second offload.
	cfg.Recovery.Disabled = true
	p2, _ := interp.Compile(ladderSource)
	if _, err := Run(p2, cfg); err == nil || !strings.Contains(err.Error(), "out of device memory") {
		t.Fatalf("disabled recovery: err = %v, want device OOM", err)
	}
}

func TestDMAFaultsRetryAndComplete(t *testing.T) {
	clean := mustRun(t, simpleOffload, DefaultConfig())

	cfg := DefaultConfig()
	cfg.Faults = fault.Config{Seed: 7, DMARate: 0.5}
	res := mustRun(t, simpleOffload, cfg)
	st := res.Stats
	if st.FaultsInjected == 0 {
		t.Fatal("DMARate 0.5 injected nothing")
	}
	if st.Retries == 0 {
		t.Fatal("injected DMA faults produced no retries")
	}
	if st.Time <= clean.Stats.Time {
		t.Fatalf("faulted run %v not slower than clean %v", st.Time, clean.Stats.Time)
	}
	// Payload accounting must not count failed attempts.
	if st.BytesIn != clean.Stats.BytesIn || st.BytesOut != clean.Stats.BytesOut {
		t.Fatalf("failed attempts moved payload: in %d/%d out %d/%d",
			st.BytesIn, clean.Stats.BytesIn, st.BytesOut, clean.Stats.BytesOut)
	}
}

func TestKernelHangsFireWatchdog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Config{Seed: 3, HangRate: 1} // every launch attempt hangs
	res := mustRun(t, simpleOffload, cfg)
	st := res.Stats
	if st.WatchdogFires == 0 {
		t.Fatal("hung kernels fired no watchdog")
	}
	if len(st.FaultWarnings) == 0 {
		t.Fatal("hang recovery recorded no fault warnings")
	}
	// HangRate 1 exhausts the retry budget, so the escalation must appear.
	joined := strings.Join(st.FaultWarnings, "; ")
	if !strings.Contains(joined, "retries") {
		t.Fatalf("no escalation warning after exhausted retries: %v", st.FaultWarnings)
	}
}

func TestPersistentBlockHangsRecover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Config{Seed: 11, HangRate: 0.3}
	res := mustRun(t, streamedSource(1<<16, 8, true), cfg)
	if res.Stats.FaultsInjected == 0 {
		t.Fatal("no hangs injected into the persistent pipeline")
	}
	if res.Stats.WatchdogFires == 0 {
		t.Fatal("persistent block hangs fired no watchdog")
	}
	if len(res.Stats.DeadlockWarnings) != 0 {
		t.Fatalf("recovered pipeline flagged deadlocks: %v", res.Stats.DeadlockWarnings)
	}
}

func TestFaultsAbortWhenRecoveryDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Config{Seed: 7, DMARate: 0.5}
	cfg.Recovery.Disabled = true
	p, err := interp.Compile(simpleOffload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, cfg); err == nil {
		t.Fatal("faults with recovery disabled did not abort the run")
	}
}

// TestFaultedRunsAreDeterministic: same seed, same Stats — field for
// field, including the warning lists.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Config{Seed: 23, DMARate: 0.4, LaunchRate: 0.2, HangRate: 0.1, AllocRate: 0.1}
	a := mustRun(t, streamedSource(1<<16, 8, false), cfg)
	b := mustRun(t, streamedSource(1<<16, 8, false), cfg)
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("same seed, different Stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Stats.FaultsInjected == 0 {
		t.Fatal("determinism test injected no faults; weaken the rates check")
	}

	cfg2 := cfg
	cfg2.Faults.Seed = 24
	c := mustRun(t, streamedSource(1<<16, 8, false), cfg2)
	if reflect.DeepEqual(a.Stats, c.Stats) {
		t.Fatal("different seeds produced identical Stats; schedule ignores the seed")
	}
}
