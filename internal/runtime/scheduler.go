package runtime

import (
	"fmt"
	"sort"
	"sync"

	"comp/internal/interp"
	"comp/internal/sim/devmem"
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
	"comp/internal/sim/kernel"
	"comp/internal/sim/machine"
	"comp/internal/sim/pcie"
)

// streamSeedStride separates per-stream fault schedules: stream i draws from
// Seed + i·stride, so one stream's request mix never perturbs another
// stream's injected faults.
const streamSeedStride = 1009

// Request is one offload job handed to the Scheduler.
type Request struct {
	// Label identifies the request in stats and traces. Determinism across
	// submission interleavings requires labels to be distinct: requests are
	// ordered by (Label, submission index), so duplicate labels submitted
	// concurrently may swap places between runs.
	Label   string
	Program *interp.Program
	// Setup is applied after Program.Reset and before execution (workloads
	// inject generated inputs here). May be nil.
	Setup func(*interp.Program) error
}

// RequestStats describes one request's journey through the scheduler.
type RequestStats struct {
	// ID is the request's rank in the deterministic (Label, arrival) order.
	ID    int
	Label string
	// StreamID is the stream the request executed on.
	StreamID int
	// QueueWait is how long the request sat behind earlier requests on its
	// stream before its first operation could start.
	QueueWait engine.Duration
	// Start and End bound the request's execution window.
	Start engine.Time
	End   engine.Time
	// Per-request resilience and correctness diagnostics, as in Stats.
	RaceWarnings     []string
	DeadlockWarnings []string
	Retries          int64
	WatchdogFires    int64
	Fallbacks        []string
	FaultWarnings    []string
}

// StreamStats aggregates one stream's share of the device over the run.
type StreamStats struct {
	StreamID int
	// Cores and Threads are the stream's slice of the device.
	Cores   int
	Threads int
	// Requests is how many requests the stream executed.
	Requests int
	// DeviceBusy is the stream's compute-fabric busy time; HostBusy its
	// host thread's.
	DeviceBusy engine.Duration
	HostBusy   engine.Duration
	// Overlap is transfer↔compute overlap for this stream's kernels
	// (shared DMA channels vs this stream's compute resource).
	Overlap engine.Duration
	// QueueWait sums the stream's requests' queue waits.
	QueueWait      engine.Duration
	KernelLaunches int64
	FaultsInjected int64
	Retries        int64
	WatchdogFires  int64
}

// SchedStats summarizes a scheduler run: global figures plus per-stream and
// per-request breakdowns.
type SchedStats struct {
	// Time is the makespan: all requests complete, stalls recovered.
	Time engine.Duration
	// CrossStreamOverlap is the time at least two streams' compute
	// resources were simultaneously busy — the utilization a single
	// pipeline cannot reach, measured online like Stats.Overlap.
	CrossStreamOverlap engine.Duration
	// Shared-resource totals (one PCIe link, one device memory).
	TransferBusy    engine.Duration
	Transfers       int64
	BytesIn         int64
	BytesOut        int64
	PeakDeviceBytes uint64
	// Totals across streams.
	KernelLaunches int64
	FaultsInjected int64
	Retries        int64
	WatchdogFires  int64

	Streams  []StreamStats
	Requests []RequestStats
}

// SchedResult bundles a scheduler run's stats with its execution trace
// (empty when Config.DisableTrace is set).
type SchedResult struct {
	Stats SchedStats
	Trace *engine.Trace
}

// Scheduler multiplexes many concurrent offload requests onto N device
// streams.
//
// The single-program runtime executes one offload pipeline at a time: a
// memory-bound kernel occupying all cores leaves compute throughput idle
// past the bandwidth-saturation knee, and every host segment leaves the
// whole card idle. The Scheduler closes that gap the way Li et al. and
// Zhang et al. partition the MIC: the device's cores are split into N
// core-disjoint streams (machine.Config.Partition), each with its own
// persistent-kernel launcher and host thread, while the PCIe DMA channels
// and device memory stay shared and are arbitrated FIFO across streams.
// Requests may be submitted from many host threads; execution itself is a
// deterministic function of the submitted set, not of submission timing.
// Each request should carry its own Program instance — execution happens
// at graph-construction time, so sharing one Program across requests
// overwrites its outputs.
//
// Submit is safe for concurrent use; Run executes the accumulated batch.
type Scheduler struct {
	cfg     Config
	streams int

	mu   sync.Mutex
	reqs []Request
	ran  bool
}

// NewScheduler validates the platform config and stream count. The device
// engaged by cfg.MICThreads must have at least one whole core per stream.
func NewScheduler(cfg Config, streams int) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := cfg.MIC.Partition(cfg.MICThreads, streams); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg, streams: streams}, nil
}

// Streams returns the configured stream count.
func (s *Scheduler) Streams() int { return s.streams }

// Submit queues one request. Safe to call from many goroutines; the final
// schedule depends only on the set of (distinct) labels, not on timing.
func (s *Scheduler) Submit(req Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ran {
		panic("runtime: Submit after Run")
	}
	s.reqs = append(s.reqs, req)
}

// stream is the per-stream slice of the shared platform.
type stream struct {
	id       int
	share    machine.Share
	launcher *kernel.Launcher
	host     *engine.Resource
	ovIn     *engine.OverlapMeter
	ovOut    *engine.OverlapMeter
	inj      *fault.Injector
	tail     *engine.Event // completion of the stream's last queued request
	requests int
	queued   engine.Duration
	retries  int64
	watchdog int64
}

// Run executes every submitted request and returns the collected stats.
// It must be called exactly once, after all Submits.
func (s *Scheduler) Run() (SchedResult, error) {
	s.mu.Lock()
	reqs := append([]Request(nil), s.reqs...)
	s.ran = true
	s.mu.Unlock()

	// Deterministic order regardless of submission interleaving.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Label < reqs[order[b]].Label
	})

	shares, err := s.cfg.MIC.Partition(s.cfg.MICThreads, s.streams)
	if err != nil {
		return SchedResult{}, err
	}

	sim := engine.New()
	if s.cfg.DisableTrace {
		sim.Trace().SetEnabled(false)
	}
	bus := pcie.New(sim, s.cfg.PCIe)
	memBytes := s.cfg.MIC.MemBytes
	if memBytes == 0 {
		memBytes = 8 << 30
	}
	mem := devmem.New(memBytes, s.cfg.MIC.OSReservedBytes)
	mem.SetTrace(sim.Trace(), sim.Now)
	rec := s.cfg.Recovery.resolve()

	streams := make([]*stream, s.streams)
	computes := make([]*engine.Resource, s.streams)
	for i := range streams {
		st := &stream{
			id:       i,
			share:    shares[i],
			launcher: kernel.NewLauncherOn(sim, fmt.Sprintf("mic-s%d", i), s.cfg.MIC.LaunchOverhead),
			tail:     sim.FiredEvent(),
		}
		st.host = sim.NewResource(fmt.Sprintf("cpu-s%d", i), 1)
		st.host.SetCategory(engine.CatHost)
		// Meters are created before any submission, like in New.
		st.ovIn = sim.MeterOverlap(bus.Resource(pcie.HostToDevice), st.launcher.Resource())
		st.ovOut = sim.MeterOverlap(bus.Resource(pcie.DeviceToHost), st.launcher.Resource())
		if s.cfg.Faults.Enabled() {
			fcfg := s.cfg.Faults
			fcfg.Seed += int64(i) * streamSeedStride
			st.inj = fault.New(fcfg)
			st.inj.SetTrace(sim.Trace(), sim.Now)
			st.launcher.SetFaults(st.inj, rec.watchdog)
		}
		streams[i] = st
		computes[i] = st.launcher.Resource()
	}
	cross := sim.MeterConcurrency(2, computes...)

	// Build every request's event graph sequentially in deterministic
	// order; the simulation executes the whole batch afterwards. The shared
	// bus and memory consult the constructing request's injector, so each
	// stream's fault schedule is independent of the others' request mix.
	rts := make([]*Runtime, len(reqs))
	gates := make([]*engine.Event, len(reqs))
	for rank, idx := range order {
		req := reqs[idx]
		st := streams[rank%s.streams]
		gate := st.tail
		gates[rank] = gate
		bus.SetInjector(st.inj)
		mem.SetInjector(st.inj)
		rt := newOnStream(s.cfg, streamParts{
			sim:        sim,
			bus:        bus,
			mem:        mem,
			launcher:   st.launcher,
			host:       st.host,
			mic:        st.share.Config,
			micThreads: st.share.Threads,
			inj:        st.inj,
			dmaArgs:    map[string]any{"stream": int64(st.id)},
			after:      gate,
		})
		if err := req.Program.Reset(); err != nil {
			return SchedResult{}, fmt.Errorf("request %q: %w", req.Label, err)
		}
		if req.Setup != nil {
			if err := req.Setup(req.Program); err != nil {
				return SchedResult{}, fmt.Errorf("request %q: %w", req.Label, err)
			}
		}
		if err := req.Program.Run(rt); err != nil {
			return SchedResult{}, fmt.Errorf("request %q: %w", req.Label, err)
		}
		rt.closeGraph()
		st.tail = rt.hostTail
		st.requests++
		rts[rank] = rt
	}

	end := sim.Run()
	for _, rt := range rts {
		end = rt.settle(end)
	}

	stats := SchedStats{
		Time:               engine.Duration(end),
		CrossStreamOverlap: cross.Total(),
		TransferBusy:       bus.BusyTime(pcie.HostToDevice) + bus.BusyTime(pcie.DeviceToHost),
		Transfers:          bus.TotalTransfers(),
		BytesIn:            bus.BytesMoved(pcie.HostToDevice),
		BytesOut:           bus.BytesMoved(pcie.DeviceToHost),
		PeakDeviceBytes:    mem.Peak(),
		Requests:           make([]RequestStats, len(reqs)),
	}
	for rank, idx := range order {
		rt := rts[rank]
		st := streams[rank%s.streams]
		rq := RequestStats{
			ID:               rank,
			Label:            reqs[idx].Label,
			StreamID:         st.id,
			RaceWarnings:     rt.detectRaces(),
			DeadlockWarnings: rt.detectDeadlocks(),
			Retries:          rt.retries,
			WatchdogFires:    rt.watchdogFires,
			Fallbacks:        truncateWarnings(rt.fallbacks),
			FaultWarnings:    truncateWarnings(rt.faultWarns),
		}
		if gates[rank].Fired() {
			rq.Start = gates[rank].Time()
			rq.QueueWait = engine.Duration(rq.Start)
		}
		if rt.hostTail.Fired() {
			rq.End = rt.hostTail.Time()
		} else {
			rq.End = end
		}
		st.queued += rq.QueueWait
		st.retries += rq.Retries
		st.watchdog += rq.WatchdogFires
		stats.Requests[rank] = rq
		stats.Retries += rq.Retries
		stats.WatchdogFires += rq.WatchdogFires
	}
	for _, st := range streams {
		ss := StreamStats{
			StreamID:       st.id,
			Cores:          st.share.Cores,
			Threads:        st.share.Threads,
			Requests:       st.requests,
			DeviceBusy:     st.launcher.ComputeBusy(),
			HostBusy:       st.host.BusyTime(),
			Overlap:        st.ovIn.Total() + st.ovOut.Total(),
			QueueWait:      st.queued,
			KernelLaunches: st.launcher.Launches(),
			Retries:        st.retries,
			WatchdogFires:  st.watchdog,
		}
		if st.inj != nil {
			ss.FaultsInjected = st.inj.Injected()
		}
		stats.Streams = append(stats.Streams, ss)
		stats.KernelLaunches += ss.KernelLaunches
		stats.FaultsInjected += ss.FaultsInjected
	}
	return SchedResult{Stats: stats, Trace: sim.Trace()}, nil
}
