package runtime

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"comp/internal/interp"
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
	"comp/internal/sim/metrics"
)

// schedPrograms compiles n independent copies of the double-buffered
// streamed pipeline (each request needs its own Program: execution happens
// at graph-construction time).
func schedPrograms(t *testing.T, n int) []*interp.Program {
	t.Helper()
	out := make([]*interp.Program, n)
	for i := range out {
		p, err := interp.Compile(streamedSource(1<<16, 8, true))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// runSched builds a scheduler over cfg, submits the programs under labels
// "req-%02d", and runs the batch.
func runSched(t *testing.T, cfg Config, streams int, progs []*interp.Program) SchedResult {
	t.Helper()
	s, err := NewScheduler(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		s.Submit(Request{Label: fmt.Sprintf("req-%02d", i), Program: p})
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSchedulerDeterministic: two scheduler runs of the same batch agree on
// every statistic bit-for-bit, the property TestRunsAreDeterministic pins
// for the single-program runtime.
func TestSchedulerDeterministic(t *testing.T) {
	run := func() SchedStats {
		return runSched(t, DefaultConfig(), 2, schedPrograms(t, 4)).Stats
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scheduler runs differ:\n%+v\n%+v", a, b)
	}
}

// TestSchedulerSubmissionOrderIndependence: the schedule is a function of
// the submitted set (ordered by label), not of submission order.
func TestSchedulerSubmissionOrderIndependence(t *testing.T) {
	cfg := DefaultConfig()
	forward := runSched(t, cfg, 2, schedPrograms(t, 4)).Stats

	s, err := NewScheduler(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	progs := schedPrograms(t, 4)
	for i := len(progs) - 1; i >= 0; i-- {
		s.Submit(Request{Label: fmt.Sprintf("req-%02d", i), Program: progs[i]})
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forward, res.Stats) {
		t.Fatalf("submission order changed the schedule:\n%+v\n%+v", forward, res.Stats)
	}
}

// TestSchedulerConcurrentSubmitters: eight host goroutines race to Submit;
// under `go test -race` this exercises the queue's synchronization, and the
// result must equal the serially-submitted batch.
func TestSchedulerConcurrentSubmitters(t *testing.T) {
	const n = 8
	cfg := DefaultConfig()
	serial := runSched(t, cfg, 2, schedPrograms(t, n)).Stats

	s, err := NewScheduler(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	progs := schedPrograms(t, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Submit(Request{Label: fmt.Sprintf("req-%02d", i), Program: progs[i]})
		}(i)
	}
	wg.Wait()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, res.Stats) {
		t.Fatalf("concurrent submission changed the schedule:\n%+v\n%+v", serial, res.Stats)
	}
}

// TestSchedulerQueueWait: on a single stream, requests serialize; the
// second request's queue wait equals the first one's completion time.
func TestSchedulerQueueWait(t *testing.T) {
	res := runSched(t, DefaultConfig(), 1, schedPrograms(t, 2))
	rq := res.Stats.Requests
	if len(rq) != 2 {
		t.Fatalf("got %d request stats, want 2", len(rq))
	}
	if rq[0].QueueWait != 0 {
		t.Errorf("first request waited %v, want 0", rq[0].QueueWait)
	}
	if rq[1].QueueWait == 0 {
		t.Error("second request on the same stream waited 0")
	}
	if rq[1].Start != rq[0].End {
		t.Errorf("second request started at %v, first ended at %v", rq[1].Start, rq[0].End)
	}
	if res.Stats.CrossStreamOverlap != 0 {
		t.Errorf("one stream cannot cross-overlap, got %v", res.Stats.CrossStreamOverlap)
	}
}

// TestSchedulerSpreadsRequests: round-robin placement engages every stream.
func TestSchedulerSpreadsRequests(t *testing.T) {
	res := runSched(t, DefaultConfig(), 4, schedPrograms(t, 4))
	if len(res.Stats.Streams) != 4 {
		t.Fatalf("got %d stream stats, want 4", len(res.Stats.Streams))
	}
	for _, ss := range res.Stats.Streams {
		if ss.Requests != 1 {
			t.Errorf("stream %d ran %d requests, want 1", ss.StreamID, ss.Requests)
		}
		if ss.DeviceBusy == 0 {
			t.Errorf("stream %d never computed", ss.StreamID)
		}
		if ss.Cores == 0 || ss.Threads == 0 {
			t.Errorf("stream %d has empty share: %+v", ss.StreamID, ss)
		}
	}
	if res.Stats.CrossStreamOverlap == 0 {
		t.Error("four concurrent streams never overlapped")
	}
}

// TestSchedulerStatsTraceConsistency extends the Stats↔Trace oracle to the
// multi-stream scheduler: every per-stream aggregate must be re-derivable
// from the "mic-s<i>"/"cpu-s<i>" span streams, DMA spans must carry their
// stream id, and the online cross-stream meter must match the trace sweep
// (via metrics.FromTrace, which implements it independently).
func TestSchedulerStatsTraceConsistency(t *testing.T) {
	res := runSched(t, DefaultConfig(), 2, schedPrograms(t, 4))
	checkSchedStatsTrace(t, res)
}

func checkSchedStatsTrace(t *testing.T, res SchedResult) {
	t.Helper()
	st, tr := res.Stats, res.Trace
	if tr == nil || len(tr.Spans()) == 0 {
		t.Fatal("no trace recorded")
	}
	for _, ss := range st.Streams {
		compute := fmt.Sprintf("mic-s%d", ss.StreamID)
		host := fmt.Sprintf("cpu-s%d", ss.StreamID)
		if want := tr.BusyTime(compute); ss.DeviceBusy != want {
			t.Errorf("stream %d DeviceBusy = %v, trace busy = %v", ss.StreamID, ss.DeviceBusy, want)
		}
		if want := tr.BusyTime(host); ss.HostBusy != want {
			t.Errorf("stream %d HostBusy = %v, trace busy = %v", ss.StreamID, ss.HostBusy, want)
		}
		if want := tr.Overlap("pcie-h2d", compute) + tr.Overlap("pcie-d2h", compute); ss.Overlap != want {
			t.Errorf("stream %d Overlap = %v, trace overlap = %v", ss.StreamID, ss.Overlap, want)
		}
		var launches int64
		for _, sp := range tr.ByResource(compute) {
			if v, ok := sp.Args["launch"].(bool); ok && v {
				launches++
			}
		}
		if ss.KernelLaunches != launches {
			t.Errorf("stream %d KernelLaunches = %d, launch-marked spans = %d", ss.StreamID, ss.KernelLaunches, launches)
		}
	}

	// Shared-resource books: DMA spans sum to the global counters, and every
	// one is tagged with a valid stream id.
	var nDMA, bytesIn, bytesOut int64
	for _, sp := range tr.Spans() {
		if sp.Cat != engine.CatDMAIn && sp.Cat != engine.CatDMAOut {
			continue
		}
		nDMA++
		b, ok := sp.Args["bytes"].(int64)
		if !ok {
			t.Fatalf("DMA span %s/%s has no bytes arg: %v", sp.Resource, sp.Label, sp.Args)
		}
		id, ok := sp.Args["stream"].(int64)
		if !ok || id < 0 || int(id) >= len(st.Streams) {
			t.Fatalf("DMA span %s/%s has no valid stream tag: %v", sp.Resource, sp.Label, sp.Args)
		}
		if sp.Cat == engine.CatDMAIn {
			bytesIn += b
		} else {
			bytesOut += b
		}
	}
	if st.Transfers != nDMA {
		t.Errorf("Transfers = %d, DMA spans = %d", st.Transfers, nDMA)
	}
	if st.BytesIn != bytesIn || st.BytesOut != bytesOut {
		t.Errorf("bytes in/out = %d/%d, trace = %d/%d", st.BytesIn, st.BytesOut, bytesIn, bytesOut)
	}

	// The online cross-stream meter vs the independent trace-side sweep in
	// the metrics package, which also rebuilds the per-stream figures.
	rep := metrics.FromTrace(tr, st.Time)
	if rep.CrossStreamOverlapNs != int64(st.CrossStreamOverlap) {
		t.Errorf("CrossStreamOverlap = %v, metrics sweep = %dns", st.CrossStreamOverlap, rep.CrossStreamOverlapNs)
	}
	if len(rep.Streams) != len(st.Streams) {
		t.Fatalf("metrics found %d streams, scheduler ran %d", len(rep.Streams), len(st.Streams))
	}
	for i, sm := range rep.Streams {
		ss := st.Streams[i]
		if sm.ComputeBusyNs != int64(ss.DeviceBusy) || sm.HostBusyNs != int64(ss.HostBusy) ||
			sm.OverlapNs != int64(ss.Overlap) {
			t.Errorf("stream %d: metrics %+v disagree with stats %+v", ss.StreamID, sm, ss)
		}
	}

	// Makespan covers every span.
	for _, sp := range tr.Spans() {
		if engine.Duration(sp.End) > st.Time {
			t.Errorf("span %s/%s ends at %v, after the makespan %v", sp.Resource, sp.Label, sp.End, st.Time)
			break
		}
	}
}

// TestSchedulerDisableTrace: recording off changes nothing but the span
// stream (the observer-effect contract, scheduler edition).
func TestSchedulerDisableTrace(t *testing.T) {
	traced := runSched(t, DefaultConfig(), 2, schedPrograms(t, 4))
	cfg := DefaultConfig()
	cfg.DisableTrace = true
	silent := runSched(t, cfg, 2, schedPrograms(t, 4))
	if n := len(silent.Trace.Spans()); n != 0 {
		t.Errorf("DisableTrace still recorded %d spans", n)
	}
	if !reflect.DeepEqual(traced.Stats, silent.Stats) {
		t.Errorf("tracing changed scheduler stats:\n on: %+v\noff: %+v", traced.Stats, silent.Stats)
	}
}

// TestSchedulerChaos: the PR-1 resilience ladder holds per stream — under
// an aggressive fault schedule the batch completes, every request's outputs
// match the fault-free run, and the same seed reproduces the same stats.
func TestSchedulerChaos(t *testing.T) {
	outputs := func(t *testing.T, progs []*interp.Program) [][]float64 {
		var out [][]float64
		for _, p := range progs {
			b, err := p.ArrayData("b")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, append([]float64(nil), b...))
		}
		return out
	}
	cleanProgs := schedPrograms(t, 4)
	clean := runSched(t, DefaultConfig(), 2, cleanProgs)
	want := outputs(t, cleanProgs)

	for i, seed := range []int64{11, 23, 47} {
		cfg := DefaultConfig()
		cfg.Faults = fault.Config{Seed: seed, DMARate: 0.5, LaunchRate: 0.25, HangRate: 0.15, AllocRate: 0.1}
		progs := schedPrograms(t, 4)
		res := runSched(t, cfg, 2, progs)
		st := res.Stats
		if st.FaultsInjected < 1 {
			t.Errorf("seed %d: no faults injected; the schedule is too weak to test anything", seed)
		}
		if got := outputs(t, progs); !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: outputs diverged from the fault-free run", seed)
		}
		if limit := 50*clean.Stats.Time + 50*engine.Millisecond; st.Time > limit {
			t.Errorf("seed %d: makespan %v exceeds bound %v (clean %v)", seed, st.Time, limit, clean.Stats.Time)
		}
		for _, rq := range st.Requests {
			if len(rq.DeadlockWarnings) != 0 {
				t.Errorf("seed %d: request %s left deadlocks: %v", seed, rq.Label, rq.DeadlockWarnings)
			}
		}
		// Per-stream fault schedules are independent and must reach the
		// stream totals.
		var perStream int64
		for _, ss := range st.Streams {
			perStream += ss.FaultsInjected
		}
		if perStream != st.FaultsInjected {
			t.Errorf("seed %d: stream fault totals %d != global %d", seed, perStream, st.FaultsInjected)
		}
		// The consistency oracle must hold under chaos too.
		checkSchedStatsTrace(t, res)
		if i == 0 {
			again := runSched(t, cfg, 2, schedPrograms(t, 4))
			if !reflect.DeepEqual(st, again.Stats) {
				t.Errorf("seed %d: rerun produced different stats:\n%+v\n%+v", seed, st, again.Stats)
			}
		}
	}
}

// TestNewSchedulerValidation: impossible partitions are rejected up front.
func TestNewSchedulerValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewScheduler(cfg, 0); err == nil {
		t.Error("0 streams accepted")
	}
	// 200 threads engage 50 cores; 51 streams cannot each get a whole core.
	if _, err := NewScheduler(cfg, 51); err == nil {
		t.Error("more streams than engaged cores accepted")
	}
	if _, err := NewScheduler(cfg, 4); err != nil {
		t.Errorf("4 streams rejected: %v", err)
	}
}

// TestSchedulerSubmitAfterRunPanics pins the single-batch contract.
func TestSchedulerSubmitAfterRunPanics(t *testing.T) {
	s, err := NewScheduler(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Submit after Run did not panic")
		}
	}()
	s.Submit(Request{Label: "late"})
}
