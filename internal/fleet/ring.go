// Package fleet scales the offload service from one simulated card to a
// fleet of hosts × devices: a router in front of N serve.Server instances,
// each over its own (possibly heterogeneous) simulated platform.
//
// Placement is consistent hashing on the compiled-plan key, so a key's
// requests keep landing on the same device and its per-device plan cache
// stays hot (Zhang et al.: tuning decisions are a property of the
// workload/platform pair — re-planning a key on a new device is the
// expensive event placement exists to avoid). When a primary's queue grows
// past the work-stealing threshold, the router redirects to the
// least-loaded device of the same machine signature: the shared
// compiled-plan registry keys plans by (job, machine) so a same-signature
// thief reuses the donor's plan without recompiling, and stealing never
// crosses signatures while the donor is healthy. Device loss removes the
// device from the ring — consistent hashing moves only the lost device's
// keys (~K/N of them) — while its admitted queue drains to completion;
// nothing is dropped and nothing is assigned twice.
//
// Determinism: like the single server, a request's values are a pure
// function of its plan source and inputs, so fleet composition, stealing,
// and faults perturb timing but never outputs. The stepped replay harness
// (Replay) additionally makes the full rollup deterministic: submissions,
// steal decisions, loss events, and batch boundaries become a function of
// the trace alone, so two replays are bit-identical — outputs, rejection
// set, and the fleet-wide report.
package fleet

import (
	"fmt"
	"sort"
)

// ringPoint is one virtual node: a device's hash point on the unit circle.
type ringPoint struct {
	hash uint64
	id   string
}

// Ring is a consistent-hash ring over device IDs. Placement depends only
// on the member set — never on insertion order or any seed — because every
// point is a pure hash of (device ID, replica index). It is not safe for
// concurrent use; the Fleet serializes access.
type Ring struct {
	replicas int
	points   []ringPoint
	members  map[string]bool
}

// DefaultReplicas is the virtual-node count per device. 64 points keep the
// expected load imbalance across a handful of devices within a few percent
// while the ring stays small enough to rebuild on every membership change.
const DefaultReplicas = 64

// NewRing returns an empty ring; replicas ≤ 0 selects DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: map[string]bool{}}
}

// Add places a device's virtual nodes on the ring. Adding an existing
// member is an error — the caller tracks health separately.
func (r *Ring) Add(id string) error {
	if id == "" {
		return fmt.Errorf("fleet: empty device id")
	}
	if r.members[id] {
		return fmt.Errorf("fleet: device %s already on the ring", id)
	}
	r.members[id] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(id, i), id: id})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].id < r.points[b].id
	})
	return nil
}

// Remove takes a device's virtual nodes off the ring; keys it owned move
// to their next clockwise neighbors, everything else stays put.
func (r *Ring) Remove(id string) error {
	if !r.members[id] {
		return fmt.Errorf("fleet: device %s not on the ring", id)
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Has reports ring membership.
func (r *Ring) Has(id string) bool { return r.members[id] }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member IDs sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup maps a plan key to its owning device: the first virtual node at
// or clockwise of the key's hash. ok is false only on an empty ring.
func (r *Ring) Lookup(key string) (id string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id, true
}

// keyHash maps a plan key to its ring position: FNV-1a over the bytes,
// then a splitmix64-style finalizer for dispersion (short keys differ in
// few bits; the finalizer spreads them over the whole circle).
func keyHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return mix64(h)
}

// pointHash positions one virtual node: the device hash advanced by the
// replica index, re-finalized so replicas scatter instead of clustering.
func pointHash(id string, replica int) uint64 {
	return mix64(keyHash(id) + uint64(replica)*0x9E3779B97F4A7C15)
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
