package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"comp/internal/serve"
	"comp/internal/sim/fault"
	"comp/internal/sim/metrics"
)

// Op is one trace event's kind.
type Op int

const (
	// OpSubmit enqueues Event.Job through the router.
	OpSubmit Op = iota
	// OpFail takes Event.Device off the ring (device loss).
	OpFail
	// OpRestore returns Event.Device to the ring.
	OpRestore
	// OpFaults installs Event.Faults on Event.Device (a per-device fault
	// storm, or fault.Config{} to clear one).
	OpFaults
	// OpStep runs one batch on every device in ID order.
	OpStep
)

func (o Op) String() string {
	switch o {
	case OpSubmit:
		return "submit"
	case OpFail:
		return "fail"
	case OpRestore:
		return "restore"
	case OpFaults:
		return "faults"
	case OpStep:
		return "step"
	}
	return fmt.Sprintf("fleet.Op(%d)", int(o))
}

// Event is one entry of a fleet trace.
type Event struct {
	Op     Op
	Job    serve.Job    // OpSubmit
	Device string       // OpFail / OpRestore / OpFaults
	Faults fault.Config // OpFaults
}

// Submit builds a submission event.
func Submit(job serve.Job) Event { return Event{Op: OpSubmit, Job: job} }

// Fail builds a device-loss event.
func Fail(id string) Event { return Event{Op: OpFail, Device: id} }

// Restore builds a device-restore event.
func Restore(id string) Event { return Event{Op: OpRestore, Device: id} }

// Storm builds a per-device fault-schedule event.
func Storm(id string, fc fault.Config) Event {
	return Event{Op: OpFaults, Device: id, Faults: fc}
}

// Step builds an explicit step event.
func Step() Event { return Event{Op: OpStep} }

// Outcome is one submission's answer in a replay.
type Outcome struct {
	// Index is the event's position in the trace.
	Index int `json:"index"`
	// Placement is where the router sent it.
	Placement Placement `json:"placement"`
	// Err is the error text; empty means the request completed. The set of
	// outcomes with non-empty Err is the replay's rejection set.
	Err string `json:"err,omitempty"`
	// Outputs are the completed request's output arrays.
	Outputs map[string][]float64 `json:"outputs,omitempty"`
	// LatencyNs is the virtual submit→answer latency.
	LatencyNs int64 `json:"latencyNs,omitempty"`
	// PlanCached reports plan-registry reuse for completed requests.
	PlanCached bool `json:"planCached,omitempty"`
}

// ReplayResult is one replay's full evidence: every submission's outcome
// and the fleet rollup. OutcomesJSON / ReportJSON are the canonical bytes
// Verify compares across replays.
type ReplayResult struct {
	Outcomes     []Outcome
	Report       metrics.FleetReport
	OutcomesJSON []byte
	ReportJSON   []byte
}

// Rejections returns the indices of submissions answered with an error,
// each with its error text — the replay's rejection set.
func (r *ReplayResult) Rejections() map[int]string {
	out := map[int]string{}
	for _, o := range r.Outcomes {
		if o.Err != "" {
			out[o.Index] = o.Err
		}
	}
	return out
}

// ReplayTick is the virtual time that passes between consecutive trace
// events during Replay.
const ReplayTick = time.Millisecond

// Replay drives a trace through a fresh stepped fleet on a virtual clock
// and returns the evidence. The configuration's Clock and Stepped fields
// are overridden; everything else (devices, thresholds, shared planner) is
// honored. Every quantity the fleet observes — submission order, queue
// depths behind every steal decision, loss and storm events, batch
// composition, deadlines, virtual latencies — is a function of the trace
// alone, so two replays of the same trace are bit-identical: outputs,
// rejection set, and the full fleet report.
//
// Batches run on OpStep events and during the final drain; a trace with no
// OpStep simply queues everything and drains at the end. A shared Planner
// carried across replays changes PlanCached/TuneProbes evidence — use a
// fresh Config.Planner (or nil) when comparing replays.
func Replay(cfg Config, events []Event) (*ReplayResult, error) {
	epoch := time.Unix(0, 0).UTC()
	var offset time.Duration
	cfg.Stepped = true
	cfg.Clock = func() time.Time { return epoch.Add(offset) }
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type open struct {
		idx int
		t   *serve.Ticket
	}
	var outstanding []open
	res := &ReplayResult{}

	for i, ev := range events {
		offset = time.Duration(i+1) * ReplayTick
		switch ev.Op {
		case OpSubmit:
			pl, t, err := f.Enqueue(ev.Job)
			if err != nil {
				res.Outcomes = append(res.Outcomes, Outcome{Index: i, Placement: pl, Err: err.Error()})
				continue
			}
			res.Outcomes = append(res.Outcomes, Outcome{Index: i, Placement: pl})
			outstanding = append(outstanding, open{idx: len(res.Outcomes) - 1, t: t})
		case OpFail:
			if err := f.FailDevice(ev.Device); err != nil {
				return nil, fmt.Errorf("fleet: replay event %d: %w", i, err)
			}
		case OpRestore:
			if err := f.RestoreDevice(ev.Device); err != nil {
				return nil, fmt.Errorf("fleet: replay event %d: %w", i, err)
			}
		case OpFaults:
			if err := f.SetDeviceFaults(ev.Device, ev.Faults); err != nil {
				return nil, fmt.Errorf("fleet: replay event %d: %w", i, err)
			}
		case OpStep:
			f.StepAll()
		default:
			return nil, fmt.Errorf("fleet: replay event %d: unknown op %v", i, ev.Op)
		}
	}

	// Drain: keep stepping (advancing the virtual clock one tick per round
	// so latencies stay meaningful) until every device's queue is empty.
	round := len(events)
	for {
		round++
		offset = time.Duration(round+1) * ReplayTick
		if f.StepAll() == 0 {
			break
		}
	}

	for _, o := range outstanding {
		resp, err := o.t.Wait()
		out := &res.Outcomes[o.idx]
		if err != nil {
			out.Err = err.Error()
			continue
		}
		out.Outputs = resp.Outputs
		out.LatencyNs = int64(resp.Latency)
		out.PlanCached = resp.PlanCached
	}

	res.Report = f.Report()
	if res.OutcomesJSON, err = json.Marshal(res.Outcomes); err != nil {
		return nil, err
	}
	if res.ReportJSON, err = json.Marshal(res.Report); err != nil {
		return nil, err
	}
	return res, nil
}

// Verify replays the trace twice against fresh fleets and fails unless the
// two replays are bit-identical: every outcome (outputs, rejection set,
// placements, virtual latencies) and the full fleet report. It returns the
// first replay's result. A non-nil cfg.Planner is rejected — a registry
// warmed by run 1 would legitimately change run 2's evidence.
func Verify(cfg Config, events []Event) (*ReplayResult, error) {
	if cfg.Planner != nil {
		return nil, fmt.Errorf("fleet: Verify needs a fresh planner per replay; leave Config.Planner nil")
	}
	r1, err := Replay(cfg, events)
	if err != nil {
		return nil, err
	}
	r2, err := Replay(cfg, events)
	if err != nil {
		return nil, fmt.Errorf("fleet: second replay: %w", err)
	}
	if !bytes.Equal(r1.OutcomesJSON, r2.OutcomesJSON) {
		return nil, fmt.Errorf("fleet: replays diverged: outcomes differ (%d vs %d bytes)",
			len(r1.OutcomesJSON), len(r2.OutcomesJSON))
	}
	if !bytes.Equal(r1.ReportJSON, r2.ReportJSON) {
		return nil, fmt.Errorf("fleet: replays diverged: reports differ (%d vs %d bytes)",
			len(r1.ReportJSON), len(r2.ReportJSON))
	}
	return r1, nil
}
