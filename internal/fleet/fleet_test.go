package fleet

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"comp/internal/runtime"
	"comp/internal/serve"
	"comp/internal/sim/fault"
)

// synthSource builds a small offload program whose outputs depend on the
// scale constant, so distinct keys provably serve distinct plans. It is
// deliberately tiny — fleet tests replay thousands of them.
func synthSource(scale int) string {
	return fmt.Sprintf(`
float a[1024];
float out[1024];
int n;
int main(void) {
    int i;
    n = 1024;
    for (i = 0; i < n; i++) {
        a[i] = i * 0.25 + 1.0;
    }
    #pragma offload target(mic:0) in(a : length(n)) out(out : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out[i] = sqrt(a[i] * %d.0) + a[i] * 0.125;
    }
    return 0;
}
`, scale)
}

func synthJob(scale int) serve.Job {
	return serve.Job{
		Key:     fmt.Sprintf("fleet-synth-%d", scale),
		Source:  synthSource(scale),
		Outputs: []string{"out"},
	}
}

// steppedFleet builds a 2×2 heterogeneous stepped fleet on a virtual clock.
func steppedFleet(t *testing.T, queue, steal int) *Fleet {
	t.Helper()
	epoch := time.Unix(0, 0).UTC()
	f, err := New(Config{
		Devices:        DefaultDevices(2, 2, queue),
		StealThreshold: steal,
		Stepped:        true,
		Clock:          func() time.Time { return epoch },
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New(Config{Devices: []DeviceConfig{{ID: ""}}}); err == nil {
		t.Error("empty device ID accepted")
	}
	if _, err := New(Config{Devices: []DeviceConfig{{ID: "d"}, {ID: "d"}}}); err == nil {
		t.Error("duplicate device ID accepted")
	}
	bad := runtime.DefaultConfig()
	bad.MICThreads = -1
	if _, err := New(Config{Devices: []DeviceConfig{{ID: "d", Runtime: &bad}}}); err == nil {
		t.Error("invalid device platform accepted")
	}
}

// The fleet serves end to end: jobs complete with outputs, placements are
// consistent-hash stable, and the rollup accounts for every submission.
func TestFleetServesAndAccounts(t *testing.T) {
	f, err := New(Config{Devices: DefaultDevices(2, 2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const n = 12
	var owners []string
	for i := 0; i < n; i++ {
		resp, err := f.Do(synthJob(i % 3))
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if len(resp.Outputs["out"]) != 1024 {
			t.Fatalf("job %d: outputs missing", i)
		}
		if resp.Device == "" || resp.Owner == "" {
			t.Fatalf("job %d: placement not recorded: %+v", i, resp.Placement)
		}
		owners = append(owners, resp.Owner)
	}
	// Same key → same ring owner, every time.
	for i := 3; i < n; i++ {
		if owners[i] != owners[i-3] {
			t.Fatalf("key %d owner flapped: %s vs %s", i%3, owners[i], owners[i-3])
		}
	}
	// Invalid jobs are typed, not dropped.
	if _, err := f.Do(serve.Job{}); !errors.Is(err, serve.ErrInvalidJob) {
		t.Fatalf("invalid job: %v", err)
	}
	rep := f.Report()
	if rep.Routed != n+1 {
		t.Fatalf("routed %d, want %d", rep.Routed, n+1)
	}
	if rep.Aggregate.Completed != n || rep.Aggregate.Invalid != 1 {
		t.Fatalf("aggregate: %+v", rep.Aggregate)
	}
	var perDevice int64
	for _, d := range rep.Devices {
		perDevice += d.Submitted
	}
	if perDevice != rep.Routed {
		t.Fatalf("per-device submissions %d != routed %d", perDevice, rep.Routed)
	}
	if rep.MakespanNs <= 0 || rep.TotalSimNs < rep.MakespanNs {
		t.Fatalf("makespan rollup: makespan %d, total %d", rep.MakespanNs, rep.TotalSimNs)
	}
	// The shared registry planned each (key, signature) pair at most once.
	if rep.Aggregate.PlanMisses > 6 { // 3 keys × ≤2 signatures
		t.Fatalf("plan misses %d; registry not shared", rep.Aggregate.PlanMisses)
	}
}

// Work stealing: once the primary's queue passes the threshold, requests
// for its keys go to the least-loaded device of the same signature — and
// only the same signature, while the primary is healthy.
func TestStealingKeepsPlanAffinity(t *testing.T) {
	f := steppedFleet(t, 32, 3)
	defer f.Close()

	job := synthJob(1)
	pl, err := f.RouteFor(job.Key)
	if err != nil {
		t.Fatal(err)
	}
	owner := pl.Device
	ownerSig, err := f.Signature(owner)
	if err != nil {
		t.Fatal(err)
	}

	var stole bool
	for i := 0; i < 12; i++ {
		pl, _, err := f.Enqueue(job)
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		if pl.Owner != owner {
			t.Fatalf("enqueue %d: ring owner flapped to %s", i, pl.Owner)
		}
		sig, err := f.Signature(pl.Device)
		if err != nil {
			t.Fatal(err)
		}
		if sig != ownerSig {
			t.Fatalf("enqueue %d: stolen to %s with signature %s (owner %s has %s): plan affinity violated",
				i, pl.Device, sig, owner, ownerSig)
		}
		if pl.Stolen {
			if pl.Device == owner {
				t.Fatalf("enqueue %d: marked stolen but placed on the owner", i)
			}
			stole = true
		}
	}
	if !stole {
		t.Fatal("queue pressure never triggered a steal")
	}
	if rep := f.Report(); rep.Stolen == 0 {
		t.Fatal("report did not count the steals")
	}
	for f.StepAll() > 0 {
	}
}

// Negative StealThreshold disables stealing: every placement stays on the
// ring owner no matter the depth.
func TestStealingDisabled(t *testing.T) {
	f := steppedFleet(t, 32, -1)
	defer f.Close()
	job := synthJob(2)
	for i := 0; i < 10; i++ {
		pl, _, err := f.Enqueue(job)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Device != pl.Owner || pl.Stolen {
			t.Fatalf("enqueue %d stole with stealing disabled: %+v", i, pl)
		}
	}
	for f.StepAll() > 0 {
	}
}

// Device loss: the lost device leaves the ring (its keys rebalance), its
// queued work drains to answers, and restore moves the keys back.
func TestDeviceLossDrainsAndRebalances(t *testing.T) {
	f := steppedFleet(t, 32, -1)
	defer f.Close()

	job := synthJob(3)
	pl, err := f.RouteFor(job.Key)
	if err != nil {
		t.Fatal(err)
	}
	owner := pl.Device

	// Queue two requests on the owner, then lose it.
	var tickets []*serve.Ticket
	for i := 0; i < 2; i++ {
		_, tk, err := f.Enqueue(job)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if err := f.FailDevice(owner); err != nil {
		t.Fatal(err)
	}
	if err := f.FailDevice(owner); err == nil {
		t.Error("double loss accepted")
	}
	if lost, _ := f.Lost(owner); !lost {
		t.Error("Lost() disagrees")
	}

	pl2, err := f.RouteFor(job.Key)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Device == owner {
		t.Fatalf("key still routed to lost device %s", owner)
	}
	if !pl2.Rerouted {
		t.Errorf("placement after loss not marked rerouted: %+v", pl2)
	}

	// Queued work on the lost device still drains to answers.
	for f.StepAll() > 0 {
	}
	for i, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("queued request %d on lost device answered with %v", i, err)
		}
	}

	if err := f.RestoreDevice(owner); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreDevice(owner); err == nil {
		t.Error("double restore accepted")
	}
	pl3, err := f.RouteFor(job.Key)
	if err != nil {
		t.Fatal(err)
	}
	if pl3.Device != owner || pl3.Rerouted {
		t.Fatalf("restore did not move the key home: %+v", pl3)
	}

	rep := f.Report()
	if rep.LossEvents != 1 || rep.RestoreEvents != 1 {
		t.Fatalf("loss/restore accounting: %+v", rep)
	}
}

// With every device lost the router answers ErrNoDevices — a typed
// rejection, never a hang or a drop.
func TestNoHealthyDevices(t *testing.T) {
	f := steppedFleet(t, 8, 0)
	defer f.Close()
	for _, id := range f.Devices() {
		if err := f.FailDevice(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Do(synthJob(1)); !errors.Is(err, ErrNoDevices) {
		t.Fatalf("got %v, want ErrNoDevices", err)
	}
	if _, err := f.RouteFor("any"); !errors.Is(err, ErrNoDevices) {
		t.Fatalf("RouteFor: %v", err)
	}
	if rep := f.Report(); rep.NoDevice != 1 {
		t.Fatalf("NoDevice count %d, want 1", rep.NoDevice)
	}
}

func TestUnknownDeviceOps(t *testing.T) {
	f := steppedFleet(t, 8, 0)
	defer f.Close()
	if err := f.FailDevice("nope"); err == nil {
		t.Error("FailDevice(nope) succeeded")
	}
	if err := f.RestoreDevice("h0/d0"); err == nil {
		t.Error("restoring a healthy device succeeded")
	}
	if err := f.SetDeviceFaults("nope", fault.Config{}); err == nil {
		t.Error("SetDeviceFaults(nope) succeeded")
	}
	if err := f.SetDeviceFaults("h0/d0", fault.Config{DMARate: 2}); err == nil {
		t.Error("invalid fault schedule accepted")
	}
	if _, err := f.Signature("nope"); err == nil {
		t.Error("Signature(nope) succeeded")
	}
	if _, err := f.Lost("nope"); err == nil {
		t.Error("Lost(nope) succeeded")
	}
}

func TestStepAllPanicsWithoutStepped(t *testing.T) {
	f, err := New(Config{Devices: DefaultDevices(1, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer func() {
		if recover() == nil {
			t.Error("StepAll on a non-stepped fleet did not panic")
		}
	}()
	f.StepAll()
}

// smallTrace is a mixed trace: submissions over 4 keys, explicit steps, a
// mid-trace fault storm, a device loss, and a restore.
func smallTrace(f func(int) serve.Job, victim string) []Event {
	var ev []Event
	for i := 0; i < 10; i++ {
		ev = append(ev, Submit(f(i%4)))
	}
	ev = append(ev, Step(), Storm(victim, fault.Uniform(11, 0.4)), Fail(victim))
	for i := 10; i < 20; i++ {
		ev = append(ev, Submit(f(i%4)))
		if i%3 == 0 {
			ev = append(ev, Step())
		}
	}
	ev = append(ev, Restore(victim), Storm(victim, fault.Config{}))
	for i := 20; i < 26; i++ {
		ev = append(ev, Submit(f(i%4)))
	}
	return ev
}

// Replay is deterministic: Verify runs the trace twice against fresh
// fleets and demands bit-identical outcomes and reports — including under
// the loss/storm events.
func TestReplayVerifySmallTrace(t *testing.T) {
	cfg := Config{Devices: DefaultDevices(2, 2, 8), StealThreshold: 2}
	res, err := Verify(cfg, smallTrace(synthJob, "h0/d1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 26 {
		t.Fatalf("outcomes %d, want 26 (one per submission)", len(res.Outcomes))
	}
	completed := 0
	for _, o := range res.Outcomes {
		if o.Err == "" {
			completed++
			if len(o.Outputs) == 0 {
				t.Fatalf("outcome %d completed without outputs", o.Index)
			}
			if o.LatencyNs <= 0 {
				t.Fatalf("outcome %d has no virtual latency", o.Index)
			}
		}
	}
	if completed == 0 {
		t.Fatal("no submissions completed")
	}
	if res.Report.LossEvents != 1 || res.Report.RestoreEvents != 1 {
		t.Fatalf("loss accounting in replay: %+v", res.Report)
	}
}

func TestReplayRejectsBadEvents(t *testing.T) {
	cfg := Config{Devices: DefaultDevices(1, 2, 8)}
	if _, err := Replay(cfg, []Event{Fail("ghost")}); err == nil {
		t.Error("replay accepted a loss event for an unknown device")
	}
	if _, err := Replay(cfg, []Event{{Op: Op(99)}}); err == nil {
		t.Error("replay accepted an unknown op")
	}
	if _, err := Verify(Config{Devices: DefaultDevices(1, 1, 4), Planner: serve.NewPlanner()}, nil); err == nil {
		t.Error("Verify accepted a shared planner across replays")
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpSubmit: "submit", OpFail: "fail", OpRestore: "restore",
		OpFaults: "faults", OpStep: "step", Op(42): "fleet.Op(42)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

// The rejection set is part of the replay evidence: an undersized fleet
// sheds deterministically, and the shed set is identical across replays.
func TestReplayRejectionSetDeterministic(t *testing.T) {
	cfg := Config{Devices: DefaultDevices(1, 2, 2), StealThreshold: -1}
	var ev []Event
	for i := 0; i < 16; i++ {
		ev = append(ev, Submit(synthJob(i%2)))
	}
	res, err := Verify(cfg, ev)
	if err != nil {
		t.Fatal(err)
	}
	rej := res.Rejections()
	if len(rej) == 0 {
		t.Fatal("undersized fleet shed nothing")
	}
	for idx, msg := range rej {
		if !strings.Contains(msg, "overloaded") {
			t.Errorf("rejection %d is not typed overload: %q", idx, msg)
		}
	}
	if int64(len(rej)) != res.Report.Aggregate.Shed {
		t.Fatalf("rejection set size %d vs aggregate shed %d", len(rej), res.Report.Aggregate.Shed)
	}
}
