package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"comp/internal/runtime"
	"comp/internal/serve"
	"comp/internal/sim/fault"
	"comp/internal/sim/machine"
	"comp/internal/sim/metrics"
	"comp/internal/tune"
)

// ErrNoDevices rejects a submission when every device in the fleet has
// been lost: the router never drops a request silently — with no healthy
// target it answers immediately with this typed error.
var ErrNoDevices = errors.New("fleet: no healthy devices")

// DeviceConfig describes one device of the fleet: a serve.Server over its
// own simulated platform.
type DeviceConfig struct {
	// ID is the device's stable fleet-wide identity (e.g. "h0/d1"). Ring
	// placement hashes it, so renaming a device moves its keys.
	ID string
	// Runtime is the device's simulated platform; nil means
	// runtime.DefaultConfig with tracing disabled. Heterogeneous fleets mix
	// machine configs here — the machine names become the device's
	// signature, the plan-affinity class work stealing respects.
	Runtime *runtime.Config
	// Streams, QueueDepth, MaxBatch configure the device's server exactly
	// as serve.Config does (defaults 4 / 64 / QueueDepth).
	Streams    int
	QueueDepth int
	MaxBatch   int
}

// Config assembles a fleet.
type Config struct {
	// Devices lists the fleet members; at least one is required.
	Devices []DeviceConfig
	// Replicas is the virtual-node count per device on the hash ring
	// (0 = DefaultReplicas).
	Replicas int
	// StealThreshold is the queue depth at which the router redirects a
	// primary's request to the least-loaded same-signature device. 0 means
	// half the primary's queue depth (at least 1); negative disables
	// stealing entirely.
	StealThreshold int
	// Planner is the shared compiled-plan registry; nil creates one shared
	// by every device in this fleet. Plans are keyed by (job, machine), so
	// same-signature devices — including a thief serving a stolen request —
	// reuse each other's plans without recompiling.
	Planner *serve.Planner
	// Clock and Stepped mirror serve.Config: a virtual clock plus stepped
	// batch execution make the whole fleet rollup a deterministic function
	// of the submission trace. Replay sets both.
	Clock   func() time.Time
	Stepped bool
	// Exec pins the execution engine for every device ("" = process-wide
	// default).
	Exec string
	// Tune enables the cost-model pipeline tuner (serve.Config.Tune) on
	// every device. Device signatures gain a "|tuned" marker so work
	// stealing only pairs devices whose plan caches speak the same keys —
	// tuned fleets stay plan-affine.
	Tune bool
	// TuneModel is the shared learned-predictor model for Tune; nil
	// starts an empty model shared by the fleet's planner.
	TuneModel *tune.Model
}

// device is one fleet member at runtime.
type device struct {
	id    string
	sig   string // MIC.Name|CPU.Name: the plan-affinity class
	srv   *serve.Server
	queue int // resolved admission-queue capacity (threshold basis)
	lost  bool
}

// Placement records one routing decision.
type Placement struct {
	// Device is where the request went; Owner its ring owner among healthy
	// devices at decision time.
	Device string
	Owner  string
	// Stolen reports that queue pressure redirected the request off its
	// healthy owner to a same-signature peer. Rerouted reports that the
	// key's all-time ring owner was lost, so consistent hashing had already
	// moved the key before load was considered.
	Stolen   bool
	Rerouted bool
}

// Response is one served request's result plus its routing metadata.
type Response struct {
	serve.Response
	Placement
}

// Fleet is the sharded serving layer: a consistent-hash router over N
// per-device servers with a shared compiled-plan registry. Submissions are
// safe from any number of goroutines.
type Fleet struct {
	cfg     Config
	planner *serve.Planner

	mu      sync.Mutex
	live    *Ring // healthy devices only: the routing ring
	full    *Ring // every configured device: detects rerouted keys
	devices map[string]*device
	order   []string // sorted IDs: the deterministic iteration order

	routed, stolen, rerouted, noDevice int64
	lossEvents, restoreEvents          int64
}

// New validates the configuration and starts every device's server.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("fleet: no devices configured")
	}
	planner := cfg.Planner
	if planner == nil {
		planner = serve.NewPlanner()
	}
	f := &Fleet{
		cfg:     cfg,
		planner: planner,
		live:    NewRing(cfg.Replicas),
		full:    NewRing(cfg.Replicas),
		devices: map[string]*device{},
	}
	for _, dc := range cfg.Devices {
		if dc.ID == "" {
			f.closeAll()
			return nil, fmt.Errorf("fleet: device with empty ID")
		}
		if _, dup := f.devices[dc.ID]; dup {
			f.closeAll()
			return nil, fmt.Errorf("fleet: duplicate device ID %q", dc.ID)
		}
		rtCfg := runtime.DefaultConfig()
		rtCfg.DisableTrace = true
		if dc.Runtime != nil {
			rtCfg = *dc.Runtime
		}
		srv, err := serve.New(serve.Config{
			Runtime:    &rtCfg,
			Streams:    dc.Streams,
			QueueDepth: dc.QueueDepth,
			MaxBatch:   dc.MaxBatch,
			Planner:    planner,
			Clock:      cfg.Clock,
			Stepped:    cfg.Stepped,
			Exec:       cfg.Exec,
			Tune:       cfg.Tune,
			TuneModel:  cfg.TuneModel,
		})
		if err != nil {
			f.closeAll()
			return nil, fmt.Errorf("fleet: device %s: %w", dc.ID, err)
		}
		queue := dc.QueueDepth
		if queue == 0 {
			queue = 64 // serve's default
		}
		sig := rtCfg.MIC.Name + "|" + rtCfg.CPU.Name
		if cfg.Tune {
			sig += "|tuned"
		}
		d := &device{
			id:    dc.ID,
			sig:   sig,
			srv:   srv,
			queue: queue,
		}
		f.devices[dc.ID] = d
		f.order = append(f.order, dc.ID)
		if err := f.live.Add(dc.ID); err != nil {
			f.closeAll()
			return nil, err
		}
		if err := f.full.Add(dc.ID); err != nil {
			f.closeAll()
			return nil, err
		}
	}
	sort.Strings(f.order)
	return f, nil
}

// closeAll closes every constructed server (error-path cleanup and Close).
func (f *Fleet) closeAll() {
	for _, id := range f.order {
		f.devices[id].srv.Close()
	}
	// order may not yet include every constructed device on the error path.
	seen := map[string]bool{}
	for _, id := range f.order {
		seen[id] = true
	}
	for id, d := range f.devices {
		if !seen[id] {
			d.srv.Close()
		}
	}
}

// baseKey derives the routing key for a job: the plan-cache base the
// per-device planner will use. Invalid jobs (no key at all) route to the
// first healthy device, whose server answers with its typed ErrInvalidJob.
func baseKey(job serve.Job) string {
	if job.Key != "" {
		return job.Key
	}
	return job.Workload
}

// stealThreshold resolves the fleet threshold for one primary.
func (f *Fleet) stealThreshold(d *device) int {
	switch {
	case f.cfg.StealThreshold > 0:
		return f.cfg.StealThreshold
	case f.cfg.StealThreshold < 0:
		return 1 << 30 // stealing disabled
	}
	t := d.queue / 2
	if t < 1 {
		t = 1
	}
	return t
}

// route picks the device for one plan key. Caller holds f.mu.
func (f *Fleet) route(key string, count bool) (*device, Placement, error) {
	if f.live.Len() == 0 {
		if count {
			f.noDevice++
		}
		return nil, Placement{}, ErrNoDevices
	}
	var ownerID string
	if key == "" {
		// Invalid job: deterministic fallback, the server rejects it typed.
		for _, id := range f.order {
			if !f.devices[id].lost {
				ownerID = id
				break
			}
		}
	} else {
		ownerID, _ = f.live.Lookup(key)
	}
	owner := f.devices[ownerID]
	pl := Placement{Device: ownerID, Owner: ownerID}
	if key != "" {
		if allTime, ok := f.full.Lookup(key); ok && allTime != ownerID && f.devices[allTime].lost {
			pl.Rerouted = true
		}
	}
	// Work stealing: past the threshold, redirect to the least-loaded
	// healthy device of the same signature (ties broken by ID, so the
	// decision is deterministic for deterministic depths). Same signature
	// means the same plan-cache key: the thief reuses the donor's plan from
	// the shared registry without recompiling — stealing never violates
	// plan-affinity while the donor is healthy.
	if depth := owner.srv.Depth(); depth >= f.stealThreshold(owner) {
		best, bestDepth := owner, depth
		for _, id := range f.order {
			d := f.devices[id]
			if d.lost || d.sig != owner.sig || d == owner {
				continue
			}
			if dd := d.srv.Depth(); dd < bestDepth || (dd == bestDepth && d.id < best.id) {
				best, bestDepth = d, dd
			}
		}
		if best != owner {
			pl.Device = best.id
			pl.Stolen = true
		}
	}
	if count {
		f.routed++
		if pl.Stolen {
			f.stolen++
		}
		if pl.Rerouted {
			f.rerouted++
		}
	}
	return f.devices[pl.Device], pl, nil
}

// RouteFor previews the placement decision for a plan key without
// submitting anything (and without counting it in the router stats).
func (f *Fleet) RouteFor(key string) (Placement, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, pl, err := f.route(key, false)
	return pl, err
}

// Enqueue routes and admits a job, returning the placement and the ticket
// for its answer. Admission errors are typed and synchronous: the chosen
// device's ErrInvalidJob / ErrOverloaded / ErrClosed, or ErrNoDevices when
// the fleet has no healthy member. Safe for concurrent use.
func (f *Fleet) Enqueue(job serve.Job) (Placement, *serve.Ticket, error) {
	f.mu.Lock()
	d, pl, err := f.route(baseKey(job), true)
	f.mu.Unlock()
	if err != nil {
		return Placement{}, nil, err
	}
	t, err := d.srv.Enqueue(job)
	if err != nil {
		return pl, nil, err
	}
	return pl, t, nil
}

// Do submits a job and blocks until it is served.
func (f *Fleet) Do(job serve.Job) (Response, error) {
	pl, t, err := f.Enqueue(job)
	if err != nil {
		return Response{Placement: pl}, err
	}
	resp, err := t.Wait()
	return Response{Response: resp, Placement: pl}, err
}

// FailDevice takes a device off the routing ring: its keys move to their
// ring successors (~K/N of the keyspace), new arrivals never reach it, and
// everything already admitted drains to an answer — device loss is a drain
// and rebalance, never a drop.
func (f *Fleet) FailDevice(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[id]
	if !ok {
		return fmt.Errorf("fleet: unknown device %s", id)
	}
	if d.lost {
		return fmt.Errorf("fleet: device %s already lost", id)
	}
	if err := f.live.Remove(id); err != nil {
		return err
	}
	d.lost = true
	f.lossEvents++
	return nil
}

// RestoreDevice returns a lost device to the ring; its former keys move
// back on the next lookup.
func (f *Fleet) RestoreDevice(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[id]
	if !ok {
		return fmt.Errorf("fleet: unknown device %s", id)
	}
	if !d.lost {
		return fmt.Errorf("fleet: device %s is not lost", id)
	}
	if err := f.live.Add(id); err != nil {
		return err
	}
	d.lost = false
	f.restoreEvents++
	return nil
}

// SetDeviceFaults swaps one device's fault schedule (fault storms are
// per-device events in a fleet). Valid on lost devices too: a drain under
// a storm exercises the recovery ladder.
func (f *Fleet) SetDeviceFaults(id string, fc fault.Config) error {
	f.mu.Lock()
	d, ok := f.devices[id]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: unknown device %s", id)
	}
	return d.srv.SetFaults(fc)
}

// Devices returns the fleet member IDs sorted.
func (f *Fleet) Devices() []string { return append([]string(nil), f.order...) }

// Signature returns a device's machine signature (plan-affinity class).
func (f *Fleet) Signature(id string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[id]
	if !ok {
		return "", fmt.Errorf("fleet: unknown device %s", id)
	}
	return d.sig, nil
}

// Lost reports whether a device is currently off the ring.
func (f *Fleet) Lost(id string) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[id]
	if !ok {
		return false, fmt.Errorf("fleet: unknown device %s", id)
	}
	return d.lost, nil
}

// StepAll runs at most one batch on every device, in ID order, and returns
// how many requests were answered. Only valid on a stepped fleet; like
// serve.StepBatch it must not race itself or Close.
func (f *Fleet) StepAll() int {
	if !f.cfg.Stepped {
		panic("fleet: StepAll on a fleet without Config.Stepped")
	}
	n := 0
	for _, id := range f.order {
		n += f.devices[id].srv.StepBatch()
	}
	return n
}

// Close stops admissions on every device, serves everything already
// queued, and waits for the dispatchers. Safe to call more than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closeAll()
}

// Planner returns the shared compiled-plan registry.
func (f *Fleet) Planner() *serve.Planner { return f.planner }

// Report snapshots the fleet-wide rollup: per-device ServerReports in ID
// order plus the router accounting and aggregate counters.
func (f *Fleet) Report() metrics.FleetReport {
	f.mu.Lock()
	rep := metrics.FleetReport{
		Routed:        f.routed,
		Stolen:        f.stolen,
		Rerouted:      f.rerouted,
		NoDevice:      f.noDevice,
		LossEvents:    f.lossEvents,
		RestoreEvents: f.restoreEvents,
	}
	type snap struct {
		d    *device
		lost bool
	}
	snaps := make([]snap, 0, len(f.order))
	for _, id := range f.order {
		d := f.devices[id]
		snaps = append(snaps, snap{d: d, lost: d.lost})
	}
	f.mu.Unlock()
	// Per-device reports are taken outside the router lock: Report walks
	// the shared planner, and a concurrent planner build must not block
	// routing.
	for _, s := range snaps {
		rep.Devices = append(rep.Devices, metrics.FleetDeviceReport{
			ID:           s.d.id,
			Signature:    s.d.sig,
			Lost:         s.lost,
			ServerReport: s.d.srv.Report(),
		})
	}
	rep.RollUp()
	return rep
}

// DefaultDevices builds a hosts × perHost fleet of heterogeneous devices:
// even-indexed devices model the paper's Xeon Phi ES2, odd-indexed ones a
// smaller 57-core 3120-class card, so the fleet always exercises both
// plan-affinity classes. IDs are "h<host>/d<device>"; queue is the
// per-device admission depth (0 = serve's default).
func DefaultDevices(hosts, perHost, queue int) []DeviceConfig {
	var out []DeviceConfig
	for h := 0; h < hosts; h++ {
		for d := 0; d < perHost; d++ {
			rtCfg := runtime.DefaultConfig()
			rtCfg.DisableTrace = true
			if (h*perHost+d)%2 == 1 {
				rtCfg.MIC = machine.XeonPhi3120()
			}
			cfgCopy := rtCfg
			out = append(out, DeviceConfig{
				ID:         fmt.Sprintf("h%d/d%d", h, d),
				Runtime:    &cfgCopy,
				QueueDepth: queue,
			})
		}
	}
	return out
}
