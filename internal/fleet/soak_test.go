package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"comp/internal/interp"
	"comp/internal/runtime"
	"comp/internal/serve"
	"comp/internal/sim/fault"
)

// The fleet soak mirrors internal/serve's soak at fleet scale: 32
// concurrent submitters hammer a 2×2 heterogeneous fleet whose every
// device injects chaos faults, while one device is lost and restored
// mid-storm. The serving invariants must hold fleet-wide: every request
// answered exactly once with a result or a typed error; successful results
// bit-identical to a fault-free single-server reference (faults and
// placement perturb timing, never values); and the rollup accounting adds
// up — nothing dropped, nothing double-assigned, nothing deadlocked.
func TestSoakFleet32SubmittersChaos(t *testing.T) {
	const (
		submitters = 32
		perClient  = 4
	)
	f, err := New(Config{Devices: DefaultDevices(2, 2, 16), StealThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, id := range f.Devices() {
		if err := f.SetDeviceFaults(id, fault.Uniform(int64(7+i), 0.25)); err != nil {
			t.Fatal(err)
		}
	}

	// Fault-free references, one per synthetic key, computed on a plain
	// single-device runtime: the interpreter computes values and every
	// platform only times them, so any device of any class must reproduce
	// these bit-for-bit.
	scales := []int{3, 5, 7, 11}
	refs := make(map[int][]float64, len(scales))
	for _, scale := range scales {
		p, err := interp.Compile(synthSource(scale))
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.Run(p, runtime.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.Program.ArrayData("out")
		if err != nil {
			t.Fatal(err)
		}
		refs[scale] = append([]float64(nil), data...)
	}

	// One submitter doubles as the chaos operator: it loses and restores a
	// device mid-trace while the others keep submitting.
	victim := f.Devices()[1]
	var chaosOnce sync.Once
	chaos := func() {
		chaosOnce.Do(func() {
			if err := f.FailDevice(victim); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
			if err := f.RestoreDevice(victim); err != nil {
				t.Error(err)
			}
		})
	}

	type tally struct{ completed, shed, expired int }
	tallies := make([]tally, submitters)
	var wg sync.WaitGroup
	for c := 0; c < submitters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				if c == 0 && j == 1 {
					chaos()
				}
				scale := scales[(c+j)%len(scales)]
				job := serve.Job{
					Key:     fmt.Sprintf("fleet-soak-%d", scale),
					Source:  synthSource(scale),
					Outputs: []string{"out"},
				}
				if (c+j)%5 == 0 {
					job.Deadline = 5 * time.Second // only pathological stalls expire it
				}
				resp, err := f.Do(job)
				switch {
				case err == nil:
					ref := refs[scale]
					got := resp.Outputs["out"]
					if len(got) != len(ref) {
						t.Errorf("client %d job %d: output resized", c, j)
						return
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Errorf("client %d job %d on %s: out[%d] = %v, fault-free reference %v",
								c, j, resp.Device, i, got[i], ref[i])
							return
						}
					}
					tallies[c].completed++
				case errors.Is(err, serve.ErrOverloaded):
					tallies[c].shed++
				case errors.Is(err, serve.ErrDeadlineExceeded):
					tallies[c].expired++
				case errors.Is(err, ErrNoDevices):
					tallies[c].shed++ // total loss window: typed, not dropped
				default:
					t.Errorf("client %d job %d: unexpected error %v", c, j, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	var completed, shed, expired int64
	for _, y := range tallies {
		completed += int64(y.completed)
		shed += int64(y.shed)
		expired += int64(y.expired)
	}
	if completed+shed+expired != submitters*perClient {
		t.Fatalf("accounting: %d completed + %d shed + %d expired != %d submitted",
			completed, shed, expired, submitters*perClient)
	}
	if completed == 0 {
		t.Fatal("soak completed nothing; fleet too small for the trace")
	}
	rep := f.Report()
	agg := rep.Aggregate
	if agg.Completed != completed || agg.Expired != expired || agg.Failed != 0 {
		t.Fatalf("fleet counters disagree with client tallies: completed %d/%d expired %d/%d failed %d",
			agg.Completed, completed, agg.Expired, expired, agg.Failed)
	}
	if agg.Shed+rep.NoDevice != shed {
		t.Fatalf("shed accounting: devices shed %d + router no-device %d != clients saw %d",
			agg.Shed, rep.NoDevice, shed)
	}
	if rep.Routed+rep.NoDevice != submitters*perClient {
		t.Fatalf("router handled %d + rejected %d of %d submissions", rep.Routed, rep.NoDevice, submitters*perClient)
	}
	if agg.Submitted != rep.Routed {
		t.Fatalf("per-device submissions %d != routed %d: a request was dropped or double-assigned",
			agg.Submitted, rep.Routed)
	}
	if rep.LossEvents != 1 || rep.RestoreEvents != 1 {
		t.Fatalf("chaos events miscounted: %+v", rep)
	}
	// The shared registry planned each (key, signature) pair at most once,
	// no matter how many submitters raced on first use.
	maxPlans := int64(len(scales) * 2) // two signatures in the fleet
	if agg.PlanMisses > maxPlans {
		t.Fatalf("plan misses %d > %d: registry not shared or singleflight broken", agg.PlanMisses, maxPlans)
	}
}

// fleet1000Trace models 1000+ concurrent clients: every client has a
// request in flight within the same drain horizon, interleaved with batch
// steps, a device-loss fault storm, and deadline-bearing submissions.
func fleet1000Trace(clients int, victim string) []Event {
	var ev []Event
	storm := clients / 3
	restore := 2 * clients / 3
	for i := 0; i < clients; i++ {
		job := serve.Job{
			Key:     fmt.Sprintf("fleet-replay-%d", i%8),
			Source:  synthSource(i % 8),
			Outputs: []string{"out"},
		}
		switch {
		case i%17 == 0:
			// Tight virtual deadline: steps come every ~16 ticks, so a job
			// submitted early in the window expires before its batch runs.
			job.Deadline = 4 * ReplayTick
		case i%23 == 0:
			job = serve.Job{} // invalid: must be typed, never dropped
		}
		ev = append(ev, Submit(job))
		if i == storm {
			ev = append(ev, Storm(victim, fault.Uniform(13, 0.35)), Fail(victim))
		}
		if i == restore {
			ev = append(ev, Restore(victim), Storm(victim, fault.Config{}))
		}
		if i%16 == 15 {
			ev = append(ev, Step())
		}
	}
	return ev
}

// TestFleetReplay1000ClientsBitIdentical is the acceptance contract: a
// 1000-client trace — including a device-loss fault storm, deadlines, and
// invalid submissions — double-replays bit-identically: outputs, rejection
// set, placements, and the fleet-wide report rollup.
func TestFleetReplay1000ClientsBitIdentical(t *testing.T) {
	clients := 1000
	if testing.Short() {
		clients = 200
	}
	cfg := Config{Devices: DefaultDevices(2, 2, 48), StealThreshold: 8}
	victim := "h0/d1"
	events := fleet1000Trace(clients, victim)

	res, err := Verify(cfg, events) // replays twice, compares canonical bytes
	if err != nil {
		t.Fatal(err)
	}

	submissions := 0
	for _, e := range events {
		if e.Op == OpSubmit {
			submissions++
		}
	}
	if len(res.Outcomes) != submissions {
		t.Fatalf("outcomes %d != submissions %d: dropped or double-answered", len(res.Outcomes), submissions)
	}
	seen := map[int]bool{}
	var completed, invalid, overloaded, expired int
	for _, o := range res.Outcomes {
		if seen[o.Index] {
			t.Fatalf("outcome index %d answered twice", o.Index)
		}
		seen[o.Index] = true
		switch {
		case o.Err == "":
			completed++
			if len(o.Outputs) == 0 {
				t.Fatalf("outcome %d completed without outputs", o.Index)
			}
		case strings.Contains(o.Err, serve.ErrInvalidJob.Error()):
			invalid++
		case strings.Contains(o.Err, serve.ErrOverloaded.Error()):
			overloaded++
		case strings.Contains(o.Err, serve.ErrDeadlineExceeded.Error()):
			expired++
		default:
			t.Fatalf("outcome %d: untyped rejection %q", o.Index, o.Err)
		}
		if o.Placement.Device == victim && o.Err == "" && o.Placement.Rerouted {
			t.Fatalf("outcome %d: rerouted placement still landed on the lost device", o.Index)
		}
	}
	if completed == 0 || invalid == 0 {
		t.Fatalf("trace coverage too thin: %d completed, %d invalid", completed, invalid)
	}
	if expired == 0 {
		t.Fatal("no deadline expired; the deadline leg of the rejection set is untested")
	}
	t.Logf("replayed %d submissions twice bit-identically: %d completed, %d invalid, %d overloaded, %d expired, %d stolen, %d rerouted",
		submissions, completed, invalid, overloaded, expired, res.Report.Stolen, res.Report.Rerouted)

	// The loss window rebalanced traffic: some placement was rerouted off
	// the lost device, and the storm left fault-recovery evidence.
	if res.Report.Rerouted == 0 {
		t.Error("device loss never rerouted a placement")
	}
	if res.Report.Aggregate.FaultsInjected == 0 {
		t.Error("fault storm injected nothing")
	}
	if res.Report.Aggregate.Completed != int64(completed) {
		t.Fatalf("rollup completed %d != outcome completed %d", res.Report.Aggregate.Completed, completed)
	}
}
