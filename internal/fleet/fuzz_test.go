package fleet

import (
	"fmt"
	"sort"
	"testing"
)

// FuzzFleetRoute throws random op streams — plan-key lookups, device
// losses, restores — at the routing ring and checks the router's safety
// invariants after every op:
//
//   - never drops: while at least one device is live, every key resolves
//     to a live owner; an empty ring is the only ok=false case;
//   - never double-assigns: a key's owner is a pure function of the live
//     member set — a fresh ring rebuilt from the same members (in sorted
//     order, i.e. a different op history) agrees on every placement;
//   - loss events move only orphans: after any membership change, a key's
//     owner changes only if its previous owner left the ring, or the key
//     moved onto a device that just joined.
//
// The byte stream decodes as: byte 0 picks the fleet size (1..8); each
// following pair (op, arg) is a lookup, a loss, or a restore.
func FuzzFleetRoute(f *testing.F) {
	f.Add([]byte{4, 0, 1, 0, 2, 1, 0, 0, 3, 2, 0, 0, 5})
	f.Add([]byte{1, 1, 0, 0, 0, 2, 0})
	f.Add([]byte{8, 1, 0, 1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1, 7, 0, 9})
	f.Add([]byte{3, 0, 200, 1, 2, 0, 200, 2, 2, 0, 200, 1, 0, 1, 1, 0, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0])%8
		ids := make([]string, n)
		live := map[string]bool{}
		r := NewRing(0)
		for i := 0; i < n; i++ {
			ids[i] = fmt.Sprintf("h%d/d%d", i/2, i%2)
			if err := r.Add(ids[i]); err != nil {
				t.Fatalf("seed add %s: %v", ids[i], err)
			}
			live[ids[i]] = true
		}
		// A fixed probe population tracks cross-event movement.
		probes := make([]string, 32)
		owners := make([]string, len(probes))
		for i := range probes {
			probes[i] = fmt.Sprintf("plan-%d", i)
			owners[i], _ = r.Lookup(probes[i])
		}

		checkAll := func(opIdx int, joined, lost string) {
			if r.Len() != len(liveSet(live)) {
				t.Fatalf("op %d: ring size %d vs tracked %d", opIdx, r.Len(), len(liveSet(live)))
			}
			if r.Len() == 0 {
				if _, ok := r.Lookup("any"); ok {
					t.Fatalf("op %d: empty ring returned an owner", opIdx)
				}
				return
			}
			// Rebuild from the sorted live set: placement must not depend
			// on the op history that produced the membership.
			fresh := NewRing(0)
			for _, id := range liveSet(live) {
				if err := fresh.Add(id); err != nil {
					t.Fatal(err)
				}
			}
			for i, key := range probes {
				owner, ok := r.Lookup(key)
				if !ok || !live[owner] {
					t.Fatalf("op %d: key %s dropped (owner %q ok=%v, live=%v)", opIdx, key, owner, ok, live[owner])
				}
				if fo, _ := fresh.Lookup(key); fo != owner {
					t.Fatalf("op %d: key %s double-assigned: ring says %s, fresh rebuild says %s", opIdx, key, owner, fo)
				}
				prev := owners[i]
				if prev != "" && owner != prev && prev != lost && owner != joined {
					t.Fatalf("op %d: key %s moved %s -> %s though %q was lost and %q joined", opIdx, key, prev, owner, lost, joined)
				}
				owners[i] = owner
			}
		}

		for i := 1; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			id := ids[int(arg)%n]
			joined, lost := "", ""
			switch op % 3 {
			case 0: // lookup a random key
				key := fmt.Sprintf("plan-%d", arg)
				owner, ok := r.Lookup(key)
				if r.Len() > 0 && (!ok || !live[owner]) {
					t.Fatalf("op %d: lookup %s on %d live devices returned (%q, %v)", i, key, r.Len(), owner, ok)
				}
				if r.Len() == 0 && ok {
					t.Fatalf("op %d: lookup on empty ring returned %q", i, owner)
				}
				continue
			case 1: // device loss
				if !live[id] {
					continue
				}
				if err := r.Remove(id); err != nil {
					t.Fatalf("op %d: remove %s: %v", i, id, err)
				}
				live[id] = false
				lost = id
			case 2: // device restore
				if live[id] {
					continue
				}
				if err := r.Add(id); err != nil {
					t.Fatalf("op %d: add %s: %v", i, id, err)
				}
				live[id] = true
				joined = id
			}
			checkAll(i, joined, lost)
		}
	})
}

func liveSet(live map[string]bool) []string {
	var out []string
	for id, ok := range live {
		if ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
