package comp_test

import (
	"fmt"
	"log"

	"comp"
)

// Example optimizes a small offloaded loop and verifies the transformed
// program computes the same values while overlapping transfer and compute.
func Example() {
	const src = `
float in1[32768];
float out1[32768];
int n;
int main(void) {
    int i;
    n = 32768;
    for (i = 0; i < n; i++) {
        in1[i] = i % 100;
    }
    #pragma offload target(mic:0) in(in1 : length(n)) out(out1 : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out1[i] = sqrt(in1[i]) * 2.0;
    }
    return 0;
}
`
	res, err := comp.Optimize(src, comp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	naive, err := comp.RunSource(src)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := comp.RunSource(res.Source())
	if err != nil {
		log.Fatal(err)
	}
	a, _ := naive.Program.ArrayData("out1")
	b, _ := opt.Program.ArrayData("out1")
	same := len(a) == len(b)
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	fmt.Printf("transformations applied: %d\n", len(res.Report.Applied))
	fmt.Printf("outputs identical: %v\n", same)
	fmt.Printf("overlap gained: %v\n", opt.Stats.Overlap > naive.Stats.Overlap)
	// Output:
	// transformations applied: 1
	// outputs identical: true
	// overlap gained: true
}

// ExampleNewFleet serves a registry workload through a sharded two-host
// fleet and reads the deterministic rollup.
func ExampleNewFleet() {
	f, err := comp.NewFleet(comp.FleetConfig{Devices: comp.DefaultFleetDevices(2, 2, 8)})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	resp, err := f.Do(comp.ServeJob{Workload: "nn"})
	if err != nil {
		log.Fatal(err)
	}
	again, err := f.Do(comp.ServeJob{Workload: "nn"})
	if err != nil {
		log.Fatal(err)
	}
	rep := f.Report()
	fmt.Printf("same owner both times: %v\n", resp.Device == again.Device)
	fmt.Printf("second request reused the plan: %v\n", again.PlanCached)
	fmt.Printf("routed: %d over %d devices\n", rep.Routed, len(rep.Devices))
	// Output:
	// same owner both times: true
	// second request reused the plan: true
	// routed: 2 over 4 devices
}

// ExampleBenchmarks lists the reproduced evaluation suite.
func ExampleBenchmarks() {
	for _, b := range comp.Benchmarks() {
		fmt.Println(b.Name, b.Suite)
	}
	// Output:
	// blackscholes PARSEC
	// streamcluster PARSEC
	// ferret PARSEC
	// dedup PARSEC
	// freqmine PARSEC
	// kmeans Phoenix
	// cg NAS
	// cfd Rodinia
	// nn Rodinia
	// srad Rodinia
	// bfs Rodinia
	// hotspot Rodinia
}
