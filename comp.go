// Package comp is a reproduction of "COMP: Compiler Optimizations for
// Manycore Processors" (MICRO 2014): a source-to-source compiler that
// optimizes offload-annotated programs for a manycore coprocessor, together
// with the simulated host+coprocessor platform it is evaluated on.
//
// The public surface re-exports the three layers a user composes:
//
//   - Optimize applies the paper's optimizations (data streaming, offload
//     merging, regularization) to MiniC source and returns transformed
//     source plus a report;
//   - Run / RunSource execute a MiniC program on the simulated platform
//     (Xeon E5 host + Xeon Phi coprocessor over PCIe) and return timing,
//     transfer and memory statistics;
//   - Benchmarks and NewBenchRunner expose the 12-benchmark evaluation
//     suite and the harness that regenerates every figure and table in the
//     paper;
//   - NewServer stands up the offload serving layer: a plan-cached,
//     admission-controlled service that batches concurrent requests into
//     deterministic scheduler runs (DESIGN.md §10);
//   - NewFleet shards that serving layer over a multi-device fleet:
//     consistent-hash routing on plan keys, plan-affine work stealing, a
//     shared compiled-plan registry, and device-loss drains (DESIGN.md §15).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package comp

import (
	"comp/internal/bench"
	"comp/internal/core"
	"comp/internal/fleet"
	"comp/internal/interp"
	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/serve"
	"comp/internal/sim/metrics"
	"comp/internal/workloads"
)

// Options selects compiler optimizations; see core.Options for fields.
type Options = core.Options

// Result is a compilation result: transformed AST, printable source, and
// the report of applied optimizations.
type Result = core.Result

// Remark is one structured pass decision (applied / skipped-illegal /
// skipped-unprofitable plus a reason); Remarks is the ordered trail the
// compiler records for every run. Result.Report.Remarks carries it.
type (
	Remark  = pass.Remark
	Remarks = pass.Remarks
)

// DefaultPassSpec is the default pipeline spec ("merge,regularize,streaming").
const DefaultPassSpec = pass.DefaultSpec

// Stats summarizes one simulated execution.
type Stats = runtime.Stats

// RunResult bundles statistics with the executed program (for reading
// output arrays).
type RunResult = runtime.Result

// Config assembles the simulated platform.
type Config = runtime.Config

// Benchmark is one member of the evaluation suite.
type Benchmark = workloads.Benchmark

// Figure is one regenerated table or figure.
type Figure = bench.Figure

// Server is the long-running offload service: plan-cached, admission
// controlled, deterministic per-request results.
type Server = serve.Server

// ServeConfig configures a Server (streams, queue depth, batching).
type ServeConfig = serve.Config

// ServeJob is one request to a Server: a registry workload by name or
// inline MiniC source.
type ServeJob = serve.Job

// ServeResponse is a served request's outputs plus its serving metadata.
type ServeResponse = serve.Response

// ErrOverloaded is returned by Server.Do when the admission queue is full;
// ErrDeadlineExceeded when a request's deadline passed while queued.
var (
	ErrOverloaded       = serve.ErrOverloaded
	ErrDeadlineExceeded = serve.ErrDeadlineExceeded
)

// Fleet shards the serving layer over N simulated devices: consistent-hash
// routing on compiled-plan keys keeps per-device plan caches hot, work
// stealing respects plan affinity, and a shared registry lets stolen
// requests reuse the donor's plan without recompiling.
type Fleet = fleet.Fleet

// FleetConfig assembles a Fleet from per-device configurations.
type FleetConfig = fleet.Config

// FleetDevice describes one fleet member: an ID plus its simulated
// platform and server shape.
type FleetDevice = fleet.DeviceConfig

// FleetReport is the fleet-wide metrics rollup: per-device ServerReports
// plus router accounting and the deterministic makespan.
type FleetReport = metrics.FleetReport

// ErrNoDevices rejects a fleet submission when every device has been lost.
var ErrNoDevices = fleet.ErrNoDevices

// DefaultOptions enables the full optimization pipeline.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultConfig returns the calibrated evaluation platform (§VI).
func DefaultConfig() Config { return runtime.DefaultConfig() }

// Optimize parses, checks and optimizes MiniC source.
func Optimize(src string, opt Options) (*Result, error) {
	return core.Optimize(src, opt)
}

// OffloadAndOptimize first inserts offload clauses into a plain OpenMP
// program (the Apricot capability the paper builds on), then optimizes.
func OffloadAndOptimize(src string, opt Options) (*Result, error) {
	return core.OffloadAndOptimize(src, opt)
}

// OptimizeSpec runs an explicit pass pipeline (e.g. "merge,streaming")
// instead of the Options-selected default; opt still supplies the block
// count and streaming knobs. See KnownPasses for valid names.
func OptimizeSpec(src, spec string, opt Options) (*Result, error) {
	return core.OptimizeSpec(src, spec, opt.PassConfig())
}

// KnownPasses lists the pass names OptimizeSpec accepts, sorted.
func KnownPasses() []string { return pass.KnownPasses() }

// RunSource compiles and executes MiniC source on the default simulated
// platform.
func RunSource(src string) (RunResult, error) {
	return RunSourceOn(src, DefaultConfig())
}

// RunSourceOn compiles and executes MiniC source on a specific platform.
func RunSourceOn(src string, cfg Config) (RunResult, error) {
	p, err := interp.Compile(src)
	if err != nil {
		return RunResult{}, err
	}
	return runtime.Run(p, cfg)
}

// Benchmarks returns the 12-benchmark suite in Table II order.
func Benchmarks() []*Benchmark { return workloads.All() }

// GetBenchmark looks a benchmark up by name.
func GetBenchmark(name string) (*Benchmark, error) { return workloads.Get(name) }

// NewBenchRunner creates the evaluation harness with an empty result
// cache.
func NewBenchRunner() *bench.Runner { return bench.NewRunner() }

// NewServer stands up an offload serving layer; Close it when done.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// NewFleet stands up a sharded multi-device serving fleet; Close it when
// done.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// DefaultFleetDevices builds a hosts × perHost heterogeneous device list
// (alternating Xeon Phi ES2 and 3120-class cards) for NewFleet.
func DefaultFleetDevices(hosts, perHost, queue int) []FleetDevice {
	return fleet.DefaultDevices(hosts, perHost, queue)
}
