// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Run with:
//
//	go test -bench=. -benchtime=1x
//
// Each benchmark reports the figure's headline quantity as a custom metric
// alongside the wall time of regenerating it. Simulation results are
// memoized in one shared runner across the benchmarks (exactly as
// cmd/compbench shares them across figures), so the first benchmarks pay
// for the underlying runs and later ones reuse them; the whole suite fits
// comfortably in go test's default timeout.
package comp

import (
	"testing"

	"comp/internal/bench"
)

var sharedRunner = bench.NewRunner()

// figureBench regenerates one figure per iteration and reports a headline
// metric from it.
func figureBench(b *testing.B, gen func(*bench.Runner) (*bench.Figure, error), metric string, headline func(*bench.Figure) float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := gen(sharedRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(headline(fig), metric)
		if i == 0 {
			b.Log("\n" + fig.Format())
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Figure1() },
		"below-1", func(f *bench.Figure) float64 {
			n := 0.0
			for _, row := range f.Rows {
				c := row.Cells["speedup"]
				if c.Note != "" || c.Value < 1 {
					n++
				}
			}
			return n
		})
}

func BenchmarkFigure4(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Figure4() },
		"bs-ratio", func(f *bench.Figure) float64 {
			c, _ := f.Cell("blackscholes", "ratio")
			return c.Value
		})
}

func BenchmarkFigure10(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Figure10() },
		"opt-winners", func(f *bench.Figure) float64 {
			n := 0.0
			for _, row := range f.Rows {
				if c := row.Cells["mic-opt"]; c.Note == "" && c.Value > 1 {
					n++
				}
			}
			return n
		})
}

func BenchmarkFigure11(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Figure11() },
		"max-gain", func(f *bench.Figure) float64 {
			max := 0.0
			for _, row := range f.Rows {
				if c := row.Cells["speedup"]; c.Note == "" && c.Value > max {
					max = c.Value
				}
			}
			return max
		})
}

func BenchmarkFigure12(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Figure12() },
		"avg-gain", func(f *bench.Figure) float64 { return f.Mean("speedup") })
}

func BenchmarkFigure13(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Figure13() },
		"avg-frac", func(f *bench.Figure) float64 { return f.Mean("fraction") })
}

func BenchmarkFigure14(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Figure14() },
		"avg-gain", func(f *bench.Figure) float64 { return f.Mean("speedup") })
}

func BenchmarkFigure15(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Figure15() },
		"avg-gain", func(f *bench.Figure) float64 { return f.Mean("speedup") })
}

func BenchmarkTable2(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Table2() },
		"rows", func(f *bench.Figure) float64 { return float64(len(f.Rows)) })
}

func BenchmarkTable3(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.Table3() },
		"ferret-gain", func(f *bench.Figure) float64 {
			c, _ := f.Cell("ferret", "speedup")
			return c.Value
		})
}

func BenchmarkBlockSizeSweep(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.BlockSizeSweep() },
		"rows", func(f *bench.Figure) float64 { return float64(len(f.Rows)) })
}

func BenchmarkAblationPersistentKernels(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.PersistentKernelAblation() },
		"rows", func(f *bench.Figure) float64 { return float64(len(f.Rows)) })
}

func BenchmarkAblationMemoryReduction(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.MemoryReductionAblation() },
		"rows", func(f *bench.Figure) float64 { return float64(len(f.Rows)) })
}

func BenchmarkAblationPointerTranslation(b *testing.B) {
	figureBench(b, func(r *bench.Runner) (*bench.Figure, error) { return r.TranslationAblation() },
		"rows", func(f *bench.Figure) float64 { return float64(len(f.Rows)) })
}
