// Regularization: demonstrate the two §IV transformations on their paper
// benchmarks — loop splitting on an srad-style gather loop, and array
// reordering on an nn-style strided loop (which then unlocks streaming).
//
//	go run ./examples/regularization
package main

import (
	"fmt"
	"log"

	"comp"
)

const sradStyle = `
float J[16500];
int iN[16384];
int iS[16384];
float dN[16384];
float dS[16384];
float c[16384];
int n;

int main(void) {
    int i;
    n = 16384;
    for (i = 0; i < n + 100; i++) {
        J[i] = 1.0 + (i % 31) * 0.125;
    }
    for (i = 0; i < n; i++) {
        iN[i] = (i + 128) % n;
        iS[i] = (i * 7 + 3) % n;
    }
    #pragma offload target(mic:0) in(J : length(n + 100)) in(iN, iS : length(n)) out(dN, dS, c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float jc = J[i];
        float jn = J[iN[i]];
        float js = J[iS[i]];
        dN[i] = jn - jc;
        dS[i] = js - jc;
        c[i] = exp(-(dN[i] * dN[i] + dS[i] * dS[i]) / (jc * jc + 0.01)) + sqrt(jc) + log(jc + 1.0);
    }
    return 0;
}
`

const nnStyle = `
float recs[131072];
float dist[16384];
int n;

int main(void) {
    int i;
    n = 16384;
    for (i = 0; i < 8 * n; i++) {
        recs[i] = i % 180;
    }
    #pragma offload target(mic:0) in(recs : length(8 * n)) out(dist : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float dlat = recs[8 * i] - 30.0;
        float dlng = recs[8 * i + 1] - 50.0;
        dist[i] = sqrt(dlat * dlat + dlng * dlng);
    }
    return 0;
}
`

func demo(name, src string, outputs []string) {
	naive, err := comp.RunSource(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := comp.Optimize(src, comp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	opt, err := comp.RunSource(res.Source())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", name)
	for _, a := range res.Report.Applied {
		fmt.Println("applied:", a)
	}
	for _, out := range outputs {
		a, _ := naive.Program.ArrayData(out)
		b, _ := opt.Program.ArrayData(out)
		for i := range a {
			if a[i] != b[i] {
				log.Fatalf("%s: output %s[%d] differs", name, out, i)
			}
		}
	}
	fmt.Printf("naive     %v  (%d bytes in)\n", naive.Stats.Time, naive.Stats.BytesIn)
	fmt.Printf("optimized %v  (%d bytes in)\n", opt.Stats.Time, opt.Stats.BytesIn)
	fmt.Printf("speedup   %.2fx, outputs identical\n\n", float64(naive.Stats.Time)/float64(opt.Stats.Time))
}

func main() {
	// srad: the irregular gathers are peeled into their own loop; the heavy
	// remainder vectorizes. Transfers are unchanged.
	demo("srad-style loop splitting", sradStyle, []string{"dN", "dS", "c"})
	// nn: the stride-8 accesses are packed into dense permutation arrays,
	// cutting the transferred bytes 4x, and the regular loop then streams.
	demo("nn-style array reordering", nnStyle, []string{"dist"})
}
