// Sharedmem: the §V shared-memory mechanism. Walks through Table I's
// pointer operations on the segmented heap, then reruns the ferret
// experiment: MYO fails at the full input, and at the reduced input the
// bulk-copied segments beat MYO's page faults by ~7.8x (Table III).
//
//	go run ./examples/sharedmem
package main

import (
	"fmt"
	"log"

	"comp"
	"comp/internal/shmem"
	"comp/internal/workloads"
)

func main() {
	// --- Table I: augmented pointers on the segmented heap ---
	heap := shmem.NewHeap(shmem.Config{SegmentBytes: 4096})

	// Build a small linked structure: a list of 1 KiB nodes.
	var nodes []shmem.Ptr
	for i := 0; i < 10; i++ {
		p, err := heap.Malloc(1024)
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, p)
	}
	fmt.Printf("10 x 1KiB objects -> %d segments, %d bytes reserved, %d used\n",
		heap.SegmentCount(), heap.TotalReserved(), heap.TotalUsed())

	// Copy every segment to the device and build the delta table.
	devBases := make([]uint64, heap.SegmentCount())
	for i := range devBases {
		devBases[i] = uint64(0x10000000 + i*0x10000)
	}
	moved, err := heap.CopyToDevice(devBases)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("copied %d bytes to the device in %d bulk DMAs\n\n", moved, heap.SegmentCount())

	// Table I row by row:
	p := nodes[3]
	fmt.Printf("p = &obj       -> {addr:%#x bid:%d}\n", p.Addr, p.BID)
	p2 := p // p1 = p2: plain copy, both sides (pointers keep host addresses)
	fmt.Printf("p1 = p2        -> identical? %v\n", shmem.DeviceAddrStable(p, p2))
	dev, err := heap.Translate(p) // *(p.addr + delta[p.bid]) on the MIC
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("*p on MIC      -> device address %#x (delta table, O(1))\n", dev)
	lin, _ := heap.TranslateLinear(p.Addr)
	fmt.Printf("without bid    -> %#x after scanning %d segments\n\n", lin, heap.SegmentCount())

	// --- Table III: the ferret experiment ---
	ferret, err := workloads.Get("ferret")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := workloads.RunShared(ferret, workloads.MechMYO, 1.0); err != nil {
		fmt.Println("ferret, full 3500-image input under MYO:", err)
	}
	scale := ferret.Shared.MYOScale
	myoRes, err := workloads.RunShared(ferret, workloads.MechMYO, scale)
	if err != nil {
		log.Fatal(err)
	}
	compRes, err := workloads.RunShared(ferret, workloads.MechCOMP, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ferret @1500 images: MYO %v (%d page faults) vs COMP %v (%d segments)\n",
		myoRes.Time, myoRes.Faults, compRes.Time, compRes.Segments)
	fmt.Printf("speedup %.2fx (paper: 7.81x)\n", float64(myoRes.Time)/float64(compRes.Time))

	_ = comp.DefaultConfig() // the platform both mechanisms are timed on
}
