// Quickstart: compile an offload-annotated program with COMP, run both the
// original and the optimized version on the simulated CPU + Xeon Phi
// platform, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"comp"
)

// A blackscholes-flavoured offloaded loop: five input arrays stream to the
// coprocessor, one result array streams back.
const src = `
float spot[65536];
float strike[65536];
float vol[65536];
float rate[65536];
float tte[65536];
float price[65536];
int n;

int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        spot[i] = 50.0 + i % 100;
        strike[i] = 40.0 + i % 90;
        vol[i] = 0.2 + (i % 10) * 0.01;
        rate[i] = 0.03;
        tte[i] = 0.5 + (i % 4) * 0.25;
    }
    #pragma offload target(mic:0) in(spot, strike, vol, rate, tte : length(n)) out(price : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float d1 = (log(spot[i] / strike[i]) + (rate[i] + 0.5 * vol[i] * vol[i]) * tte[i]) / (vol[i] * sqrt(tte[i]));
        price[i] = spot[i] * d1 - strike[i] * exp(-rate[i] * tte[i]) * (d1 - vol[i] * sqrt(tte[i]));
    }
    return 0;
}
`

func main() {
	// 1. Run the program as written: one big synchronous offload.
	naive, err := comp.RunSource(src)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Let COMP transform it: the loop passes the streaming legality
	//    check, so it becomes a pipelined, double-buffered block loop.
	res, err := comp.Optimize(src, comp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Report.Applied {
		fmt.Println("applied:", a)
	}

	// 3. Run the transformed source on the same platform.
	opt, err := comp.RunSource(res.Source())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Equivalence + speedup.
	p1, _ := naive.Program.ArrayData("price")
	p2, _ := opt.Program.ArrayData("price")
	for i := range p1 {
		if p1[i] != p2[i] {
			log.Fatalf("price[%d] differs: %v vs %v", i, p1[i], p2[i])
		}
	}
	fmt.Printf("naive:     %v  (overlap %v, peak device mem %d KiB)\n",
		naive.Stats.Time, naive.Stats.Overlap, naive.Stats.PeakDeviceBytes/1024)
	fmt.Printf("optimized: %v  (overlap %v, peak device mem %d KiB)\n",
		opt.Stats.Time, opt.Stats.Overlap, opt.Stats.PeakDeviceBytes/1024)
	fmt.Printf("speedup:   %.2fx, outputs identical across %d options\n",
		float64(naive.Stats.Time)/float64(opt.Stats.Time), len(p1))
}
