// Streaming: reproduce Figure 5 end-to-end. Shows the generated
// double-buffered source for a blackscholes-style loop, sweeps the block
// count N like §III-B, and compares against the analytic model.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"comp"
	"comp/internal/core"
	"comp/internal/sim/machine"
	"comp/internal/transform"
)

const src = `
float sptprice[131072];
float prices[131072];
int numOptions;

int main(void) {
    int i;
    numOptions = 131072;
    for (i = 0; i < numOptions; i++) {
        sptprice[i] = 10.0 + i % 97;
    }
    #pragma offload target(mic:0) in(sptprice : length(numOptions)) out(prices : length(numOptions))
    #pragma omp parallel for
    for (i = 0; i < numOptions; i++) {
        prices[i] = sqrt(sptprice[i]) * exp(sptprice[i] * 0.001) + log(sptprice[i] + 1.0);
    }
    return 0;
}
`

func main() {
	// Show the Figure 5(c)-style transformed source once.
	res, err := comp.Optimize(src, comp.Options{Streaming: true, ReduceMemory: true, Blocks: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== transformed source (N=4, double-buffered) ===")
	fmt.Println(res.Source())

	// Profile the unoptimized run for the SIII-B model inputs.
	naive, err := comp.RunSource(src)
	if err != nil {
		log.Fatal(err)
	}
	k := machine.XeonPhi().LaunchOverhead
	prof := core.ProfileFromStats(naive.Stats, k)
	fmt.Printf("=== block-count sweep (D=%v C=%v K=%v, model N*=%d) ===\n",
		prof.TransferTime, prof.ComputeTime, k, prof.Blocks())
	fmt.Printf("%6s %12s %12s\n", "N", "measured", "model")
	fmt.Printf("%6d %12v %12s   (unoptimized)\n", 1, naive.Stats.Time, transform.ModelTime(prof.TransferTime, prof.ComputeTime, k, 1))

	for _, n := range []int{2, 5, 10, 20, 40, 50} {
		r, err := comp.Optimize(src, comp.Options{Streaming: true, ReduceMemory: true, Persistent: true, Blocks: n})
		if err != nil {
			log.Fatal(err)
		}
		run, err := comp.RunSource(r.Source())
		if err != nil {
			log.Fatal(err)
		}
		model := transform.ModelTime(prof.TransferTime, prof.ComputeTime, k, n)
		fmt.Printf("%6d %12v %12v\n", n, run.Stats.Time, model)
	}
}
