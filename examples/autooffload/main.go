// Autooffload: the full Apricot + COMP pipeline. A plain OpenMP program —
// no offload pragmas at all — gets offload clauses inferred by liveness
// analysis, then the COMP optimizations, then runs on the simulated
// platform.
//
//	go run ./examples/autooffload
package main

import (
	"fmt"
	"log"

	"comp"
)

// Plain OpenMP: the programmer wrote parallel loops and nothing else.
const src = `
float signal0[131072];
float kernel0[64];
float smoothed[131072];
float energy;
int n;

int main(void) {
    int i;
    int k;
    n = 131072;
    for (i = 0; i < n; i++) {
        signal0[i] = (i % 37) * 0.5;
    }
    for (i = 0; i < 64; i++) {
        kernel0[i] = 1.0 / (1.0 + i);
    }
    // Smoothing pass: every element against a small resident kernel table.
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float acc = 0.0;
        for (k = 0; k < 64; k++) {
            acc += signal0[i] * kernel0[k];
        }
        smoothed[i] = acc / 64.0 + sqrt(fabs(signal0[i]) + 1.0);
    }
    // Energy reduction.
    energy = 0.0;
    #pragma omp parallel for reduction(+:energy)
    for (i = 0; i < n; i++) {
        energy += smoothed[i] * smoothed[i];
    }
    return 0;
}
`

func main() {
	// Baseline: the program as written, on the host only.
	cpu, err := comp.RunSource(src)
	if err != nil {
		log.Fatal(err)
	}

	// Apricot inserts the offload clauses; COMP optimizes the result.
	res, err := comp.OffloadAndOptimize(src, comp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Report.Applied {
		fmt.Println("applied:", a)
	}
	mic, err := comp.RunSource(res.Source())
	if err != nil {
		log.Fatal(err)
	}

	e1, _ := cpu.Program.Scalar("energy")
	e2, _ := mic.Program.Scalar("energy")
	if e1 != e2 {
		log.Fatalf("energy differs: %v vs %v", e1, e2)
	}
	fmt.Printf("cpu only:            %v\n", cpu.Stats.Time)
	fmt.Printf("auto-offload + COMP: %v  (%d launches, %d KiB moved, overlap %v)\n",
		mic.Stats.Time, mic.Stats.KernelLaunches,
		(mic.Stats.BytesIn+mic.Stats.BytesOut)/1024, mic.Stats.Overlap)
	fmt.Printf("speedup:             %.2fx, energy identical (%.3f)\n",
		float64(cpu.Stats.Time)/float64(mic.Stats.Time), e1)
}
