/* A blackscholes-flavoured offloaded loop: five input arrays stream to the
 * coprocessor, one result array streams back. Used by the README examples
 * and CI's compc/compsim -tune smoke; any offload-annotated MiniC file
 * works the same way. */
float spot[65536];
float strike[65536];
float vol[65536];
float rate[65536];
float tte[65536];
float price[65536];
int n;

int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        spot[i] = 50.0 + i % 100;
        strike[i] = 40.0 + i % 90;
        vol[i] = 0.2 + (i % 10) * 0.01;
        rate[i] = 0.03;
        tte[i] = 0.5 + (i % 4) * 0.25;
    }
    #pragma offload target(mic:0) in(spot, strike, vol, rate, tte : length(n)) out(price : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float d1 = (log(spot[i] / strike[i]) + (rate[i] + 0.5 * vol[i] * vol[i]) * tte[i]) / (vol[i] * sqrt(tte[i]));
        price[i] = spot[i] * d1 - strike[i] * exp(-rate[i] * tte[i]) * (d1 - vol[i] * sqrt(tte[i]));
    }
    return 0;
}
