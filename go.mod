module comp

go 1.22
